"""Estimator-vs-exact error metrics (Theorem 1 experiments)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["l1_error", "relative_errors", "max_relative_error", "top_k_overlap"]


def l1_error(estimate: np.ndarray, exact: np.ndarray) -> float:
    """Total variation-style L1 distance between two score vectors."""
    estimate, exact = _align(estimate, exact)
    return float(np.abs(estimate - exact).sum())


def relative_errors(
    estimate: np.ndarray, exact: np.ndarray, *, floor: float = 0.0
) -> np.ndarray:
    """Per-node ``|π̃ − π| / π`` restricted to nodes with ``π > floor``.

    Theorem 1's concentration statement is per-node and relative — error
    on negligible-PageRank nodes is theoretically unconstrained at small R,
    so callers typically floor at, e.g., the mean PageRank ``1/n``.
    """
    estimate, exact = _align(estimate, exact)
    mask = exact > floor
    if not mask.any():
        raise ConfigurationError("no nodes exceed the floor")
    return np.abs(estimate[mask] - exact[mask]) / exact[mask]


def max_relative_error(
    estimate: np.ndarray, exact: np.ndarray, *, floor: float = 0.0
) -> float:
    return float(relative_errors(estimate, exact, floor=floor).max())


def top_k_overlap(estimate: np.ndarray, exact: np.ndarray, k: int) -> float:
    """|top-k(estimate) ∩ top-k(exact)| / k — ranking agreement."""
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    estimate, exact = _align(estimate, exact)
    top_estimate = set(np.argsort(-estimate)[:k].tolist())
    top_exact = set(np.argsort(-exact)[:k].tolist())
    return len(top_estimate & top_exact) / k


def _align(estimate: np.ndarray, exact: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    estimate = np.asarray(estimate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    if estimate.shape != exact.shape:
        raise ConfigurationError(
            f"shape mismatch: {estimate.shape} vs {exact.shape}"
        )
    return estimate, exact
