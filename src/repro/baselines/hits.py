"""HITS and personalized HITS (Appendix A).

Personalized HITS, per the paper's Appendix-A equations for seed ``u``:

    h_v = ε·δ_{u,v} + (1−ε) Σ_{x: (v,x)∈E} a_x
    a_x =             Σ_{v: (v,x)∈E} h_v

The sums are *not* degree-normalized, so the iterates grow geometrically
(spectral radius of ``(1−ε)·A·Aᵀ`` ≫ 1 on any real graph) and the fixed
ε·δ personalization term is progressively washed out: after the paper's
10 iterations the direction is essentially the dominant eigenvector — the
graph's densest core — regardless of the seed.  That washout *is* HITS's
failure mode in Table 1 (0.25 captures vs PageRank's 5.07), so the
iteration here is run raw, exactly as written, and only the final vectors
are normalized for reporting.  (Renormalizing every iteration would keep
re-injecting seed mass and quietly turn HITS into a much stronger,
different algorithm.)  Ten iterations of a 10⁵-edge graph stay far below
float64 overflow; a guard rescales only if values approach it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph

__all__ = ["adjacency_matrix", "hits_scores", "personalized_hits"]


def adjacency_matrix(graph: DynamicDiGraph) -> scipy.sparse.csr_matrix:
    """0/1 adjacency ``A[v, x] = 1`` iff edge ``(v, x)`` exists."""
    n = graph.num_nodes
    edges = graph.edge_list()
    if not edges:
        return scipy.sparse.csr_matrix((n, n))
    sources = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
    targets = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))
    ones = np.ones(len(edges), dtype=np.float64)
    return scipy.sparse.csr_matrix((ones, (sources, targets)), shape=(n, n))


def _normalize(vector: np.ndarray) -> np.ndarray:
    total = np.abs(vector).sum()
    return vector / total if total else vector


def hits_scores(
    graph: DynamicDiGraph,
    *,
    iterations: int = 10,
    adjacency: Optional[scipy.sparse.csr_matrix] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Classic (global) HITS; returns ``(hub, authority)`` L1-normalized."""
    return personalized_hits(
        graph,
        seed=None,
        reset_probability=0.0,
        iterations=iterations,
        adjacency=adjacency,
    )


def personalized_hits(
    graph: DynamicDiGraph,
    seed: Optional[int],
    *,
    reset_probability: float = 0.2,
    iterations: int = 10,
    adjacency: Optional[scipy.sparse.csr_matrix] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Appendix-A personalized HITS; returns ``(hub, authority)``.

    ``seed=None`` with ``reset_probability=0`` degenerates to classic HITS.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0), np.zeros(0)
    if iterations <= 0:
        raise ConfigurationError(f"iterations must be positive, got {iterations}")
    if seed is not None and not 0 <= seed < n:
        raise ConfigurationError(f"seed {seed} outside [0, {n})")
    matrix = adjacency if adjacency is not None else adjacency_matrix(graph)

    delta = np.zeros(n, dtype=np.float64)
    if seed is not None:
        delta[seed] = 1.0
        hub = delta.copy()
    else:
        hub = np.full(n, 1.0 / n)
    authority = np.zeros(n, dtype=np.float64)

    overflow_guard = 1e250
    for _ in range(iterations):
        authority = matrix.T @ hub
        hub = reset_probability * delta + (1.0 - reset_probability) * (
            matrix @ authority
        )
        peak = hub.max()
        if peak > overflow_guard:  # only on absurdly large/long runs
            hub /= peak
            authority /= peak
    return _normalize(hub), _normalize(authority)
