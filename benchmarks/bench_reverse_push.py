"""Bidirectional PPR-to-target vs walks-only Monte Carlo.

The ISSUE-9 acceptance: at threshold ``delta = 10/n`` on the twitter-like
generator, the bidirectional estimator
(:meth:`repro.core.query_kernel.QueryKernel.batch_ppr_to_target` — one
reverse push at ``r_max = delta/2`` shared by the whole batch, plus the
short default forward walks) answers the batch **>= 5x faster** than the
walks-only Monte Carlo estimate ``eps * X_t / resets``, which must walk
``~c / (delta * eps)`` steps per seed to resolve contributions of size
``delta`` without any reverse help.

Accuracy is reported against a reverse push driven to ``r_max = 1e-12``
(bit-converged; its parity with ``baselines/power_iteration.py`` is
enforced separately in ``tests/test_backend_edge_cases.py``).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (the CI workflow does).
When ``REPRO_BENCH_JSON`` names a path, the speedup/qps/error metrics
are written there for ``run_bench.py``'s ``BENCH_reverse_push.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.core.query_kernel import QueryKernel
from repro.core.reverse_push import ReversePushEngine, default_walk_length
from repro.serve.traffic import zipf_seed_sequence
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "batch_size": 64,
        "seed_pool": 48,
        "repeats": 3,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "batch_size": 64,
        "seed_pool": 64,
        "repeats": 4,
        "rng": 42,
    }
)


def _emit_json(result) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)


def _best_of_interleaved(candidates, repeats):
    """Best wall time per candidate, rounds interleaved (see
    ``bench_query_kernel.py`` for why interleaving)."""
    best = {name: float("inf") for name in candidates}
    for _ in range(repeats):
        for name, function in candidates.items():
            started = time.perf_counter()
            function()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def run_reverse_push_bench(
    *, num_nodes, num_edges, batch_size, seed_pool, repeats, rng
):
    graph = twitter_like_graph(num_nodes, num_edges, rng=0)
    engine = IncrementalPageRank.from_graph(graph, walks_per_node=10, rng=1)
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    eps = engine.reset_probability
    delta = 10.0 / num_nodes
    # an in-popular node, so pi_s(target) actually straddles delta
    target = int(np.argmax(graph.to_csr("in").indptr[1:]
                           - graph.to_csr("in").indptr[:-1]))
    seeds = zipf_seed_sequence(batch_size, seed_pool, rng=rng)

    # walks-only MC must resolve delta with the forward walk alone —
    # same c=8 budget as default_walk_length, but with no reverse help
    # the residual it integrates against is the full unit mass at target
    mc_length = default_walk_length(delta, 1.0, eps)

    def mc_streams():
        return [np.random.default_rng([2, seed, mc_length]) for seed in seeds]

    def bidirectional():
        return kernel.batch_ppr_to_target(seeds, target, delta, rng_seed=0)

    def walks_only():
        walks = kernel.batch_stitched_walks(seeds, mc_length, rngs=mc_streams())
        return [
            (eps * walk.visit_counts.get(target, 0) / walk.resets)
            if walk.resets > 0
            else 0.0
            for walk in walks
        ]

    timings = _best_of_interleaved(
        {"bidirectional": bidirectional, "walks-only MC": walks_only},
        repeats,
    )

    # converged reverse push as the accuracy reference (parity with
    # power iteration is a tier-1 test, not re-proven here)
    exact = ReversePushEngine(graph, reset_probability=eps).push(
        target, r_max=1e-12
    ).estimates
    bidi = bidirectional()
    mc = walks_only()
    truth = [float(exact[seed]) for seed in seeds]
    bidi_err = float(np.mean([abs(a.estimate - t) for a, t in zip(bidi, truth)]))
    mc_err = float(np.mean([abs(e - t) for e, t in zip(mc, truth)]))
    agree = sum(
        a.above_delta == (t >= delta) for a, t in zip(bidi, truth)
    )
    # FAST-PPR only promises decisions away from the threshold; seeds in
    # the (delta/2, 3*delta/2) band may flip either way under walk noise
    decisive = [
        (a, t)
        for a, t in zip(bidi, truth)
        if t <= delta / 2.0 or t >= 1.5 * delta
    ]
    decisive_agree = sum(a.above_delta == (t >= delta) for a, t in decisive)

    return {
        "num_nodes": num_nodes,
        "delta": delta,
        "target": target,
        "mc_walk_length": mc_length,
        "bidi qps": batch_size / timings["bidirectional"],
        "mc qps": batch_size / timings["walks-only MC"],
        "speedup": timings["walks-only MC"] / timings["bidirectional"],
        "bidi mean abs err": bidi_err,
        "mc mean abs err": mc_err,
        "threshold agreement": agree / batch_size,
        "decisive seeds": len(decisive),
        "decisive agreement": (
            decisive_agree / len(decisive) if decisive else 1.0
        ),
    }


def test_bidirectional_beats_walks_only(benchmark, once):
    result = once(benchmark, run_reverse_push_bench, **PARAMS)

    print()
    for name, value in result.items():
        print(f"{name:22s} {value:,.6g}")

    # The ISSUE-9 acceptance: >= 5x over walks-only MC at delta = 10/n.
    assert result["speedup"] >= 5.0
    # The bidirectional estimator must not buy speed with accuracy: its
    # error stays within the r_max = delta/2 budget and every decision
    # for a seed clearly away from the threshold matches the reference.
    assert result["bidi mean abs err"] <= result["delta"] / 2.0
    assert result["decisive seeds"] > 0
    assert result["decisive agreement"] == 1.0
    _emit_json(result)
