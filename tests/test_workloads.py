"""Workloads: twitter-like stream, seed selection, link-prediction protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.link_prediction import (
    build_link_prediction_workload,
    evaluate_rankers,
    rank_from_scores,
)
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_graph, twitter_like_stream


@pytest.fixture(scope="module")
def stream():
    return twitter_like_stream(1500, 20_000, rng=42)


class TestTwitterLikeStream:
    def test_stream_shape(self, stream):
        assert len(stream) == 20_000
        assert stream.num_nodes == 1500
        assert all(e.kind == "add" for e in stream)

    def test_no_duplicates_or_self_loops(self, stream):
        edges = [e.edge for e in stream]
        assert len(set(edges)) == len(edges)
        assert all(u != v for u, v in edges)

    def test_all_nodes_eventually_introduced(self, stream):
        final = stream.snapshot_at(len(stream))
        degrees = final.out_degree_array() + final.in_degree_array()
        assert (degrees > 0).mean() > 0.99

    def test_nodes_arrive_gradually(self, stream):
        """Node arrival must be paced, not front-loaded — later cohorts
        need room to grow for the link-prediction protocol."""
        half = stream.snapshot_at(len(stream) // 2)
        active_half = int(
            ((half.out_degree_array() + half.in_degree_array()) > 0).sum()
        )
        assert 0.35 * 1500 < active_half < 0.75 * 1500

    def test_organic_growth_after_arrival(self, stream):
        """Users keep gaining friends after their node arrives."""
        early = stream.snapshot_at(len(stream) // 2)
        late = stream.snapshot_at(len(stream))
        grew = sum(
            1
            for node in early.nodes()
            if early.out_degree(node) > 0
            and late.out_degree(node) > early.out_degree(node)
        )
        assert grew > 100

    def test_heavy_tailed_indegree(self, stream):
        from repro.analysis.power_law import fit_rank_exponent

        final = stream.snapshot_at(len(stream))
        fit = fit_rank_exponent(
            final.in_degree_array().astype(float), min_rank=5, max_rank=150
        )
        assert 0.4 < fit.alpha < 1.1

    def test_graph_helper_matches_stream(self):
        graph = twitter_like_graph(300, 3000, rng=7)
        assert graph.num_nodes == 300
        assert graph.num_edges <= 3000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            twitter_like_stream(3, 100)
        with pytest.raises(ConfigurationError):
            twitter_like_stream(100, 10)


class TestSeedSelection:
    def test_band_respected(self, stream):
        graph = stream.snapshot_at(len(stream))
        users = users_with_friend_count(
            graph, minimum=10, maximum=20, count=30, rng=0
        )
        assert 0 < len(users) <= 30
        for user in users:
            assert 10 <= graph.out_degree(user) <= 20

    def test_count_none_returns_all(self, stream):
        graph = stream.snapshot_at(len(stream))
        all_users = users_with_friend_count(graph, minimum=10, maximum=20, count=None)
        sampled = users_with_friend_count(graph, minimum=10, maximum=20, count=10**9)
        assert all_users == sampled

    def test_validation(self, stream):
        graph = stream.snapshot_at(100)
        with pytest.raises(ConfigurationError):
            users_with_friend_count(graph, minimum=5, maximum=2)


class TestLinkPredictionWorkload:
    def test_cases_satisfy_protocol(self, stream):
        graph_a, cases = build_link_prediction_workload(
            stream, max_users=40, rng=1
        )
        assert cases, "workload must find evaluation users"
        graph_b = stream.snapshot_at(len(stream))
        for case in cases:
            friends = len(case.friends_at_a)
            assert 15 <= friends <= 40
            growth = len(case.new_friends) / friends
            assert 0.5 <= growth <= 1.0
            for friend in case.new_friends:
                assert friend not in case.friends_at_a
                assert graph_a.in_degree(friend) >= 5
                assert graph_b.has_edge(case.user, friend)

    def test_max_users_cap(self, stream):
        _, cases = build_link_prediction_workload(stream, max_users=5, rng=2)
        assert len(cases) <= 5

    def test_validation(self, stream):
        with pytest.raises(ConfigurationError):
            build_link_prediction_workload(stream, snapshot_a=0.9, snapshot_b=0.5)


class TestEvaluateRankers:
    def test_oracle_captures_everything(self, stream):
        graph_a, cases = build_link_prediction_workload(stream, max_users=10, rng=3)
        oracle = {
            case.user: sorted(case.new_friends) for case in cases
        }

        def oracle_ranker(graph, seed):
            return oracle[seed]

        def empty_ranker(graph, seed):
            return []

        table = evaluate_rankers(
            graph_a,
            cases,
            {"oracle": oracle_ranker, "empty": empty_ranker},
            tops=(100,),
        )
        mean_new = np.mean([len(c.new_friends) for c in cases])
        assert table["oracle"][100] == pytest.approx(mean_new)
        assert table["empty"][100] == 0.0

    def test_no_cases_rejected(self, stream):
        graph_a, _ = build_link_prediction_workload(stream, max_users=1, rng=4)
        with pytest.raises(ConfigurationError):
            evaluate_rankers(graph_a, [], {})

    def test_rank_from_scores_excludes(self):
        scores = np.array([0.0, 5.0, 3.0, 4.0])
        ranked = rank_from_scores(scores, exclude={1}, top=2)
        assert ranked == [3, 2]
