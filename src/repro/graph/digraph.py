"""A dynamic directed graph tuned for random-walk workloads.

The paper's data access model ("Social Store") requires, per node, O(1)
random access to the adjacency list, O(1) degree queries, and O(1)
edge insertion/deletion — this class provides exactly that:

* adjacency is a Python list per node, so uniform neighbour sampling is a
  single random index;
* a position map per node makes ``remove_edge`` an O(1) swap-pop;
* a global edge arena supports O(1) uniform random *edge* sampling, which
  the deletion experiments (Proposition 5) need.

Node ids are dense integers ``0 … n−1``.  Multi-edges are rejected
(:class:`~repro.errors.DuplicateEdgeError`); self-loops are accepted unless
the graph was built with ``allow_self_loops=False``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import (
    DuplicateEdgeError,
    EdgeNotFoundError,
    EmptyNeighborhoodError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.rng import RngLike, ensure_rng

__all__ = ["DynamicDiGraph"]


class DynamicDiGraph:
    """Mutable directed graph with O(1) edge updates and neighbour sampling."""

    __slots__ = (
        "_out",
        "_in",
        "_out_pos",
        "_in_pos",
        "_edges",
        "_edge_pos",
        "allow_self_loops",
    )

    def __init__(self, num_nodes: int = 0, *, allow_self_loops: bool = True) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._out: list[list[int]] = [[] for _ in range(num_nodes)]
        self._in: list[list[int]] = [[] for _ in range(num_nodes)]
        # _out_pos[u][v] = index of v inside _out[u]; mirrored for _in_pos.
        self._out_pos: list[dict[int, int]] = [{} for _ in range(num_nodes)]
        self._in_pos: list[dict[int, int]] = [{} for _ in range(num_nodes)]
        self._edges: list[tuple[int, int]] = []
        self._edge_pos: dict[tuple[int, int], int] = {}
        self.allow_self_loops = allow_self_loops

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
        allow_self_loops: bool = True,
    ) -> "DynamicDiGraph":
        """Build a graph from an edge iterable, growing nodes as needed."""
        graph = cls(num_nodes or 0, allow_self_loops=allow_self_loops)
        for u, v in edges:
            graph.ensure_node(max(u, v))
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "DynamicDiGraph":
        """Build from a ``networkx.DiGraph`` whose nodes are dense ints."""
        graph = cls(nx_graph.number_of_nodes())
        for u, v in nx_graph.edges():
            graph.add_edge(int(u), int(v))
        return graph

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (for interop and sanity checks)."""
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_nodes_from(range(self.num_nodes))
        nx_graph.add_edges_from(self._edges)
        return nx_graph

    def copy(self) -> "DynamicDiGraph":
        """Return a deep structural copy (shares no mutable state)."""
        clone = DynamicDiGraph(self.num_nodes, allow_self_loops=self.allow_self_loops)
        for u, v in self._edges:
            clone.add_edge(u, v)
        return clone

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def add_node(self) -> int:
        """Append a fresh node and return its id."""
        self._out.append([])
        self._in.append([])
        self._out_pos.append({})
        self._in_pos.append({})
        return len(self._out) - 1

    def ensure_node(self, node: int) -> None:
        """Grow the graph so that ``node`` is a valid id."""
        if node < 0:
            raise NodeNotFoundError(node)
        while node >= self.num_nodes:
            self.add_node()

    def has_node(self, node: int) -> bool:
        return 0 <= node < self.num_nodes

    def _check_node(self, node: int) -> None:
        if not self.has_node(node):
            raise NodeNotFoundError(node)

    def nodes(self) -> range:
        return range(self.num_nodes)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int) -> None:
        """Insert edge ``(source, target)``; O(1).

        Raises :class:`DuplicateEdgeError` if the edge exists and
        :class:`SelfLoopError` for self-loops on graphs that reject them.
        """
        self._check_node(source)
        self._check_node(target)
        if source == target and not self.allow_self_loops:
            raise SelfLoopError(source)
        key = (source, target)
        if key in self._edge_pos:
            raise DuplicateEdgeError(source, target)
        self._edge_pos[key] = len(self._edges)
        self._edges.append(key)
        self._out_pos[source][target] = len(self._out[source])
        self._out[source].append(target)
        self._in_pos[target][source] = len(self._in[target])
        self._in[target].append(source)

    def remove_edge(self, source: int, target: int) -> None:
        """Delete edge ``(source, target)``; O(1) via swap-pop."""
        key = (source, target)
        pos = self._edge_pos.pop(key, None)
        if pos is None:
            raise EdgeNotFoundError(source, target)
        last = self._edges.pop()
        if last != key:
            self._edges[pos] = last
            self._edge_pos[last] = pos
        self._swap_pop(self._out[source], self._out_pos[source], target)
        self._swap_pop(self._in[target], self._in_pos[target], source)

    @staticmethod
    def _swap_pop(adjacency: list[int], positions: dict[int, int], member: int) -> None:
        idx = positions.pop(member)
        tail = adjacency.pop()
        if tail != member:
            adjacency[idx] = tail
            positions[tail] = idx

    def has_edge(self, source: int, target: int) -> bool:
        return (source, target) in self._edge_pos

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges in arena order (not insertion order after deletes)."""
        return iter(self._edges)

    def edge_list(self) -> list[tuple[int, int]]:
        return list(self._edges)

    # ------------------------------------------------------------------
    # Degrees and neighbourhoods
    # ------------------------------------------------------------------

    def out_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._in[node])

    def out_neighbors(self, node: int) -> list[int]:
        """A *copy* of the out-adjacency list of ``node``."""
        self._check_node(node)
        return list(self._out[node])

    def in_neighbors(self, node: int) -> list[int]:
        """A *copy* of the in-adjacency list of ``node``."""
        self._check_node(node)
        return list(self._in[node])

    def out_view(self, node: int) -> Sequence[int]:
        """Read-only *view* of the out-adjacency (hot paths; do not mutate)."""
        return self._out[node]

    def in_view(self, node: int) -> Sequence[int]:
        """Read-only *view* of the in-adjacency (hot paths; do not mutate)."""
        return self._in[node]

    def out_degree_array(self) -> np.ndarray:
        """Out-degrees of all nodes as an int64 array."""
        return np.fromiter(
            (len(adj) for adj in self._out), dtype=np.int64, count=self.num_nodes
        )

    def in_degree_array(self) -> np.ndarray:
        """In-degrees of all nodes as an int64 array."""
        return np.fromiter(
            (len(adj) for adj in self._in), dtype=np.int64, count=self.num_nodes
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def random_out_neighbor(self, node: int, rng: RngLike = None) -> int:
        """Uniform random out-neighbour of ``node``; O(1)."""
        self._check_node(node)
        adjacency = self._out[node]
        if not adjacency:
            raise EmptyNeighborhoodError(node, "out")
        generator = ensure_rng(rng)
        return adjacency[int(generator.integers(len(adjacency)))]

    def random_in_neighbor(self, node: int, rng: RngLike = None) -> int:
        """Uniform random in-neighbour of ``node``; O(1)."""
        self._check_node(node)
        adjacency = self._in[node]
        if not adjacency:
            raise EmptyNeighborhoodError(node, "in")
        generator = ensure_rng(rng)
        return adjacency[int(generator.integers(len(adjacency)))]

    def random_edge(self, rng: RngLike = None) -> tuple[int, int]:
        """Uniform random existing edge; O(1) (Proposition 5 workloads)."""
        if not self._edges:
            raise EdgeNotFoundError(-1, -1)
        generator = ensure_rng(rng)
        return self._edges[int(generator.integers(len(self._edges)))]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def to_csr(self, direction: str = "out"):
        """Freeze the current adjacency into a :class:`~repro.graph.csr.CSRGraph`.

        ``direction='out'`` follows out-edges (PageRank forward steps);
        ``direction='in'`` follows in-edges (SALSA backward steps).
        """
        from repro.graph.csr import CSRGraph

        if direction == "out":
            lists = self._out
        elif direction == "in":
            lists = self._in
        else:
            raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        for node, adjacency in enumerate(lists):
            indptr[node + 1] = indptr[node] + len(adjacency)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for node, adjacency in enumerate(lists):
            indices[indptr[node] : indptr[node + 1]] = adjacency
        return CSRGraph(indptr=indptr, indices=indices)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __contains__(self, edge: tuple[int, int]) -> bool:
        return edge in self._edge_pos

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )
