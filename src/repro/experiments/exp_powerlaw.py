"""E-F2/E-F3/E-F4: power-law structure of degrees and (P)PR vectors (§4.3).

Figure 2: in-degree and global PageRank follow power laws with roughly the
same rank-size exponent (paper: ≈ 0.76 on Twitter).  Figure 3: personalized
PageRank vectors follow power laws too.  Figure 4: per-user exponents —
fitted on the window ``[2f, 20f]`` (Remark 4) — cluster around the global
exponent (paper: mean 0.77, sd 0.08).

The global PageRank here comes from the *system under test* (the walk
store), not the baseline — dogfooding the estimator; personalized vectors
use the exact solver (ground truth is what's being characterized).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.power_law import fit_personalized_exponent, fit_rank_exponent
from repro.baselines.power_iteration import exact_personalized_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_graph

__all__ = ["run_fig2", "run_fig3", "run_fig4"]

#: Head-window used for global fits: at synthetic scale (n≈10⁴ vs Twitter's
#: 10⁸) the scaling regime is narrower, so the fit window is the head/mid
#: section before the finite-size cutoff.  EXPERIMENTS.md discusses this.
GLOBAL_FIT_WINDOW = (5, 300)


@register("E-F2")
def run_fig2(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    walks_per_node: int = 10,
    rng=42,
) -> ExperimentResult:
    """Figure 2: in-degree and global PageRank power laws."""
    generator = ensure_rng(rng)
    graph = twitter_like_graph(num_nodes, num_edges, rng=generator)
    indegree = np.sort(graph.in_degree_array().astype(float))[::-1]
    indeg_fit = fit_rank_exponent(
        indegree, min_rank=GLOBAL_FIT_WINDOW[0], max_rank=GLOBAL_FIT_WINDOW[1],
        presorted=True,
    )

    engine = IncrementalPageRank.from_graph(
        graph, reset_probability=0.2, walks_per_node=walks_per_node, rng=generator
    )
    pagerank = np.sort(engine.pagerank())[::-1]
    pr_fit = fit_rank_exponent(
        pagerank, min_rank=GLOBAL_FIT_WINDOW[0], max_rank=GLOBAL_FIT_WINDOW[1],
        presorted=True,
    )

    ranks = np.arange(1, len(indegree) + 1)
    figure = ascii_plot(
        {
            "indegree": (ranks[indegree > 0].tolist(), indegree[indegree > 0].tolist()),
            "pagerank(x n)": (
                ranks[pagerank > 0].tolist(),
                (pagerank[pagerank > 0] * num_nodes).tolist(),
            ),
        },
        log_x=True,
        log_y=True,
        title="Figure 2: rank-size power laws (log-log)",
    )

    result = ExperimentResult(
        experiment_id="E-F2",
        title="Figure 2: in-degree and PageRank power laws",
        params={
            "n": num_nodes,
            "m": num_edges,
            "R": walks_per_node,
            "fit_window": GLOBAL_FIT_WINDOW,
        },
        rows=[
            {
                "quantity": "in-degree",
                "alpha": indeg_fit.alpha,
                "r^2": indeg_fit.r_squared,
                "paper alpha": 0.76,
            },
            {
                "quantity": "PageRank (MC store)",
                "alpha": pr_fit.alpha,
                "r^2": pr_fit.r_squared,
                "paper alpha": 0.76,
            },
        ],
        figures={"fig2": figure},
    )
    result.notes.append(
        "The reproduction target is that both exponents are < 1, roughly "
        "EQUAL to each other (Litvak et al.'s theorem), with high r^2 — "
        "not the literal Twitter value."
    )
    return result


def _personalized_vectors(graph, seeds, reset_probability=0.2):
    return exact_personalized_pagerank(
        graph, seeds, reset_probability=reset_probability
    )


@register("E-F3")
def run_fig3(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    num_users: int = 6,
    rng=42,
) -> ExperimentResult:
    """Figure 3: personalized PageRank vectors of random users."""
    generator = ensure_rng(rng)
    graph = twitter_like_graph(num_nodes, num_edges, rng=generator)
    seeds = users_with_friend_count(
        graph, minimum=15, maximum=40, count=num_users, rng=generator
    )
    vectors = _personalized_vectors(graph, seeds)

    rows = []
    series = {}
    for seed, vector in zip(seeds, vectors):
        friends = graph.out_degree(seed)
        fit = fit_personalized_exponent(vector, friends)
        rows.append(
            {
                "user": seed,
                "friends f": friends,
                "alpha [2f,20f]": fit.alpha,
                "r^2": fit.r_squared,
            }
        )
        ordered = np.sort(vector[vector > 0])[::-1]
        ranks = np.arange(1, len(ordered) + 1)
        series[f"user {seed} (f={friends})"] = (
            ranks.tolist(),
            ordered.tolist(),
        )

    figure = ascii_plot(
        series,
        log_x=True,
        log_y=True,
        title="Figure 3: personalized PageRank rank-size plots",
    )
    result = ExperimentResult(
        experiment_id="E-F3",
        title="Figure 3: personalized PageRank power laws (random users)",
        params={"n": num_nodes, "m": num_edges, "users": num_users},
        rows=rows,
        figures={"fig3": figure},
    )
    result.notes.append(
        "Paper Remark 3: the head of each vector (direct friends) follows "
        "a different law; the [2f, 20f] window skips it."
    )
    return result


@register("E-F4")
def run_fig4(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    num_users: int = 100,
    rng=42,
) -> ExperimentResult:
    """Figure 4: distribution of per-user PPR exponents vs the global one."""
    generator = ensure_rng(rng)
    graph = twitter_like_graph(num_nodes, num_edges, rng=generator)
    seeds = users_with_friend_count(
        graph, minimum=15, maximum=40, count=num_users, rng=generator
    )
    vectors = _personalized_vectors(graph, seeds)

    exponents = []
    friend_counts = []
    skipped = 0
    for seed, vector in zip(seeds, vectors):
        friends = graph.out_degree(seed)
        try:
            fit = fit_personalized_exponent(vector, friends)
        except Exception:
            skipped += 1
            continue
        exponents.append(fit.alpha)
        friend_counts.append(friends)
    exponents_arr = np.array(exponents)

    indegree = graph.in_degree_array().astype(float)
    global_fit = fit_rank_exponent(
        indegree,
        min_rank=GLOBAL_FIT_WINDOW[0],
        max_rank=GLOBAL_FIT_WINDOW[1],
    )
    # Window-matched comparison: at synthetic scale the [2f, 20f] window
    # sits partly in the finite-size cutoff, steepening every fit; fitting
    # the *global* law over the same rank window is the like-for-like
    # comparison (at Twitter scale the two windows see the same regime).
    mean_friends = int(np.mean(friend_counts)) if friend_counts else 25
    global_window_fit = fit_rank_exponent(
        indegree, min_rank=2 * mean_friends, max_rank=20 * mean_friends
    )
    above_one = float((exponents_arr > 1.0).mean())

    ordered = np.sort(exponents_arr)
    figure = ascii_plot(
        {"per-user alpha": (list(range(1, len(ordered) + 1)), ordered.tolist())},
        title="Figure 4: sorted per-user power-law exponents",
    )

    result = ExperimentResult(
        experiment_id="E-F4",
        title="Figure 4: per-user PPR exponents cluster near the global exponent",
        params={"n": num_nodes, "m": num_edges, "users": len(exponents)},
        rows=[
            {
                "statistic": "mean per-user alpha",
                "measured": float(exponents_arr.mean()),
                "paper": 0.77,
            },
            {
                "statistic": "std per-user alpha",
                "measured": float(exponents_arr.std()),
                "paper": 0.08,
            },
            {
                "statistic": "global in-degree alpha (head window)",
                "measured": global_fit.alpha,
                "paper": 0.76,
            },
            {
                "statistic": "global in-degree alpha (same [2f,20f] window)",
                "measured": global_window_fit.alpha,
                "paper": 0.76,
            },
            {
                "statistic": "fraction alpha > 1",
                "measured": above_one,
                "paper": 0.02,
            },
        ],
        figures={"fig4": figure},
    )
    if skipped:
        result.notes.append(f"{skipped} users skipped (window exceeded vector).")
    result.notes.append(
        "Reproduction target: mean per-user alpha ≈ global alpha fitted on "
        "the same window, with small sd. At n~10^4 the [2f,20f] window "
        "clips the finite-size cutoff, pushing all fits above the Twitter "
        "values and many above 1 (the paper saw 2% above 1 at n~10^8; its "
        "Remark that the analysis adapts to alpha > 1 applies)."
    )
    return result
