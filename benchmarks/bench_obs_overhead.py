"""Observability overhead: the plane must be ~free when switched off.

The ISSUE-7 acceptance: against a bare :class:`QueryKernel` (no registry,
no tracer) on the B=64 Zipf batch workload of ``bench_query_kernel``,

* a fully instrumented kernel with observability **disabled**
  (``REPRO_OBS=0``, the default) stays within **5%** — the gate is one
  ``enabled`` branch per batch plus two counter increments;
* the same kernel with stage profiling *and* span tracing **enabled**
  (``REPRO_OBS=2``) stays within **15%** — timing only rare sites (RNG
  refills every 256 draws, first-visit node loads, phase boundaries) is
  what keeps the full-visibility path serveable.

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (the CI workflow does).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.core.query_kernel import QueryKernel
from repro.obs import LEVEL_TRACE, MetricsRegistry, Tracer, set_level
from repro.serve.traffic import zipf_seed_sequence
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "walk_length": 1000,
        "seed_pool": 64,
        "batch_size": 64,
        "repeats": 10,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "walk_length": 2000,
        "seed_pool": 64,
        "batch_size": 64,
        "repeats": 10,
        "rng": 42,
    }
)


def _best_of_interleaved(candidates, repeats):
    """Best wall time per candidate, rounds interleaved, GC parked.

    Interleaving keeps transient machine slowdowns from biasing one side
    of a ratio.  The collector is disabled for the measured region: the
    enabled-tracing candidate allocates thousands of spans per call, and
    letting gen-0 collections land in *whichever call runs next* is
    exactly the cross-contamination an overhead ratio can't tolerate.
    """
    best = {name: float("inf") for name in candidates}
    for function in candidates.values():  # warm caches / lazy imports
        function()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for name, function in candidates.items():
                gc.collect()
                started = time.perf_counter()
                function()
                best[name] = min(
                    best[name], time.perf_counter() - started
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def run_obs_overhead_bench(
    *,
    num_nodes,
    num_edges,
    walk_length,
    seed_pool,
    batch_size,
    repeats,
    rng,
):
    graph = twitter_like_graph(num_nodes, num_edges, rng=0)
    engine = IncrementalPageRank.from_graph(graph, walks_per_node=10, rng=1)
    store = engine.pagerank_store
    eps = engine.reset_probability

    bare = QueryKernel(store, reset_probability=eps)
    instrumented = QueryKernel(
        store,
        reset_probability=eps,
        registry=MetricsRegistry(),
        tracer=Tracer(capacity=16_384),
    )
    seeds = zipf_seed_sequence(batch_size, seed_pool, rng=rng)

    def streams():
        return [
            np.random.default_rng([0, seed, walk_length]) for seed in seeds
        ]

    def run_bare():
        bare.batch_stitched_walks(seeds, walk_length, rngs=streams())

    def run_disabled():
        # REPRO_OBS=0 (the ambient default): registry attached, every
        # stage/tracing site gated off.
        instrumented.batch_stitched_walks(seeds, walk_length, rngs=streams())

    def run_enabled():
        level = set_level(LEVEL_TRACE)
        try:
            instrumented.batch_stitched_walks(
                seeds, walk_length, rngs=streams()
            )
        finally:
            set_level(level)

    # instrumentation must not change answers (same RNG streams)
    reference = bare.batch_stitched_walks(seeds, walk_length, rngs=streams())
    level = set_level(LEVEL_TRACE)
    try:
        traced = instrumented.batch_stitched_walks(
            seeds, walk_length, rngs=streams()
        )
    finally:
        set_level(level)
    for one, two in zip(reference, traced):
        assert one.visit_counts == two.visit_counts

    timings = _best_of_interleaved(
        {
            "bare": run_bare,
            "obs disabled": run_disabled,
            "obs enabled": run_enabled,
        },
        repeats,
    )
    return {
        "bare qps": batch_size / timings["bare"],
        "disabled overhead": timings["obs disabled"] / timings["bare"] - 1.0,
        "enabled overhead": timings["obs enabled"] / timings["bare"] - 1.0,
    }


def test_obs_overhead(benchmark, once):
    result = once(benchmark, run_obs_overhead_bench, **PARAMS)

    print()
    print(
        "  ".join(
            f"{name} {value:,.3f}" for name, value in result.items()
        )
    )

    # The ISSUE-7 overhead budget: <5% disabled, <15% fully enabled.
    assert result["disabled overhead"] < 0.05
    assert result["enabled overhead"] < 0.15
