"""Unit tests for the arena-backed ColumnarWalkStore (DESIGN.md §7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import (
    BACKEND_COLUMNAR,
    BACKEND_OBJECT,
    ColumnarWalkStore,
    make_walk_store,
)
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    SIDE_AUTHORITY,
    SIDE_HUB,
    WalkIndex,
    WalkSegment,
    WalkStore,
)
from repro.errors import ConfigurationError, WalkStateError


class TestFactory:
    def test_backends(self):
        assert isinstance(make_walk_store(3), ColumnarWalkStore)
        assert isinstance(
            make_walk_store(3, backend=BACKEND_OBJECT), WalkStore
        )
        assert isinstance(make_walk_store(3, backend=BACKEND_COLUMNAR), WalkIndex)
        with pytest.raises(ConfigurationError):
            make_walk_store(3, backend="mongodb")

    def test_track_sides_passthrough(self):
        store = make_walk_store(2, track_sides=True)
        assert store.track_sides


class TestSegmentLifecycle:
    def test_add_and_query(self):
        store = ColumnarWalkStore(3)
        sid = store.add_segment(WalkSegment([0, 1, 1, 2], END_RESET))
        assert store.num_segments == 1
        assert store.visit_count(1) == 2
        assert store.distinct_segment_count(1) == 1
        assert store.visits_of(1) == {sid: 2}
        assert store.segments_starting_at(0) == [sid]
        assert store.segment_nodes(sid) == [0, 1, 1, 2]
        assert store.segment_length(sid) == 4
        assert store.source_of(sid) == 0
        assert store.end_reason_of(sid) == END_RESET
        assert store.total_visits == 4
        store.check_invariants()

    def test_segment_view_is_readonly(self):
        store = ColumnarWalkStore(3)
        sid = store.add_segment(WalkSegment([0, 1, 2], END_RESET))
        view = store.segment_view(sid)
        assert view.tolist() == [0, 1, 2]
        with pytest.raises(ValueError):
            view[0] = 7

    def test_get_returns_materialized_copy(self):
        store = ColumnarWalkStore(3)
        sid = store.add_segment(WalkSegment([0, 1], END_RESET))
        segment = store.get(sid)
        segment.nodes.append(99)  # mutating the copy must not corrupt
        assert store.segment_nodes(sid) == [0, 1]
        store.check_invariants()

    def test_ensure_node_growth(self):
        store = ColumnarWalkStore()
        store.add_segment(WalkSegment([5, 2], END_RESET))
        assert store.num_nodes == 6
        assert store.visit_count(5) == 1
        assert store.visit_count(17) == 0
        assert store.visits_of(17) == {}
        assert store.segment_ids_visiting(17) == []

    def test_unknown_segment_id(self):
        store = ColumnarWalkStore(2)
        with pytest.raises(WalkStateError):
            store.get(0)
        with pytest.raises(WalkStateError):
            store.segment_view(3)


class TestReplaceSuffix:
    def test_in_place_shrink(self):
        store = ColumnarWalkStore(4)
        sid = store.add_segment(WalkSegment([0, 1, 2, 3], END_RESET))
        store.replace_suffix(sid, 1, [], END_DANGLING)
        assert store.segment_nodes(sid) == [0, 1]
        assert store.end_reason_of(sid) == END_DANGLING
        assert store.visit_count(2) == 0
        assert store.total_visits == 2
        store.check_invariants()

    def test_grow_relocates_segment(self):
        store = ColumnarWalkStore(8)
        sid = store.add_segment(WalkSegment([0, 1], END_RESET))
        other = store.add_segment(WalkSegment([3, 4], END_RESET))
        store.replace_suffix(sid, 0, [5, 6, 7, 5, 6, 7], END_RESET)
        assert store.segment_nodes(sid) == [0, 5, 6, 7, 5, 6, 7]
        assert store.segment_nodes(other) == [3, 4]  # neighbour untouched
        assert store.visits_of(5) == {sid: 2}
        assert store.arena_utilization < 1.0  # the old slot is now a hole
        store.check_invariants()

    def test_out_of_range_keep_until(self):
        store = ColumnarWalkStore(2)
        sid = store.add_segment(WalkSegment([0, 1], END_RESET))
        with pytest.raises(WalkStateError):
            store.replace_suffix(sid, 2, [], END_RESET)
        with pytest.raises(WalkStateError):
            store.replace_suffix(sid, -1, [], END_RESET)

    def test_bad_end_reason(self):
        store = ColumnarWalkStore(2)
        sid = store.add_segment(WalkSegment([0, 1], END_RESET))
        with pytest.raises(WalkStateError):
            store.replace_suffix(sid, 0, [1], 7)


class TestRebuildSegment:
    def test_rebuild(self):
        store = ColumnarWalkStore(4)
        sid = store.add_segment(WalkSegment([1, 2, 3], END_RESET))
        store.rebuild_segment(sid, [1, 0], END_DANGLING)
        assert store.segment_nodes(sid) == [1, 0]
        assert store.end_reason_of(sid) == END_DANGLING
        assert store.visit_count(3) == 0
        store.check_invariants()

    def test_rebuild_must_keep_source(self):
        store = ColumnarWalkStore(4)
        sid = store.add_segment(WalkSegment([1, 2], END_RESET))
        with pytest.raises(WalkStateError):
            store.rebuild_segment(sid, [2, 1], END_RESET)


class TestApplySegmentUpdates:
    def _seeded(self, count: int) -> ColumnarWalkStore:
        store = ColumnarWalkStore(10)
        rng = np.random.default_rng(5)
        segments = [
            [int(x) for x in rng.integers(10, size=int(rng.integers(1, 8)))]
            for _ in range(count)
        ]
        store.bulk_add_segments(segments, [END_RESET] * count)
        return store

    @pytest.mark.parametrize("count", [8, 600])
    def test_bulk_updates_match_scalar_semantics(self, count):
        # count=8 exercises the per-segment path, count=600 the
        # vectorized full-index-rebuild path — results must be identical
        store = self._seeded(count)
        reference = self._seeded(count)
        updates = []
        rng = np.random.default_rng(11)
        for sid in range(0, count, 2):
            tail = [int(x) for x in rng.integers(10, size=3)]
            if sid % 4 == 0:
                updates.append((sid, 0, tail, END_RESET))
            else:
                updates.append((sid, -1, [store.source_of(sid), *tail], END_DANGLING))
        store.apply_segment_updates(updates)
        for sid, keep_until, tail, reason in updates:
            if keep_until < 0:
                reference.rebuild_segment(sid, tail, reason)
            else:
                reference.replace_suffix(sid, keep_until, tail, reason)
        store.check_invariants()
        reference.check_invariants()
        assert store.total_visits == reference.total_visits
        for sid in range(count):
            assert store.segment_nodes(sid) == reference.segment_nodes(sid)
            assert store.end_reason_of(sid) == reference.end_reason_of(sid)
        assert store.visit_count_array().tolist() == (
            reference.visit_count_array().tolist()
        )


class TestBulkAndArrays:
    def test_bulk_add_matches_incremental(self):
        segments = [[0, 1, 2], [1, 1], [2, 0, 0, 1]]
        reasons = [END_RESET, END_DANGLING, END_RESET]
        bulk = ColumnarWalkStore(3)
        bulk.bulk_add_segments(segments, reasons)
        scalar = ColumnarWalkStore(3)
        for nodes, reason in zip(segments, reasons):
            scalar.add_segment(WalkSegment(list(nodes), reason))
        bulk.check_invariants()
        scalar.check_invariants()
        assert bulk.visits_of(1) == scalar.visits_of(1)
        assert bulk.segments_starting_at(1) == scalar.segments_starting_at(1)
        assert bulk.total_visits == scalar.total_visits

    def test_bulk_with_parity_sequence(self):
        store = ColumnarWalkStore(4, track_sides=True)
        store.bulk_add_segments(
            [[0, 1], [1, 2]], [END_RESET, END_RESET], [SIDE_HUB, SIDE_AUTHORITY]
        )
        assert store.parity_of(0) == SIDE_HUB
        assert store.parity_of(1) == SIDE_AUTHORITY
        assert store.side_visit_count(1, SIDE_AUTHORITY) == 2
        store.check_invariants()

    @pytest.mark.parametrize("backend", [BACKEND_OBJECT, BACKEND_COLUMNAR])
    def test_bulk_rejects_length_mismatches(self, backend):
        store = make_walk_store(3, backend=backend)
        with pytest.raises(WalkStateError):
            store.bulk_add_segments([[0, 1], [1, 2]], [END_RESET])
        with pytest.raises(WalkStateError):
            store.bulk_add_segments(
                [[0, 1], [1, 2]], [END_RESET, END_RESET], [0, 1, 0]
            )
        assert store.num_segments == 0

    def test_memory_stats_on_both_backends(self):
        for backend in (BACKEND_OBJECT, BACKEND_COLUMNAR):
            store = make_walk_store(3, backend=backend)
            store.bulk_add_segments([[0, 1, 2]], [END_RESET])
            stats = store.memory_stats()
            assert stats["bytes"] == store.memory_bytes()
            assert 0.0 < stats["arena_utilization"] <= 1.0

    def test_bulk_on_nonempty_store_falls_back(self):
        store = ColumnarWalkStore(3)
        store.add_segment(WalkSegment([0, 1], END_RESET))
        store.bulk_add_segments([[1, 2], [2, 0]], [END_RESET, END_DANGLING])
        assert store.num_segments == 3
        store.check_invariants()

    def test_roundtrip_through_arrays(self):
        store = ColumnarWalkStore(5, track_sides=True)
        store.bulk_add_segments(
            [[0, 1, 2], [3, 4], [4, 0]],
            [END_RESET, END_DANGLING, END_RESET],
            [0, 1, 0],
        )
        store.replace_suffix(0, 0, [3, 3, 3, 3], END_RESET)  # force a hole
        flat, lengths, reasons, parities = store.to_arrays()
        assert int(lengths.sum()) == len(flat)
        rebuilt = ColumnarWalkStore.from_arrays(
            flat, lengths, reasons, parities, num_nodes=5, track_sides=True
        )
        rebuilt.check_invariants()
        assert rebuilt.total_visits == store.total_visits
        for sid in range(store.num_segments):
            assert rebuilt.segment_nodes(sid) == store.segment_nodes(sid)
            assert rebuilt.parity_of(sid) == store.parity_of(sid)

    def test_from_arrays_rejects_corruption(self):
        with pytest.raises(WalkStateError):
            ColumnarWalkStore.from_arrays(
                np.asarray([0, 1], dtype=np.int64),
                np.asarray([3], dtype=np.int64),  # lengths disagree with flat
                np.asarray([END_RESET], dtype=np.int8),
                np.asarray([0], dtype=np.int8),
            )
        with pytest.raises(WalkStateError):
            ColumnarWalkStore.from_arrays(
                np.asarray([0, 1], dtype=np.int64),
                np.asarray([2], dtype=np.int64),
                np.asarray([9], dtype=np.int8),  # unknown end reason
                np.asarray([0], dtype=np.int8),
            )

    def test_compact_reclaims_holes(self):
        store = ColumnarWalkStore(6)
        for start in range(5):
            store.add_segment(WalkSegment([start, start + 1], END_RESET))
        for sid in range(5):
            store.replace_suffix(sid, 0, [5, 4, 3, 2, 1, 0], END_RESET)
        assert store.arena_utilization < 1.0
        before = {sid: store.segment_nodes(sid) for sid in range(5)}
        store.compact()
        store.check_invariants()
        assert store.arena_utilization > 0.99
        assert {sid: store.segment_nodes(sid) for sid in range(5)} == before


class TestSides:
    def test_side_counts(self):
        store = ColumnarWalkStore(3, track_sides=True)
        store.add_segment(WalkSegment([0, 1, 2], END_RESET, parity_offset=0))
        store.add_segment(
            WalkSegment([1, 2], END_DANGLING, parity_offset=SIDE_AUTHORITY)
        )
        assert store.side_visit_count(0, SIDE_HUB) == 1
        assert store.side_visit_count(1, SIDE_AUTHORITY) == 2
        assert store.side_visit_count(2, SIDE_HUB) == 2
        assert store.side_visit_count_array(SIDE_AUTHORITY).tolist() == [0, 2, 0]
        store.check_invariants()

    def test_sides_require_tracking(self):
        store = ColumnarWalkStore(2)
        with pytest.raises(WalkStateError):
            store.side_visit_count(0, SIDE_HUB)
        with pytest.raises(WalkStateError):
            store.side_visit_count_array(SIDE_HUB)


class TestMemoryAccounting:
    def test_memory_bytes_and_stats(self):
        for backend in (BACKEND_OBJECT, BACKEND_COLUMNAR):
            store = make_walk_store(4, backend=backend)
            store.bulk_add_segments([[0, 1, 2, 3], [2, 2]], [END_RESET, END_RESET])
            assert store.memory_bytes() > 0
        columnar = make_walk_store(4)
        columnar.bulk_add_segments([[0, 1, 2, 3]], [END_RESET])
        stats = columnar.memory_stats()
        assert stats["arena_live"] == 4
        assert 0.0 < stats["arena_utilization"] <= 1.0
        assert stats["bytes"] == columnar.memory_bytes()

    def test_index_row_growth_under_churn(self):
        # many segments revisiting one hub force repeated row relocations
        store = ColumnarWalkStore(4)
        for _ in range(40):
            store.add_segment(WalkSegment([0, 1], END_RESET))
        assert store.distinct_segment_count(0) == 40
        assert store.segment_ids_visiting(0) == list(range(40))
        store.check_invariants()
