#!/usr/bin/env python
"""Quickstart: incremental PageRank + personalized queries in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import IncrementalPageRank, PersonalizedPageRank
from repro.workloads.twitter_like import twitter_like_graph


def main() -> None:
    # 1. A synthetic Twitter-like follow graph (power-law in-degrees,
    #    community structure, 5k users / 60k follows).
    graph = twitter_like_graph(5_000, 60_000, rng=7)
    print(f"graph: {graph}")

    # 2. Build the walk store: R = 10 reset-walk segments per node.
    #    From here on, PageRank estimates are live counters.
    engine = IncrementalPageRank.from_graph(
        graph, reset_probability=0.2, walks_per_node=10, rng=7
    )
    print(f"stored segments: {engine.walks.num_segments}")
    print(f"top-5 PageRank: {engine.top(5)}")

    # 3. The graph changes; estimates stay fresh at ~constant cost.
    report = engine.add_edge(4_321, 17)
    print(
        f"edge (4321→17) arrived: {report.segments_rerouted} segments "
        f"repaired, {report.steps_resimulated} walk steps resimulated"
    )
    report = engine.remove_edge(4_321, 17)
    print(f"…and unfollowed: {report.segments_rerouted} segments repaired")

    # 4. Personalized queries stitch the stored segments: few DB fetches.
    ppr = PersonalizedPageRank(engine.pagerank_store, rng=7)
    seed = 1_234
    walk = ppr.top_k(seed, k=10, length=5_000, exclude_friends=True)
    print(f"\nwho should user {seed} follow?")
    for node, visits in walk.top(10):
        print(f"  user {node:>5}  (visited {visits}x by the personalized walk)")
    print(
        f"walk length 5000, database fetches: {walk.fetches} "
        f"(stitching reused {walk.segments_used} stored segments)"
    )


if __name__ == "__main__":
    main()
