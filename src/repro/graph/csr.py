"""Frozen CSR adjacency snapshots and the vectorized batch walker.

Simulating ``n·R`` reset walks one Python step at a time is far too slow for
realistic store sizes (the paper stores ~``10⁹`` walk steps).  The batch
walker here advances *all* active walks one step per numpy round:

* one vector of ε-coins decides which walks reset this round,
* one vector of uniform offsets picks each surviving walk's next neighbour
  straight out of the CSR ``indices`` arena,
* per-round (walk-id, node) pairs are accumulated and assembled into
  per-walk Python lists with a single ``lexsort`` at the end.

This keeps walk-store initialization at a few numpy passes per expected
segment length (``≈ 1/ε`` rounds), instead of millions of interpreter steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.rng import RngLike, ensure_rng

__all__ = ["CSRGraph", "BatchWalkResult", "batch_reset_walks", "assemble_segments"]

#: End-reason codes shared with :mod:`repro.core.walks`.
END_RESET = 0
END_DANGLING = 1


@dataclass(frozen=True)
class CSRGraph:
    """Immutable compressed-sparse-row adjacency.

    ``indices[indptr[u]:indptr[u+1]]`` are the neighbours of ``u`` in the
    frozen direction.  Built via :meth:`repro.graph.digraph.DynamicDiGraph.to_csr`.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr does not delimit indices")

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        return self.indices[self.indptr[node] : self.indptr[node + 1]]


@dataclass
class BatchWalkResult:
    """Outcome of :func:`batch_reset_walks`.

    ``segments[i]`` is the node list of walk ``i`` (starting at its source);
    ``end_reasons[i]`` is :data:`END_RESET` or :data:`END_DANGLING`;
    ``capped`` counts walks truncated at the safety cap (statistically
    negligible for sane ε, but reported rather than hidden).
    """

    segments: list[list[int]]
    end_reasons: np.ndarray
    capped: int = 0

    def total_visits(self) -> int:
        return sum(len(segment) for segment in self.segments)


def batch_reset_walks(
    csr: CSRGraph,
    starts: Sequence[int],
    reset_probability: float,
    rng: RngLike = None,
    *,
    max_steps: Optional[int] = None,
) -> BatchWalkResult:
    """Run one reset walk from every entry of ``starts``, vectorized.

    Semantics (normative, see DESIGN.md §5): at each node the walk first
    flips an ε-coin.  Heads (probability ``reset_probability``) ends the
    segment with reason ``RESET``.  Tails at a node with no out-edges ends
    it with reason ``DANGLING`` ("continue decided, step pending").  Tails
    otherwise steps to a uniform random neighbour.

    ``max_steps`` caps segment length as a safety valve (default
    ``max(1000, 50/ε)``); capped walks are marked ``RESET`` and counted.
    """
    if not 0.0 < reset_probability <= 1.0:
        raise ValueError(
            f"reset_probability must be in (0, 1], got {reset_probability}"
        )
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = max(1000, int(50.0 / reset_probability))

    starts_arr = np.asarray(starts, dtype=np.int64)
    num_walks = len(starts_arr)
    end_reasons = np.zeros(num_walks, dtype=np.int8)
    if num_walks == 0:
        return BatchWalkResult(segments=[], end_reasons=end_reasons)

    active = np.arange(num_walks, dtype=np.int64)
    current = starts_arr.copy()
    round_ids: list[np.ndarray] = []
    round_nodes: list[np.ndarray] = []
    capped = 0

    for _ in range(max_steps):
        positions = current[active]
        coins = generator.random(active.size)
        continues = coins >= reset_probability
        degrees = csr.indptr[positions + 1] - csr.indptr[positions]
        dangling = continues & (degrees == 0)
        stepping = continues & (degrees > 0)

        end_reasons[active[dangling]] = END_DANGLING
        # RESET is the zero-initialized default for the coins < ε walks.

        if stepping.any():
            step_nodes = positions[stepping]
            step_degrees = degrees[stepping]
            offsets = (generator.random(step_nodes.size) * step_degrees).astype(
                np.int64
            )
            successors = csr.indices[csr.indptr[step_nodes] + offsets]
            stepping_ids = active[stepping]
            round_ids.append(stepping_ids)
            round_nodes.append(successors)
            current[stepping_ids] = successors
            active = stepping_ids
        else:
            active = active[:0]
            break

    if active.size:
        capped = int(active.size)
        end_reasons[active] = END_RESET

    segments = assemble_segments(starts_arr, round_ids, round_nodes)
    return BatchWalkResult(segments=segments, end_reasons=end_reasons, capped=capped)


def assemble_segments(
    starts: np.ndarray,
    round_ids: list[np.ndarray],
    round_nodes: list[np.ndarray],
) -> list[list[int]]:
    """Turn per-round (walk-id, node) pairs into per-walk node lists.

    Shared by the PageRank batch walker above and the SALSA batch walker in
    :mod:`repro.core.salsa` (whose rounds alternate forward/backward steps
    but produce the same (walk-id, node) stream shape).
    """
    num_walks = len(starts)
    if not round_ids:
        return [[int(s)] for s in starts]
    all_ids = np.concatenate(round_ids)
    all_nodes = np.concatenate(round_nodes)
    all_rounds = np.concatenate(
        [np.full(ids.size, r, dtype=np.int64) for r, ids in enumerate(round_ids)]
    )
    order = np.lexsort((all_rounds, all_ids))
    sorted_ids = all_ids[order]
    sorted_nodes = all_nodes[order]
    counts = np.bincount(sorted_ids, minlength=num_walks)
    boundaries = np.cumsum(counts)[:-1]
    chunks = np.split(sorted_nodes, boundaries)
    return [
        [int(start), *map(int, chunk)] for start, chunk in zip(starts, chunks)
    ]
