"""Differential oracle + unit battery for the bounded-staleness scheduler.

The deferral layer can silently corrupt results in ways no single
assertion catches, so the center of gravity here is differential:

* **bit-identity** — after any ``flush()``, a replay-mode scheduler's
  engine (graph, walk store, scores, *and* RNG stream) is
  byte-for-byte the engine an eager caller would have produced with the
  same seeded RNG, for random op sequences with random flush points,
  across object / columnar / sharded backends;
* **granularity invariance** — flushing after every event, at arbitrary
  midpoints, or once at the end all land on the same final state;
* **coalesce equivalence** — a coalesce-mode flush equals one eager
  ``apply_batch`` of the queued slice;
* **budget soundness** — on adversarial hub-concentrated streams the
  *measured* PPR error of the stale store (total-variation distance
  against a fully-repaired twin) stays within the configured
  ``staleness_budget`` at every observable point;
* **repair-on-read** — a bounded ``QueryEngine`` answers a query on a
  stale seed bit-identically to an eager ``QueryEngine`` whose engine
  never deferred.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.incremental import BatchUpdateReport, IncrementalPageRank
from repro.core.scheduler import (
    REPAIR_COALESCE,
    REPAIR_REPLAY,
    StalenessScheduler,
)
from repro.errors import (
    ConfigurationError,
    DuplicateEdgeError,
    EdgeNotFoundError,
)
from repro.graph.arrival import ADD, REMOVE, ArrivalEvent
from repro.serve.engine import QueryEngine
from repro.serve.stats import ServeStats
from repro.workloads.twitter_like import twitter_like_graph

BACKENDS = ["object", "columnar", "sharded:3"]

NUM_NODES = 40
NUM_EDGES = 220


def build_engine(backend: str = "object", seed: int = 7) -> IncrementalPageRank:
    """Two calls with the same arguments build bit-identical engines."""
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    return IncrementalPageRank.from_graph(
        graph, walks_per_node=3, rng=seed + 1, store_backend=backend
    )


def state_digest(engine: IncrementalPageRank) -> tuple:
    """Full observable state *plus* the engine RNG stream position.

    Matching digests mean not just "same answers now" but "same answers
    forever" — any future mutation draws the same randomness.
    """
    return (
        tuple(sorted(engine.graph.edge_list())),
        engine.walks.visit_count_array().tobytes(),
        engine.pagerank().tobytes(),
        repr(engine._rng.bit_generator.state),
    )


def toggle_event(has_edge, u: int, v: int) -> ArrivalEvent:
    return ArrivalEvent(REMOVE if has_edge(u, v) else ADD, u, v)


def random_pairs(rng: np.random.Generator, count: int) -> list[tuple[int, int]]:
    pairs = []
    while len(pairs) < count:
        u = int(rng.integers(NUM_NODES))
        v = int(rng.integers(NUM_NODES))
        if u != v:
            pairs.append((u, v))
    return pairs


def total_variation(engine_a, engine_b) -> float:
    return 0.5 * float(np.abs(engine_a.pagerank() - engine_b.pagerank()).sum())


# ----------------------------------------------------------------------
# Differential oracle: deferred == eager, bit for bit
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1])
def test_replay_flush_is_bit_identical_to_eager(backend, seed):
    """After any flush() the bounded engine IS the eager engine.

    Random toggles with random interleaved flush points; after the final
    flush the digests (edges, store bytes, scores bytes, RNG stream
    state) must match — and keep matching after a post-flush probe
    mutation, proving the RNG streams stayed aligned, not just the data.
    """
    eager = build_engine(backend, seed=seed + 5)
    bounded = build_engine(backend, seed=seed + 5)
    sched = StalenessScheduler(
        bounded, staleness_budget=math.inf, repair=REPAIR_REPLAY
    )
    driver = np.random.default_rng([seed, 17])
    for u, v in random_pairs(driver, 40):
        event = toggle_event(sched.has_edge, u, v)
        eager.apply(event)
        sched.apply(event)
        if driver.random() < 0.25:
            sched.flush()
            assert state_digest(eager) == state_digest(bounded)
    sched.flush()
    assert state_digest(eager) == state_digest(bounded)
    probe = toggle_event(eager.graph.has_edge, 0, 1)
    eager.apply(probe)
    bounded.apply(probe)
    assert state_digest(eager) == state_digest(bounded)
    sched.close()


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_flush_granularity_is_invariant(backend):
    """Per-event, midpoint, and terminal flushing land on one state."""
    driver = np.random.default_rng(91)
    pairs = random_pairs(driver, 30)
    digests = []
    for flush_every in (1, 7, len(pairs)):
        engine = build_engine(backend, seed=13)
        sched = StalenessScheduler(
            engine, staleness_budget=math.inf, repair=REPAIR_REPLAY
        )
        for step, (u, v) in enumerate(pairs, start=1):
            sched.apply(toggle_event(sched.has_edge, u, v))
            if step % flush_every == 0:
                sched.flush()
        sched.flush()
        sched.close()
        digests.append(state_digest(engine))
    assert digests[0] == digests[1] == digests[2]


@pytest.mark.parametrize("backend", BACKENDS)
def test_coalesce_flush_matches_eager_batch(backend):
    """A coalesce flush is one eager apply_batch of the queued slice."""
    eager = build_engine(backend, seed=3)
    bounded = build_engine(backend, seed=3)
    sched = StalenessScheduler(
        bounded, staleness_budget=math.inf, repair=REPAIR_COALESCE
    )
    driver = np.random.default_rng(23)
    events = []
    for u, v in random_pairs(driver, 25):
        event = toggle_event(sched.has_edge, u, v)
        events.append(event)
        sched.apply(event)
    report = sched.flush()
    eager_report = eager.apply_batch(events)
    assert state_digest(eager) == state_digest(bounded)
    assert report.num_events == eager_report.num_events
    assert report.segments_rerouted == eager_report.segments_rerouted
    sched.close()


def test_merge_aggregates_reports():
    engine = build_engine(seed=2)
    reports = [
        engine.add_edge(0, 1) if not engine.graph.has_edge(0, 1)
        else engine.remove_edge(0, 1),
        engine.apply_batch(
            [toggle_event(engine.graph.has_edge, 2, 3)]
        ),
    ]
    merged = BatchUpdateReport.merge(reports)
    assert merged.num_events == 2
    assert merged.num_adds + merged.num_removes == 2
    assert merged.segments_rerouted == sum(
        r.segments_rerouted for r in reports
    )
    assert merged.dirty_nodes  # unioned, not dropped


# ----------------------------------------------------------------------
# Budget soundness: measured error under deferral stays inside the SLO
# ----------------------------------------------------------------------


def build_budget_engine(seed: int) -> IncrementalPageRank:
    """Large enough that single-event error estimates are well below a
    5% budget for typical nodes — deferral actually accumulates — while
    a strike on the costliest node still crosses it."""
    graph = twitter_like_graph(200, 1400, rng=seed)
    return IncrementalPageRank.from_graph(
        graph, walks_per_node=3, rng=seed + 1, store_backend="columnar"
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_measured_error_stays_within_budget_on_adversarial_stream(seed):
    """Total-variation distance of the stale scores never exceeds budget.

    The per-event estimate scales with ``W(u)/d(u)`` (stored visits over
    out-degree), so the adversarial nodes are the heavily-visited,
    low-fanout ones — a mutation there reroutes nearly every walk
    through them.  The stream mixes light churn (accumulates deferred
    error) with periodic strikes on the top-``W/d`` nodes (maximal
    per-event perturbation, forcing budget repairs).  After every intake
    call the scheduler has already auto-flushed any node whose estimate
    crossed the budget, so at every observable point the *measured*
    error against a fully-repaired twin must sit inside the budget —
    and inside the scheduler's own estimate, or the SLO is fiction.
    """
    budget = 0.05
    stale = build_budget_engine(seed + 30)
    fresh = build_budget_engine(seed + 30)
    num_nodes = stale.graph.num_nodes
    sched = StalenessScheduler(
        stale, staleness_budget=budget, repair=REPAIR_REPLAY
    )
    cost_rank = np.argsort(
        [
            stale.walks.distinct_segment_count(n)
            / max(stale.graph.out_degree(n), 1)
            for n in range(num_nodes)
        ]
    )
    spikes = [int(n) for n in cost_rank[::-1][:4]]
    light = [int(n) for n in cost_rank[: num_nodes // 2]]
    driver = np.random.default_rng([seed, 77])
    deferrals = 0
    measured_sum = 0.0
    estimate_sum = 0.0
    for step in range(80):
        pool = spikes if step % 10 == 9 else light
        u = pool[int(driver.integers(len(pool)))]
        v = int(driver.integers(num_nodes))
        if u == v:
            continue
        event = toggle_event(sched.has_edge, u, v)
        sched.apply(event)
        fresh.apply(event)
        # the enforced SLO: no node's estimate survives above budget
        assert sched.max_node_error <= budget
        measured = total_variation(stale, fresh)
        assert measured <= budget, (
            f"stale error {measured:.4f} exceeds budget {budget} "
            f"(estimate {sched.pending_error:.4f})"
        )
        if sched.pending_events:
            deferrals += 1
            measured_sum += measured
            estimate_sum += sched.pending_error
    assert deferrals > 0, "stream never actually deferred — test is vacuous"
    assert sched.flushes > 0, "budget never triggered a repair"
    # the estimate is the hedge for the measurement: expectation-level
    # with a safety factor, so it dominates on average over the stream
    # (a single realized reroute can exceed its own expected count —
    # pointwise domination is not the claim).
    assert measured_sum <= estimate_sum
    sched.flush()
    assert total_variation(stale, fresh) == 0.0
    sched.close()


def test_budget_trigger_flushes_inline():
    engine = build_engine(seed=11)
    stats = ServeStats()
    sched = StalenessScheduler(
        engine, staleness_budget=1e-9, repair=REPAIR_REPLAY, stats=stats
    )
    event = toggle_event(sched.has_edge, 0, 2)
    sched.apply(event)
    # budget is microscopic: the deferral itself must have flushed
    assert sched.pending_events == 0
    assert sched.flushes == 1
    assert stats.repairs == 1
    assert stats.budget_repairs == 1
    assert stats.deferred_events == 1
    assert stats.repaired_events == 1
    sched.close()


def test_total_scope_caps_queue_wide_estimate():
    """``budget_scope="total"`` triggers on the sum, not any single node."""
    probe_engine = build_engine(seed=23)
    probe = StalenessScheduler(probe_engine, staleness_budget=math.inf)
    events = [toggle_event(probe.has_edge, u, u + 10) for u in (0, 1, 2)]
    increments = []
    previous = 0.0
    for event in events:
        probe.apply(event)
        increments.append(probe.pending_error - previous)
        previous = probe.pending_error
    probe.close(flush_pending=False)

    engine = build_engine(seed=23)
    budget = 0.9 * sum(increments)
    # the stream is chosen so no single node's estimate reaches the cap
    assert max(increments) < budget
    assert increments[0] + increments[1] < budget
    sched = StalenessScheduler(
        engine, staleness_budget=budget, budget_scope="total", repair=REPAIR_REPLAY
    )
    for event in events[:2]:
        sched.apply(event)
    assert sched.flushes == 0, "under the cap nothing repairs"
    assert sched.pending_events == 2
    sched.apply(events[2])
    assert sched.flushes == 1, "queue-wide sum crossed the cap"
    assert sched.pending_events == 0
    assert sched.max_node_error == 0.0
    sched.close()


def test_budget_read_repair_serves_within_slo():
    """``read_repair="budget"``: within-SLO staleness is served, not repaired."""
    engine = build_engine(seed=27)
    stats = ServeStats()
    sched = StalenessScheduler(
        engine, staleness_budget=math.inf, read_repair="budget", stats=stats
    )
    qe = QueryEngine(engine, rng_seed=9, scheduler=sched, stats=stats)
    event = toggle_event(sched.has_edge, 3, 8)
    sched.apply(event)
    assert sched.pending_events == 1
    qe.ppr(3, 200)
    assert sched.pending_events == 1, "within-SLO read must not flush"
    assert stats.read_repairs == 0
    # tightening the SLO at runtime puts the same node past it: the next
    # read repairs before serving
    sched.staleness_budget = 1e-12
    assert sched.ensure_fresh([event.source]) is True
    assert sched.pending_events == 0
    assert stats.read_repairs == 1
    sched.close()
    qe.detach()


# ----------------------------------------------------------------------
# Repair-on-read through the serving stack
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["object", "columnar"])
def test_repair_on_read_answers_bit_identical_to_eager(backend):
    eager_engine = build_engine(backend, seed=19)
    bounded_engine = build_engine(backend, seed=19)
    eager_qe = QueryEngine(eager_engine, rng_seed=5)
    bounded_qe = QueryEngine(
        bounded_engine, rng_seed=5, freshness="bounded", staleness_budget=math.inf
    )
    driver = np.random.default_rng(41)
    for u, v in random_pairs(driver, 10):
        event = toggle_event(bounded_qe.scheduler.has_edge, u, v)
        eager_engine.apply(event)
        bounded_qe.scheduler.apply(event)
    stale_seed = next(iter(bounded_qe.scheduler.pending_dirty_nodes))
    assert bounded_qe.scheduler.pending_events > 0
    answer = bounded_qe.ppr(stale_seed, 400)
    reference = eager_qe.ppr(stale_seed, 400)
    assert answer.visit_counts == reference.visit_counts
    assert answer.fetches == reference.fetches
    assert bounded_qe.scheduler.pending_events == 0
    assert bounded_qe.stats.read_repairs == 1
    # top_k and run_batch flow through the same hook
    for u, v in random_pairs(driver, 5):
        event = toggle_event(bounded_qe.scheduler.has_edge, u, v)
        eager_engine.apply(event)
        bounded_qe.scheduler.apply(event)
    stale_seed = next(iter(bounded_qe.scheduler.pending_dirty_nodes))
    assert (
        bounded_qe.top_k(stale_seed, 5).ranking
        == eager_qe.top_k(stale_seed, 5).ranking
    )
    assert bounded_qe.stats.read_repairs == 2
    eager_qe.detach()
    bounded_qe.detach()


def test_query_on_clean_seed_does_not_flush():
    engine = build_engine(seed=29)
    qe = QueryEngine(engine, freshness="bounded", staleness_budget=math.inf)
    qe.scheduler.apply(toggle_event(qe.scheduler.has_edge, 0, 3))
    dirty = qe.scheduler.pending_dirty_nodes
    clean_seed = next(n for n in range(NUM_NODES) if n not in dirty)
    qe.ppr(clean_seed, 200)
    assert qe.scheduler.pending_events == 1, "clean read must not repair"
    assert qe.stats.read_repairs == 0
    qe.detach()
    # detach closes the owned scheduler, flushing the remainder
    assert qe.scheduler.pending_events == 0


def test_bounded_engine_rejects_foreign_scheduler():
    engine_a = build_engine(seed=1)
    engine_b = build_engine(seed=1)
    sched = StalenessScheduler(engine_a, staleness_budget=math.inf)
    with pytest.raises(ConfigurationError):
        QueryEngine(engine_b, scheduler=sched)
    sched.close()


def test_external_scheduler_is_adopted_not_owned():
    engine = build_engine(seed=6)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    qe = QueryEngine(engine, scheduler=sched)
    assert qe.freshness == "bounded"
    sched.apply(toggle_event(sched.has_edge, 1, 4))
    qe.detach()
    assert sched.pending_events == 1, "detach must not close a shared scheduler"
    sched.close()
    assert sched.pending_events == 0


# ----------------------------------------------------------------------
# Intake validation + lifecycle
# ----------------------------------------------------------------------


def test_defer_validates_against_logical_graph():
    engine = build_engine(seed=9)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    u, v = next(
        (u, v)
        for u in range(NUM_NODES)
        for v in range(NUM_NODES)
        if u != v and not engine.graph.has_edge(u, v)
    )
    sched.add_edge(u, v)
    assert sched.has_edge(u, v) and not engine.graph.has_edge(u, v)
    with pytest.raises(DuplicateEdgeError):
        sched.add_edge(u, v)  # duplicate of a *pending* edge
    sched.remove_edge(u, v)
    with pytest.raises(EdgeNotFoundError):
        sched.remove_edge(u, v)  # pending removal makes it absent
    present = next(iter(engine.graph.edge_list()))
    with pytest.raises(DuplicateEdgeError):
        sched.add_edge(*present)
    # a rejected batch leaves no partial queue state behind
    before = sched.pending_events
    with pytest.raises(DuplicateEdgeError):
        sched.apply_batch(
            [
                ArrivalEvent(ADD, u, v),
                ArrivalEvent(ADD, u, v),
            ]
        )
    assert sched.pending_events == before
    # out-of-range probes are absent, not errors, and an empty batch is
    # a no-op that touches neither the queue nor the ledger
    assert not sched.has_edge(NUM_NODES + 5, 0)
    sched.apply_batch([])
    assert sched.pending_events == before
    sched.close()


def test_defer_grows_logical_node_count():
    engine = build_engine(seed=9)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    before = engine.graph.num_nodes
    sched.add_edge(0, before + 2)
    assert sched.num_nodes == before + 3
    assert engine.graph.num_nodes == before, "growth deferred too"
    assert before + 2 in sched.pending_dirty_nodes
    sched.flush()
    assert engine.graph.num_nodes == before + 3
    sched.close()


def test_constructor_validation():
    engine = build_engine(seed=1)
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, staleness_budget=0.0)
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, repair="lazy")
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, budget_scope="global")
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, read_repair="eventually")
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, safety_factor=0.0)
    with pytest.raises(ConfigurationError):
        StalenessScheduler(engine, compact_below=1.5)
    with pytest.raises(ConfigurationError):
        QueryEngine(engine, freshness="stale")


def test_close_is_idempotent_and_seals_intake():
    engine = build_engine(seed=4)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    sched.apply(toggle_event(sched.has_edge, 0, 5))
    sched.close()
    sched.close()
    assert sched.pending_events == 0
    with pytest.raises(ConfigurationError):
        sched.add_edge(1, 2)
    # the engine itself is still healthy for eager use
    engine.apply(toggle_event(engine.graph.has_edge, 1, 2))
    engine.walks.check_invariants()


def test_context_manager_flushes_on_exit():
    engine = build_engine(seed=8)
    reference = build_engine(seed=8)
    event = toggle_event(engine.graph.has_edge, 2, 7)
    with StalenessScheduler(engine, staleness_budget=math.inf) as sched:
        sched.apply(event)
    reference.apply(event)
    assert state_digest(engine) == state_digest(reference)


def test_flush_on_empty_queue_is_noop():
    engine = build_engine(seed=5)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    before = state_digest(engine)
    assert sched.flush() is None
    assert sched.ensure_fresh([0, 1, 2]) is False
    assert state_digest(engine) == before
    sched.close()


def test_compaction_hook_runs_after_flush():
    engine = build_engine("columnar", seed=14)
    # compact_below=1.0: any post-flush fragmentation triggers compaction
    sched = StalenessScheduler(
        engine, staleness_budget=math.inf, repair=REPAIR_REPLAY, compact_below=1.0
    )
    reference = build_engine("columnar", seed=14)
    driver = np.random.default_rng(3)
    events = []
    for u, v in random_pairs(driver, 30):
        event = toggle_event(sched.has_edge, u, v)
        events.append(event)
        sched.apply(event)
        reference.apply(event)
    sched.flush()
    # guard against vacuity: the same stream repaired eagerly without the
    # hook must actually fragment the arena, or this test proves nothing
    assert reference.walks.memory_stats()["arena_utilization"] < 1.0 - 1e-9
    stats = engine.walks.memory_stats()
    assert stats["arena_utilization"] >= 1.0 - 1e-9, "hook did not compact"
    engine.walks.check_invariants()
    # compaction is representation-only: scores and graph are untouched
    assert engine.pagerank().tobytes() == reference.pagerank().tobytes()
    sched.close()


def test_compaction_hook_is_inert_without_backend_support():
    engine = build_engine("object", seed=14)
    sched = StalenessScheduler(
        engine, staleness_budget=math.inf, compact_below=0.9
    )
    sched.apply(toggle_event(sched.has_edge, 1, 7))
    sched.flush()  # object store has no compact(); the hook must no-op
    engine.walks.check_invariants()
    sched.close()


def test_repr_summarizes_queue():
    engine = build_engine(seed=2)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    sched.apply(toggle_event(sched.has_edge, 0, 6))
    text = repr(sched)
    assert "pending=1" in text and "budget=inf" in text
    sched.close()
