"""Top-k personalized queries (§3.2): sizing, ranking, fetch accounting."""

from __future__ import annotations

import pytest

from repro.core import theory
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.topk import (
    TopKResult,
    top_k_dense,
    top_k_personalized,
    walk_length_for_top_k,
)
from repro.errors import ConfigurationError
from repro.workloads.twitter_like import twitter_like_graph


@pytest.fixture(scope="module")
def setup():
    graph = twitter_like_graph(500, 5000, rng=55)
    engine = IncrementalPageRank.from_graph(
        graph, reset_probability=0.2, walks_per_node=10, rng=56
    )
    query = PersonalizedPageRank(engine.pagerank_store, rng=57)
    return graph, engine, query


class TestWalkLength:
    def test_matches_eq4(self):
        assert walk_length_for_top_k(100, 10**8, 0.75, c=5) == pytest.approx(
            theory.eq4_walk_length(100, 10**8, 0.75, c=5), abs=1.0
        )

    def test_at_least_k(self):
        assert walk_length_for_top_k(50, 60, 0.9, c=0.001) >= 50


class TestTopKQuery:
    def test_returns_k_ranked(self, setup):
        graph, engine, query = setup
        result = top_k_personalized(query, seed=20, k=10, alpha=0.7, rng=1)
        assert isinstance(result, TopKResult)
        assert len(result.ranking) == 10
        counts = [c for _, c in result.ranking]
        assert counts == sorted(counts, reverse=True)
        assert result.nodes == [n for n, _ in result.ranking]

    def test_excludes_seed_and_friends(self, setup):
        graph, engine, query = setup
        seed = 33
        result = top_k_personalized(query, seed=seed, k=15, alpha=0.7, rng=2)
        banned = {seed, *graph.out_view(seed)}
        assert all(node not in banned for node in result.nodes)

    def test_fetch_accounting(self, setup):
        graph, engine, query = setup
        before = engine.pagerank_store.fetch_count
        result = top_k_personalized(query, seed=40, k=10, alpha=0.7, rng=3)
        assert engine.pagerank_store.fetch_count - before == result.fetches
        assert result.fetch_bound == theory.cor9_topk_fetch_bound(
            10, 0.7, result.c, engine.walks_per_node
        )
        assert result.fetches < result.walk_length  # stitching pays off

    def test_length_override(self, setup):
        graph, engine, query = setup
        result = top_k_personalized(
            query, seed=25, k=5, alpha=0.7, length=777, rng=4
        )
        assert result.walk_length == 777

    def test_bad_k(self, setup):
        graph, engine, query = setup
        with pytest.raises(ConfigurationError):
            top_k_personalized(query, seed=1, k=0)


class TestTopKDense:
    """The shared dense-ranking rule (ties by node id, satellite of ISSUE 5)."""

    def test_ties_at_the_cut_boundary_resolve_ascending(self):
        scores = [0.5, 0.9, 0.5, 0.5, 0.1, 0.9]
        assert top_k_dense(scores, 3) == [(1, 0.9), (5, 0.9), (0, 0.5)]
        assert top_k_dense(scores, 4) == [
            (1, 0.9),
            (5, 0.9),
            (0, 0.5),
            (2, 0.5),
        ]

    def test_k_at_least_n_ranks_everything(self):
        scores = [0.2, 0.2, 0.7]
        assert top_k_dense(scores, 10) == [(2, 0.7), (0, 0.2), (1, 0.2)]

    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            top_k_dense([1.0], 0)
