"""E-T1: link prediction effectiveness (Appendix A, Table 1).

Four contestants, each computed with 10 iterations as in the paper:
personalized PageRank, personalized SALSA, personalized HITS, and COSINE —
ranked by authority score (PageRank ranks by its personalized score), with
the seed and its date-A friends excluded.  Two extra rows run the *Monte
Carlo* personalized PageRank/SALSA (the stitched-walk system under test)
to show the production path matches the iterative reference.

Paper's Table 1 (Twitter):

    |            | HITS | COSINE | PageRank | SALSA |
    | Top 100    | 0.25 |  4.93  |   5.07   | 6.29  |
    | Top 1000   | 0.86 | 11.69  |  12.71   | 13.58 |

Reproduction target: random-walk methods (PageRank, SALSA) beat COSINE,
and all three crush HITS.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cosine import cosine_scores
from repro.baselines.hits import adjacency_matrix, personalized_hits
from repro.baselines.power_iteration import (
    power_iteration_pagerank,
    transition_matrix,
)
from repro.baselines.salsa_iterative import personalized_salsa, salsa_operators
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng, spawn
from repro.workloads.link_prediction import (
    build_link_prediction_workload,
    evaluate_rankers,
    rank_from_scores,
)
from repro.workloads.twitter_like import twitter_like_stream

__all__ = ["run_table1"]

PAPER_TABLE1 = {
    "HITS": {100: 0.25, 1000: 0.86},
    "COSINE": {100: 4.93, 1000: 11.69},
    "PageRank": {100: 5.07, 1000: 12.71},
    "SALSA": {100: 6.29, 1000: 13.58},
}


@register("E-T1")
def run_table1(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    max_users: int = 40,
    iterations: int = 10,
    include_monte_carlo: bool = True,
    mc_walk_length: int = 30_000,
    walks_per_node: int = 10,
    closure_prob: float = 0.75,
    rng=42,
) -> ExperimentResult:
    """Table 1: average number of actually-made friendships captured.

    ``closure_prob`` controls how much of the organic growth is triadic
    (friend-of-friend) vs global popularity.  The paper's qualitative
    result — personalized random-walk methods beating global-flavoured
    rankers — requires link formation to be neighbourhood-driven, which on
    Twitter it is; 0.75 models that.  Setting it to 0 is the ablation
    where every ranker degenerates to popularity and the gaps close.
    """
    generator = ensure_rng(rng)
    stream_rng, case_rng, mc_rng, salsa_rng = spawn(generator, 4)
    stream = twitter_like_stream(
        num_nodes, num_edges, closure_prob=closure_prob, rng=stream_rng
    )
    graph_a, cases = build_link_prediction_workload(
        stream, max_users=max_users, rng=case_rng
    )

    # Shared sparse operators: built once, reused across seeds.
    transition = transition_matrix(graph_a)
    adjacency = adjacency_matrix(graph_a)
    operators = salsa_operators(graph_a)
    top_needed = 1000

    def exclusions(seed):
        return {seed, *graph_a.out_view(seed)}

    def pagerank_ranker(graph, seed):
        scores = power_iteration_pagerank(
            graph,
            reset_probability=0.2,
            personalize=seed,
            max_iterations=iterations,
            tolerance=0.0,
            matrix=transition,
        ).scores
        return rank_from_scores(scores, exclude=exclusions(seed), top=top_needed)

    def salsa_ranker(graph, seed):
        _, authority = personalized_salsa(
            graph,
            seed,
            reset_probability=0.2,
            iterations=iterations,
            operators=operators,
        )
        return rank_from_scores(authority, exclude=exclusions(seed), top=top_needed)

    def hits_ranker(graph, seed):
        _, authority = personalized_hits(
            graph,
            seed,
            reset_probability=0.2,
            iterations=iterations,
            adjacency=adjacency,
        )
        return rank_from_scores(authority, exclude=exclusions(seed), top=top_needed)

    def cosine_ranker(graph, seed):
        return rank_from_scores(
            cosine_scores(graph, seed), exclude=exclusions(seed), top=top_needed
        )

    rankers = {
        "HITS": hits_ranker,
        "COSINE": cosine_ranker,
        "PageRank": pagerank_ranker,
        "SALSA": salsa_ranker,
    }

    if include_monte_carlo:
        pr_engine = IncrementalPageRank.from_graph(
            graph_a.copy(),
            reset_probability=0.2,
            walks_per_node=walks_per_node,
            rng=mc_rng,
        )
        pr_query = PersonalizedPageRank(pr_engine.pagerank_store, rng=mc_rng)
        salsa_engine = IncrementalSALSA.from_graph(
            graph_a.copy(),
            reset_probability=0.2,
            walks_per_node=walks_per_node,
            rng=salsa_rng,
        )
        salsa_query = PersonalizedSALSA(salsa_engine.pagerank_store, rng=salsa_rng)

        def mc_pagerank_ranker(graph, seed):
            walk = pr_query.stitched_walk(seed, mc_walk_length)
            return [n for n, _ in walk.top(top_needed, exclude=exclusions(seed))]

        def mc_salsa_ranker(graph, seed):
            walk = salsa_query.stitched_walk(seed, mc_walk_length)
            return [
                n
                for n, _ in walk.top_authorities(
                    top_needed, exclude=exclusions(seed)
                )
            ]

        rankers["PageRank (MC walks)"] = mc_pagerank_ranker
        rankers["SALSA (MC walks)"] = mc_salsa_ranker

    table = evaluate_rankers(graph_a, cases, rankers, tops=(100, 1000))

    # Long-tail analysis: at n ≈ 10⁴ the global top-100 is the top 1% of
    # all nodes and intersects ~a third of everyone's new friendships, so
    # every ranker gets those "for free" and the full-table gaps compress.
    # On Twitter (n ≈ 10⁸) that floor is zero — the paper's numbers are
    # effectively captures of *long-tail* friends.  Restricting to new
    # friends outside the global top-100 is the scale-honest comparison.
    from repro.analysis.precision import capture_count

    indegree = graph_a.in_degree_array()
    global_top = set(np.argsort(-indegree)[:100].tolist())
    longtail = {}
    for name, ranker in rankers.items():
        sums = {100: 0.0, 1000: 0.0}
        for case in cases:
            tail_friends = case.new_friends - global_top
            if not tail_friends:
                continue
            predictions = list(ranker(graph_a, case.user))
            for top in sums:
                sums[top] += capture_count(predictions, tail_friends, top=top)
        longtail[name] = {top: value / len(cases) for top, value in sums.items()}

    rows = []
    for name, captures in table.items():
        paper = PAPER_TABLE1.get(name, {})
        rows.append(
            {
                "method": name,
                "top 100": captures[100],
                "top 1000": captures[1000],
                "long-tail top 100": longtail[name][100],
                "long-tail top 1000": longtail[name][1000],
                "paper top 100": paper.get(100, "-"),
                "paper top 1000": paper.get(1000, "-"),
            }
        )

    mean_new = float(np.mean([len(c.new_friends) for c in cases]))
    result = ExperimentResult(
        experiment_id="E-T1",
        title="Table 1: link prediction effectiveness",
        params={
            "n": num_nodes,
            "m": num_edges,
            "users": len(cases),
            "iterations": iterations,
            "mean new friendships per user": round(mean_new, 2),
        },
        rows=rows,
    )
    result.notes.append(
        "Shape target: PageRank/SALSA > COSINE > HITS. The full-table "
        "columns carry a finite-size popularity floor (~a third of "
        "eligible new friends sit in the global top-100 at n~10^4, and "
        "every ranker captures those); the long-tail columns remove the "
        "floor and recover the paper's contrast. At Twitter scale the two "
        "views coincide."
    )
    return result
