"""Snapshot/restore: round trips, validation, corruption detection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.columnar import ColumnarWalkStore
from repro.core.incremental import IncrementalPageRank
from repro.core.monte_carlo import build_walk_store
from repro.core.salsa import IncrementalSALSA
from repro.core.sharded_walks import ShardedWalkIndex
from repro.core.walks import END_RESET, WalkSegment, WalkStore
from repro.errors import ConfigurationError, WalkStateError
from repro.graph.arrival import ArrivalEvent
from repro.store.persistence import (
    attach_engine,
    attach_walk_store,
    load_engine,
    load_walk_store,
    save_engine,
    save_shared_snapshot,
    save_walk_store,
)


class TestWalkStoreRoundTrip:
    def test_round_trip_preserves_everything(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 4, 0.25, rng=1)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        restored = load_walk_store(path)
        restored.check_invariants()
        assert restored.num_nodes == store.num_nodes
        assert restored.total_visits == store.total_visits
        assert restored.visit_count_array().tolist() == (
            store.visit_count_array().tolist()
        )
        for (_, a), (_, b) in zip(store.iter_segments(), restored.iter_segments()):
            assert a.nodes == b.nodes
            assert a.end_reason == b.end_reason

    def test_side_tracking_round_trip(self, random_graph, tmp_path):
        engine = IncrementalSALSA.from_graph(random_graph, walks_per_node=2, rng=2)
        path = tmp_path / "salsa.npz"
        save_walk_store(engine.walks, path)
        restored = load_walk_store(path)
        assert restored.track_sides
        restored.check_invariants()
        for side in (0, 1):
            assert restored.side_visit_count_array(side).tolist() == (
                engine.walks.side_visit_count_array(side).tolist()
            )

    def test_wrong_kind_rejected(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=2, rng=3)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        with pytest.raises(ConfigurationError):
            load_walk_store(path)


class TestEngineRoundTrip:
    def test_restored_engine_continues_correctly(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=3, rng=4
        )
        before = engine.pagerank()
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        restored = load_engine(path, rng=5)
        # identical state…
        assert np.allclose(restored.pagerank(), before)
        assert restored.walks_per_node == engine.walks_per_node
        assert restored.reset_probability == engine.reset_probability
        assert sorted(restored.graph.edges()) == sorted(engine.graph.edges())
        # …and it keeps working: mutations maintain invariants
        rng = np.random.default_rng(6)
        for _ in range(20):
            u, v = int(rng.integers(60)), int(rng.integers(60))
            if u != v and not restored.graph.has_edge(u, v):
                restored.add_edge(u, v)
        restored.walks.check_invariants()

    def test_snapshot_mismatch_detected(self, random_graph, tmp_path):
        """A snapshot whose segments disagree with its graph must not load."""
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=7
        )
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        # corrupt: rewrite one walked-over edge out of the edge list
        data = dict(np.load(path, allow_pickle=False))
        segment_nodes = data["segment_nodes"]
        lengths = data["segment_lengths"]
        # find a segment of length >= 2 and delete its first edge from graph
        offset = 0
        victim = None
        for length in lengths:
            if length >= 2:
                victim = (int(segment_nodes[offset]), int(segment_nodes[offset + 1]))
                break
            offset += int(length)
        assert victim is not None
        sources = data["edge_sources"]
        targets = data["edge_targets"]
        keep = ~((sources == victim[0]) & (targets == victim[1]))
        data["edge_sources"] = sources[keep]
        data["edge_targets"] = targets[keep]
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_engine(path)

    def test_version_check(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(random_graph, walks_per_node=2, rng=8)
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["meta"]))
        meta["format_version"] = 99
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)
        with pytest.raises(ConfigurationError):
            load_engine(path)

    def test_corrupt_arena_detected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=9)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        data = dict(np.load(path, allow_pickle=False))
        data["segment_nodes"] = data["segment_nodes"][:-1]  # truncate arena
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_walk_store(path)


class TestFormatVersions:
    """v1 compatibility, v2 zero-copy round-trips, auto-detection."""

    def _meta_version(self, path) -> int:
        with np.load(path, allow_pickle=False) as data:
            return int(json.loads(str(data["meta"]))["format_version"])

    def test_v1_snapshots_still_load(self, random_graph, tmp_path):
        """The legacy replay path keeps working for old snapshots."""
        store = build_walk_store(random_graph, 3, 0.25, rng=10, backend="columnar")
        path = tmp_path / "legacy.npz"
        save_walk_store(store, path, version=1)
        assert self._meta_version(path) == 1
        restored = load_walk_store(path)
        assert isinstance(restored, WalkStore)  # v1 replays into the object store
        restored.check_invariants()
        assert restored.total_visits == store.total_visits
        for (_, a), (_, b) in zip(store.iter_segments(), restored.iter_segments()):
            assert a.nodes == b.nodes
            assert a.end_reason == b.end_reason
            assert a.parity_offset == b.parity_offset

    def test_v2_roundtrips_into_columnar(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 3, 0.25, rng=11, backend="object")
        path = tmp_path / "current.npz"
        save_walk_store(store, path)
        assert self._meta_version(path) == 2
        restored = load_walk_store(path)
        assert isinstance(restored, ColumnarWalkStore)
        restored.check_invariants()
        assert restored.total_visits == store.total_visits
        assert restored.visit_count_array().tolist() == (
            store.visit_count_array().tolist()
        )
        for (_, a), (_, b) in zip(store.iter_segments(), restored.iter_segments()):
            assert a.nodes == b.nodes
            assert a.end_reason == b.end_reason

    def test_load_engine_auto_detects_version(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=12
        )
        path_v1 = tmp_path / "engine_v1.npz"
        path_v2 = tmp_path / "engine_v2.npz"
        save_engine(engine, path_v1, version=1)
        save_engine(engine, path_v2)
        restored_v1 = load_engine(path_v1)
        restored_v2 = load_engine(path_v2)
        assert isinstance(restored_v1.walks, WalkStore)
        assert isinstance(restored_v2.walks, ColumnarWalkStore)
        assert np.array_equal(restored_v1.pagerank(), engine.pagerank())
        assert np.array_equal(restored_v2.pagerank(), engine.pagerank())

    def test_save_rejects_unknown_version(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=13)
        with pytest.raises(ConfigurationError):
            save_walk_store(store, tmp_path / "bad.npz", version=3)
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=13
        )
        with pytest.raises(ConfigurationError):
            save_engine(engine, tmp_path / "bad_engine.npz", version=0)

    def test_v2_out_of_range_node_detected(self, random_graph, tmp_path):
        """A node id outside the snapshot's graph must not alias onto a
        legitimate edge key during vectorized revalidation."""
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=16
        )
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        data = dict(np.load(path, allow_pickle=False))
        nodes = data["segment_nodes"].copy()
        nodes[-1] = engine.graph.num_nodes + 1  # final visit: not a step
        data["segment_nodes"] = nodes
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_engine(path)

    def test_v2_negative_node_detected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=17)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        data = dict(np.load(path, allow_pickle=False))
        nodes = data["segment_nodes"].copy()
        nodes[0] = -3
        data["segment_nodes"] = nodes
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_walk_store(path)

    def test_v2_corrupt_reason_detected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=14)
        path = tmp_path / "store.npz"
        save_walk_store(store, path)
        data = dict(np.load(path, allow_pickle=False))
        reasons = data["segment_end_reasons"].copy()
        reasons[0] = 9
        data["segment_end_reasons"] = reasons
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError):
            load_walk_store(path)

    def test_salsa_sides_survive_v2(self, random_graph, tmp_path):
        engine = IncrementalSALSA.from_graph(random_graph, walks_per_node=2, rng=15)
        path = tmp_path / "salsa_v2.npz"
        save_walk_store(engine.walks, path)
        restored = load_walk_store(path)
        assert isinstance(restored, ColumnarWalkStore)
        assert restored.track_sides
        restored.check_invariants()
        for side in (0, 1):
            assert restored.side_visit_count_array(side).tolist() == (
                engine.walks.side_visit_count_array(side).tolist()
            )


class TestShardedManifests:
    """v3 per-shard manifests, v1 → v2 → v3 migration, corruption."""

    def _sharded_engine(self, graph, *, shards=5, rng=21):
        return IncrementalPageRank.from_graph(
            graph.copy(),
            walks_per_node=2,
            rng=rng,
            store_backend=f"sharded:{shards}",
        )

    def test_sharded_store_roundtrips_as_manifest(self, random_graph, tmp_path):
        engine = self._sharded_engine(random_graph)
        path = tmp_path / "sharded.npz"
        save_walk_store(engine.walks, path)  # native default = v3
        restored = load_walk_store(path)
        assert isinstance(restored, ShardedWalkIndex)
        assert restored.num_shards == 5
        restored.check_invariants()
        assert restored.visit_count_array().tolist() == (
            engine.walks.visit_count_array().tolist()
        )
        for gid, segment in engine.walks.iter_segments():
            assert restored.segment_nodes(gid) == segment.nodes

    def test_sharded_engine_roundtrip_continues_identically(
        self, random_graph, tmp_path
    ):
        engine = self._sharded_engine(random_graph)
        twin = self._sharded_engine(random_graph)
        path = tmp_path / "engine_v3.npz"
        save_engine(engine, path)
        restored = load_engine(path, rng=np.random.default_rng(77))
        assert isinstance(restored.walks, ShardedWalkIndex)
        assert restored.store_backend == "sharded:5"
        # a restored engine and a never-persisted twin (same fresh RNG)
        # keep producing identical results
        twin._rng = np.random.default_rng(77)
        for source, target in ((1, 5), (5, 9), (2, 4)):
            if restored.graph.has_edge(source, target):
                ra = restored.remove_edge(source, target)
                rb = twin.remove_edge(source, target)
            else:
                ra = restored.add_edge(source, target)
                rb = twin.add_edge(source, target)
            assert ra.dirty_nodes == rb.dirty_nodes
        assert np.array_equal(restored.pagerank(), twin.pagerank())

    def test_v1_to_v2_to_sharded_migration_chain(self, random_graph, tmp_path):
        """The full upgrade path: legacy v1 → flat v2 → sharded v3."""
        engine = IncrementalPageRank.from_graph(
            random_graph.copy(), walks_per_node=2, rng=31, store_backend="object"
        )
        v1 = tmp_path / "chain_v1.npz"
        save_engine(engine, v1, version=1)

        # v1 → v2: load (object), re-save as flat columnar
        from_v1 = load_engine(v1, rng=np.random.default_rng(1))
        assert isinstance(from_v1.walks, WalkStore)
        v2 = tmp_path / "chain_v2.npz"
        save_engine(from_v1, v2, version=2)

        # v2 → v3: load (columnar), migrate the store, re-save as manifest
        from_v2 = load_engine(v2, rng=np.random.default_rng(1))
        assert isinstance(from_v2.walks, ColumnarWalkStore)
        from_v2.pagerank_store.walks = ShardedWalkIndex.from_arrays(
            *from_v2.walks.to_arrays(),
            num_nodes=from_v2.walks.num_nodes,
            num_shards=3,
        )
        v3 = tmp_path / "chain_v3.npz"
        save_engine(from_v2, v3)

        from_v3 = load_engine(v3, rng=np.random.default_rng(1))
        assert isinstance(from_v3.walks, ShardedWalkIndex)
        from_v3.walks.check_invariants()
        # nothing was lost anywhere along the chain
        assert from_v3.walks.visit_count_array().tolist() == (
            engine.walks.visit_count_array().tolist()
        )
        assert np.array_equal(from_v3.pagerank(), engine.pagerank())
        # and the sharded engine can downgrade-save back to v2 losslessly
        back = tmp_path / "chain_back_v2.npz"
        save_engine(from_v3, back, version=2)
        assert isinstance(
            load_engine(back, rng=np.random.default_rng(2)).walks,
            ColumnarWalkStore,
        )

    def test_truncated_manifest_raises_cleanly(self, random_graph, tmp_path):
        engine = self._sharded_engine(random_graph)
        path = tmp_path / "trunc.npz"
        save_engine(engine, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises((ConfigurationError, WalkStateError)):
            load_engine(path)

    def test_garbage_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(ConfigurationError):
            load_walk_store(path)

    def test_missing_shard_arrays_raise_cleanly(self, random_graph, tmp_path):
        engine = self._sharded_engine(random_graph, shards=3)
        path = tmp_path / "missing.npz"
        save_walk_store(engine.walks, path)
        data = dict(np.load(path, allow_pickle=False))
        data.pop("shard2_segment_nodes")
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError, match="missing array"):
            load_walk_store(path)

    def test_manifest_without_shard_count_raises_cleanly(
        self, random_graph, tmp_path
    ):
        engine = self._sharded_engine(random_graph, shards=2)
        path = tmp_path / "nocount.npz"
        save_walk_store(engine.walks, path)
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(str(data["meta"]))
        del meta["num_shards"]
        data["meta"] = json.dumps(meta)
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError, match="shard count"):
            load_walk_store(path)

    def test_corrupt_global_ids_raise_cleanly(self, random_graph, tmp_path):
        engine = self._sharded_engine(random_graph, shards=2)
        path = tmp_path / "badids.npz"
        save_walk_store(engine.walks, path)
        data = dict(np.load(path, allow_pickle=False))
        table = data["shard0_global_ids"].copy()
        if table.size:
            table[0] = 10**9  # escapes the segment-id space
            data["shard0_global_ids"] = table
        np.savez_compressed(path, **data)
        with pytest.raises(WalkStateError, match="corrupt snapshot"):
            load_walk_store(path)

    def test_flat_store_cannot_save_as_v3(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=41)
        with pytest.raises(ConfigurationError, match="sharded"):
            save_walk_store(store, tmp_path / "nope.npz", version=3)


class TestSharedSnapshotAttach:
    """Read-only attach over mmap-able shared snapshot directories."""

    @staticmethod
    def _segments(store):
        return [
            (seg.nodes, seg.end_reason)
            for _, seg in store.iter_segments()
        ]

    def test_flat_attach_bit_identical_and_write_protected(
        self, random_graph, tmp_path
    ):
        store = build_walk_store(random_graph, 3, 0.25, rng=21)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        attached = attach_walk_store(directory)
        assert isinstance(attached, ColumnarWalkStore)
        assert attached.readonly
        attached.check_invariants()
        assert self._segments(attached) == self._segments(store)
        assert attached.visit_count_array().tolist() == (
            store.visit_count_array().tolist()
        )
        # bit-identical to an owned load of the same state
        save_walk_store(store, tmp_path / "owned.npz")
        owned = load_walk_store(tmp_path / "owned.npz")
        assert self._segments(attached) == self._segments(owned)
        with pytest.raises(WalkStateError, match="read-only"):
            attached.add_segment(WalkSegment([0, 1], END_RESET))
        with pytest.raises(WalkStateError, match="read-only"):
            attached.compact()

    def test_engine_attach_serves_identically(self, random_graph, tmp_path):
        engine = IncrementalPageRank.from_graph(
            random_graph, walks_per_node=2, rng=9
        )
        directory = save_shared_snapshot(engine, tmp_path / "engine")
        attached = attach_engine(directory)
        assert attached.walks.readonly
        assert self._segments(attached.walks) == self._segments(engine.walks)
        assert attached.graph.edge_list() == engine.graph.edge_list()
        # removing an edge some walk traversed forces a reroute, which
        # must hit the write guard on the attached store
        edges = set(engine.graph.edge_list())
        traversed = next(
            (a, b)
            for _, seg in engine.walks.iter_segments()
            for a, b in zip(seg.nodes, seg.nodes[1:])
            if (a, b) in edges
        )
        with pytest.raises(WalkStateError, match="read-only"):
            attached.apply(ArrivalEvent("remove", *traversed))

    def test_sharded_attach_round_trips_read_only(
        self, random_graph, tmp_path
    ):
        engine = IncrementalPageRank.from_graph(
            random_graph, walks_per_node=2, rng=10, store_backend="sharded:3"
        )
        directory = save_shared_snapshot(engine, tmp_path / "sharded")
        attached = attach_engine(directory)
        assert isinstance(attached.walks, ShardedWalkIndex)
        assert attached.walks.readonly
        assert self._segments(attached.walks) == self._segments(engine.walks)
        with pytest.raises(WalkStateError, match="read-only"):
            attached.walks.add_segment(WalkSegment([0, 1], END_RESET))

    def test_missing_directory_and_manifest_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a shared snapshot"):
            attach_walk_store(tmp_path / "nowhere")
        (tmp_path / "empty").mkdir()
        with pytest.raises(ConfigurationError, match="not a shared snapshot"):
            attach_walk_store(tmp_path / "empty")

    def test_corrupt_manifest_rejected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=22)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        manifest = directory / "manifest.json"
        manifest.write_text(manifest.read_text()[:40], encoding="utf-8")
        with pytest.raises(WalkStateError, match="unreadable manifest"):
            attach_walk_store(directory)

    def test_truncated_manifest_listing_rejected(
        self, random_graph, tmp_path
    ):
        store = build_walk_store(random_graph, 2, 0.25, rng=23)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        manifest = directory / "manifest.json"
        meta = json.loads(manifest.read_text(encoding="utf-8"))
        meta["arrays"] = [a for a in meta["arrays"] if a != "segment_nodes"]
        manifest.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(WalkStateError, match="missing array"):
            attach_walk_store(directory)

    def test_missing_array_file_rejected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=24)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        (directory / "segment_lengths.npy").unlink()
        with pytest.raises(WalkStateError, match="listed .* absent"):
            attach_walk_store(directory)

    def test_truncated_array_file_rejected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=25)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        arena = directory / "segment_nodes.npy"
        arena.write_bytes(arena.read_bytes()[:16])
        with pytest.raises(WalkStateError, match="corrupt shared snapshot"):
            attach_walk_store(directory)

    def test_arena_length_mismatch_rejected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=26)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        lengths = np.load(directory / "segment_lengths.npy")
        if lengths.size:
            lengths[0] += 1
        np.save(directory / "segment_lengths.npy", lengths)
        with pytest.raises(WalkStateError, match="length mismatch"):
            attach_walk_store(directory)

    def test_kind_mismatch_rejected(self, random_graph, tmp_path):
        store = build_walk_store(random_graph, 2, 0.25, rng=27)
        directory = save_shared_snapshot(store, tmp_path / "shared")
        with pytest.raises(WalkStateError, match="expected"):
            attach_engine(directory)
