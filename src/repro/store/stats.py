"""Operation accounting for the storage layer.

The paper's efficiency claims are stated in units of store operations —
walk-segment updates (Theorem 4), database *fetches* (Theorem 8, Figure 6).
:class:`CallStats` is the single counter object threaded through the stores
so experiments can read those units off directly.  :class:`LatencyModel`
optionally converts operation counts into simulated wall-clock time, which
lets the benchmarks report "what this would cost against a remote store"
without any actual network.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping

__all__ = ["CallStats", "LatencyModel"]


class CallStats:
    """Named operation counters with snapshot/delta support.

    Thread-safe: the serving layer's worker pool bills concurrent reads
    into the same counters.  ``record`` is a lock-protected
    read-modify-write so no operation is ever lost to a race, and
    ``snapshot`` is atomic with respect to in-flight records.  (The lock
    covers the *counters* only — store mutations must still not run
    concurrently with in-flight walks; see :mod:`repro.serve`.)
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()
        self._lock = threading.Lock()

    def record(self, operation: str, count: int = 1) -> None:
        """Count ``count`` occurrences of ``operation``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        with self._lock:
            self._counts[operation] += count

    def count(self, operation: str) -> int:
        return self._counts.get(operation, 0)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> Dict[str, int]:
        """A frozen copy of all counters (safe to keep around)."""
        with self._lock:
            return dict(self._counts)

    def delta_since(self, snapshot: Mapping[str, int]) -> Dict[str, int]:
        """Per-operation growth since a prior :meth:`snapshot`."""
        current = self.snapshot()
        return {
            op: current.get(op, 0) - snapshot.get(op, 0)
            for op in set(current) | set(snapshot)
            if current.get(op, 0) != snapshot.get(op, 0)
        }

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def merge(self, other: "CallStats") -> None:
        """Fold another stats object into this one (fleet aggregation)."""
        theirs = other.snapshot()
        with self._lock:
            self._counts.update(theirs)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{op}={n}" for op, n in self)
        return f"CallStats({inner})"


@dataclass
class LatencyModel:
    """Convert operation counts into simulated seconds.

    ``per_operation`` maps operation names to seconds per call;
    ``default_latency`` covers everything else.  The defaults model an
    intra-datacenter RPC (~0.5 ms) against a shared-memory store, which is
    the regime the paper targets; they are knobs, not claims.
    """

    per_operation: Dict[str, float] = field(default_factory=dict)
    default_latency: float = 0.0005

    def simulated_seconds(self, stats: CallStats) -> float:
        total = 0.0
        for operation, count in stats:
            total += count * self.per_operation.get(operation, self.default_latency)
        return total

    def simulated_seconds_for(self, operation: str, count: int) -> float:
        return count * self.per_operation.get(operation, self.default_latency)
