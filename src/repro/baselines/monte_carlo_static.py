"""The naive Monte Carlo strawman: rebuild the store on every arrival.

§1.3: "the Ω(n/ε) time complexity of the Monte Carlo method results in a
total Ω(mn/ε) work over m edge arrivals, which is also very inefficient."
This class *is* that strawman, with work counted in simulated walk steps,
so the update-cost experiment can plot measured naive-vs-incremental
curves on small graphs and extrapolate with
:func:`repro.core.theory.naive_monte_carlo_total_work` for large ones.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.monte_carlo import PAPER, build_walk_store, scores_from_store
from repro.core.walks import WalkStore
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["NaiveMonteCarloRebuild"]


class NaiveMonteCarloRebuild:
    """Recompute-from-scratch Monte Carlo PageRank over a mutation stream."""

    def __init__(
        self,
        num_nodes: int,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
    ) -> None:
        if walks_per_node <= 0:
            raise ConfigurationError(
                f"walks_per_node must be positive, got {walks_per_node}"
            )
        self.graph = DynamicDiGraph(num_nodes, allow_self_loops=False)
        self.reset_probability = reset_probability
        self.walks_per_node = walks_per_node
        self._rng = ensure_rng(rng)
        self._store: Optional[WalkStore] = None
        #: Walk steps simulated across all rebuilds — the Ω(mn/ε) quantity.
        self.total_work = 0
        self.rebuilds = 0

    def apply(self, event: ArrivalEvent) -> None:
        """Apply one mutation and rebuild the whole store."""
        self.graph.ensure_node(max(event.source, event.target))
        if event.kind == "add":
            self.graph.add_edge(event.source, event.target)
        else:
            self.graph.remove_edge(event.source, event.target)
        self._rebuild()

    def process(self, events: Iterable[ArrivalEvent]) -> None:
        for event in events:
            self.apply(event)

    def _rebuild(self) -> None:
        self._store = build_walk_store(
            self.graph, self.walks_per_node, self.reset_probability, self._rng
        )
        self.total_work += self._store.total_visits
        self.rebuilds += 1

    def pagerank(self) -> np.ndarray:
        if self._store is None:
            self._rebuild()
        assert self._store is not None
        return scores_from_store(
            self._store,
            self.graph.num_nodes,
            self.walks_per_node,
            self.reset_probability,
            PAPER,
        )
