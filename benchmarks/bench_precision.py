"""E-F5: short-walk precision benchmark (§4.4, Figure 5)."""

from __future__ import annotations

from repro.experiments.exp_precision import run_fig5


def test_e_f5(benchmark, once):
    result = once(
        benchmark,
        run_fig5,
        num_nodes=4000,
        num_edges=48_000,
        num_users=8,
        true_length=30_000,
        query_length=3_000,
        rng=42,
    )
    curve = {row["recall"]: row["interpolated avg precision"] for row in result.rows}
    # the paper's reading: strong precision deep into the recall range
    assert curve[0.0] > 0.9
    assert curve[0.5] > 0.6
    assert curve[0.8] > 0.4  # paper: ≈0.8 at Twitter scale/lengths
    # precision is non-increasing in recall (interpolation guarantees it)
    values = [curve[k] for k in sorted(curve)]
    assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
    print()
    print(result.render())
