"""Degenerate-graph coverage for every WalkIndex backend + QueryEngine.

The columnar and sharded stores were built for scale; these tests pin the
opposite end — empty graphs, all-dangling graphs, one-node self-loops, and
queries for nodes no stored walk has ever visited — for all three
backends, asserting both sane behavior and cross-backend bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import make_walk_store
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.salsa import IncrementalSALSA
from repro.graph.digraph import DynamicDiGraph
from repro.serve.engine import QueryEngine
from repro.store.persistence import load_walk_store, save_walk_store

BACKENDS = ["object", "columnar", "sharded:3"]


def _engines(graph: DynamicDiGraph, *, rng_seed: int = 7):
    return [
        IncrementalPageRank.from_graph(
            graph.copy(), walks_per_node=3, rng=rng_seed, store_backend=backend
        )
        for backend in BACKENDS
    ]


# ----------------------------------------------------------------------
# Empty graph
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_graph_engine(backend):
    engine = IncrementalPageRank.from_graph(
        DynamicDiGraph(0), walks_per_node=3, rng=1, store_backend=backend
    )
    assert engine.num_nodes == 0
    assert engine.walks.num_segments == 0
    assert engine.walks.total_visits == 0
    assert engine.pagerank().size == 0
    assert engine.top(5) == []
    engine.walks.check_invariants()
    # the first edge creates both nodes and their walks
    report = engine.add_edge(0, 1)
    assert engine.num_nodes == 2
    assert engine.walks.num_segments == 2 * engine.walks_per_node
    assert report.steps_initialized >= 0
    engine.walks.check_invariants()


def test_empty_graph_engines_bit_identical():
    engines = _engines(DynamicDiGraph(0))
    for engine in engines:
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
    reference = engines[0].pagerank()
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), reference)


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_store_roundtrip(tmp_path, backend):
    store = make_walk_store(0, backend=backend)
    store.check_invariants()
    path = tmp_path / "empty.npz"
    save_walk_store(store, path)
    restored = load_walk_store(path)
    assert restored.num_segments == 0
    assert restored.total_visits == 0
    restored.check_invariants()


# ----------------------------------------------------------------------
# All-dangling graph (nodes, zero edges)
# ----------------------------------------------------------------------


def test_all_dangling_graph_backends_agree():
    engines = _engines(DynamicDiGraph(6))
    for engine in engines:
        # every walk is pinned at its source (reset or pending-dangling)
        assert engine.walks.num_segments == 6 * engine.walks_per_node
        for node in range(6):
            assert engine.walks.visit_count(node) == engine.walks_per_node
        # uniform scores over a rankless graph
        scores = engine.pagerank()
        assert np.allclose(scores, scores[0])
        engine.walks.check_invariants()
    # un-dangling one node resumes pending steps identically everywhere
    reports = [engine.add_edge(2, 4) for engine in engines]
    for report in reports[1:]:
        assert report.segments_rerouted == reports[0].segments_rerouted
        assert report.dirty_nodes == reports[0].dirty_nodes
    reference = engines[0].pagerank()
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), reference)
        engine.walks.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_dangling_salsa(backend):
    engine = IncrementalSALSA.from_graph(
        DynamicDiGraph(4), walks_per_node=2, rng=3, store_backend=backend
    )
    # no edges: hub and authority visits are the trivial start visits
    assert engine.walks.num_segments == 4 * 2 * 2
    authority = engine.authority_scores()
    assert authority.shape == (4,)
    engine.walks.check_invariants()
    engine.add_edge(0, 1)
    engine.walks.check_invariants()


# ----------------------------------------------------------------------
# Single-node self-loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_node_self_loop(backend):
    graph = DynamicDiGraph(1)
    graph.add_edge(0, 0)
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=4, rng=5, store_backend=backend
    )
    # every step loops back to node 0, so all mass sits there
    assert engine.walks.visit_count(0) == engine.walks.total_visits
    assert engine.pagerank_of(0) > 0.0
    assert engine.top(1)[0][0] == 0
    engine.walks.check_invariants()
    # removing the loop strands the walks at a now-dangling node
    report = engine.remove_edge(0, 0)
    assert engine.walks.total_visits == engine.walks.num_segments
    assert report.steps_discarded >= 0
    engine.walks.check_invariants()


def test_single_node_self_loop_backends_agree():
    graph = DynamicDiGraph(1)
    graph.add_edge(0, 0)
    engines = _engines(graph)
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), engines[0].pagerank())
    walks = [engine.remove_edge(0, 0) for engine in engines]
    for report in walks[1:]:
        assert report.steps_discarded == walks[0].steps_discarded


# ----------------------------------------------------------------------
# Querying a node never seen by any walk
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_store_queries_beyond_known_nodes(backend):
    store = make_walk_store(3, backend=backend)
    unknown = 99
    assert store.visits_of(unknown) == {}
    assert store.segment_ids_visiting(unknown) == []
    assert store.segments_starting_at(unknown) == []
    assert store.visit_count(unknown) == 0
    assert store.distinct_segment_count(unknown) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_query_node_never_visited(backend):
    # node 3 is isolated: no edges touch it, and its own walks never leave
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    graph.add_edge(0, 2)
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=2, rng=9, store_backend=backend
    )
    # isolated node: only its own trivial segments visit it
    assert engine.walks.visit_count(3) == engine.walks_per_node
    walker = PersonalizedPageRank(engine.pagerank_store)
    walk = walker.stitched_walk(3, 50, rng=np.random.default_rng(1))
    # a walk seeded at a dangling isolate never escapes the seed
    assert set(walk.visit_counts) == {3}
    assert walk.visit_counts[3] == 50


def test_query_engine_degenerate_paths():
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    backends_results = []
    for backend in BACKENDS:
        engine = IncrementalPageRank.from_graph(
            graph.copy(), walks_per_node=2, rng=11, store_backend=backend
        )
        qe = QueryEngine(engine, rng_seed=4)
        isolated = qe.top_k(3, 2)
        assert isolated.ranking == []  # nothing reachable beyond the seed
        ppr = qe.ppr(3, 40)
        assert set(ppr.visit_counts) == {3}
        # served answers survive an update that touches the isolate
        engine.add_edge(3, 0)
        after = qe.top_k(3, 2)
        assert after.ranking  # the isolate can now reach the core
        backends_results.append((isolated.ranking, after.ranking))
        qe.detach()
    assert backends_results.count(backends_results[0]) == len(backends_results)


def test_query_engine_on_all_dangling_graph():
    for backend in BACKENDS:
        engine = IncrementalPageRank.from_graph(
            DynamicDiGraph(3), walks_per_node=2, rng=13, store_backend=backend
        )
        qe = QueryEngine(engine, rng_seed=1)
        result = qe.top_k(0, 3)
        assert result.ranking == []
        assert qe.ppr(1, 25).visit_counts == {1: 25}
        qe.detach()
