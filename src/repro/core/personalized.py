"""Personalized PageRank by walk stitching (§3, Algorithm 1).

A personalized query for seed ``w`` runs one long reset walk that jumps
back to ``w`` instead of to a uniform node.  Instead of paying one store
round-trip per step, Algorithm 1 opportunistically splices in the ``R``
walk segments already stored for global PageRank:

* an ε-coin resets the walk to the seed;
* otherwise, if the current node has an unused stored segment, the whole
  segment is appended and the walk resets to the seed (the segment already
  ended with a reset);
* otherwise, if the node's state is in memory, one plain random step is
  taken;
* otherwise the node is *fetched* — the single expensive operation, whose
  count Theorem 8 bounds by ``1 + (2(1−α)/nR)^{1/α−1} · s^{1/α}``.

Dangling nodes reset to the seed (standard PPR-with-restart convention;
the paper's Twitter graph makes the case vanishingly rare).

The result object records everything the experiments need: per-node visit
counts, the fetch count, and the composition of the walk (segment visits
vs single steps vs resets).
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import FETCH_FULL, PageRankStore

__all__ = ["FetchCache", "PersonalizedPageRank", "StitchedWalkResult"]


@dataclass
class _FetchedState:
    """In-memory cache entry for a fetched node."""

    neighbors: list[int]
    segments: list[list[int]]
    next_unused: int = 0
    out_degree: int = 0

    def take_segment(self) -> Optional[list[int]]:
        if self.next_unused < len(self.segments):
            segment = self.segments[self.next_unused]
            self.next_unused += 1
            return segment
        return None

    def fresh_view(self) -> "_FetchedState":
        """A per-walk view with its own segment-consumption cursor.

        ``neighbors``/``segments`` are shared (never mutated in ``full``
        fetch mode); only ``next_unused`` is per-walk state, so sharing one
        fetched payload across many walks stays correct.
        """
        return _FetchedState(
            neighbors=self.neighbors,
            segments=self.segments,
            out_degree=self.out_degree,
        )


class FetchCache:
    """Cross-query cache of fetched node states (adjacency + segments).

    Algorithm 1 pays one *fetch* per node it meets for the first time;
    within a single walk the fetched state is reused, but historically each
    query started cold.  This cache extracts that per-walk dictionary so it
    can be **shared across queries** (the hot core of a social graph is
    refetched by almost every walk) and **pre-warmed** for known-hot nodes.

    Correctness contract: a cached entry must be byte-identical to what
    :meth:`PageRankStore.fetch` would return *now*.  The serving layer
    keeps that true by invalidating entries for every node the incremental
    engine marks dirty (see
    :meth:`repro.core.incremental.IncrementalPageRank.add_update_listener`).
    Only ``full`` fetch mode is cacheable — Remark 1's ``sampled_edge``
    mode draws a fresh random edge per fetch, so its results are not
    reusable (and consume RNG, which would break replayability).

    Thread-safe: the serving layer's worker pool shares one instance.
    ``capacity=None`` means unbounded; otherwise least-recently-used
    entries are evicted.

    **Per-process invariant (multi-process serving):** a fetch cache is
    derived state of *one process's* store and must never be shared or
    shipped across process boundaries — each serve worker owns its own
    instance, keyed to its currently attached arena generation.  On an
    epoch swap (:meth:`repro.serve.engine.QueryEngine.swap_engine`) the
    worker clears its fetch cache wholesale: cached node states alias the
    old arena's memory, and cross-generation reuse would silently serve
    pre-update adjacency.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive or None, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[int, _FetchedState] = OrderedDict()
        self._lock = threading.Lock()
        #: Monotone counter bumped by every invalidation event; walks
        #: snapshot it at start and their stores are rejected if an
        #: invalidation ran meanwhile (a state fetched from the pre-update
        #: store must never be cached past the update's invalidation).
        self.version = 0
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evicted = 0
        self.stale_rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, node: int) -> Optional[_FetchedState]:
        """The shared payload for ``node``, or None.  Callers must use
        :meth:`_FetchedState.fresh_view` before walking with it."""
        with self._lock:
            payload = self._entries.get(node)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(node)
            self.hits += 1
            return payload

    def store(
        self,
        node: int,
        payload: _FetchedState,
        *,
        guard_version: Optional[int] = None,
    ) -> None:
        with self._lock:
            if guard_version is not None and guard_version != self.version:
                self.stale_rejections += 1
                return
            self._entries[node] = payload
            self._entries.move_to_end(node)
            if self.capacity is not None:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evicted += 1

    def invalidate(self, nodes: Iterable[int]) -> int:
        """Drop entries for ``nodes``; returns how many were dropped."""
        with self._lock:
            self.version += 1
            dropped = 0
            for node in nodes:
                if self._entries.pop(node, None) is not None:
                    dropped += 1
            self.invalidated += dropped
            return dropped

    def clear(self) -> int:
        with self._lock:
            self.version += 1
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidated += dropped
            return dropped

    def prewarm(
        self, store: PageRankStore, nodes: Iterable[int], rng: RngLike = None
    ) -> int:
        """Fetch ``nodes`` into the cache ahead of traffic; returns fetches.

        Counts against ``store.fetch_count`` like any fetch — pre-warming
        moves cost off the query path, it does not hide it.
        """
        if store.fetch_mode != FETCH_FULL:
            raise ConfigurationError(
                "FetchCache requires fetch_mode='full' (sampled_edge fetches "
                "are single-use draws and cannot be cached)"
            )
        generator = ensure_rng(rng)
        warmed = 0
        for node in nodes:
            fetch = store.fetch(node, generator)
            self.store(
                node,
                _FetchedState(
                    neighbors=list(fetch.neighbors),
                    segments=fetch.segments,
                    out_degree=fetch.out_degree,
                ),
            )
            warmed += 1
        return warmed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"FetchCache(entries={len(self._entries)}, "
            f"capacity={self.capacity}, hits={self.hits}, "
            f"misses={self.misses}, evicted={self.evicted}, "
            f"invalidated={self.invalidated})"
        )


@dataclass
class StitchedWalkResult:
    """Outcome of one Algorithm-1 walk."""

    seed: int
    length: int
    visit_counts: Counter
    fetches: int
    segments_used: int = 0
    segment_steps: int = 0
    plain_steps: int = 0
    resets: int = 0
    #: First-visits served from a shared :class:`FetchCache` instead of the
    #: store (zero unless a cache was passed to :meth:`stitched_walk`).
    cached_fetches: int = 0

    def frequencies(self, num_nodes: int) -> np.ndarray:
        """Visit frequencies as a dense vector (≈ personalized PageRank)."""
        scores = np.zeros(num_nodes, dtype=np.float64)
        for node, count in self.visit_counts.items():
            if node < num_nodes:
                scores[node] = count
        return scores / max(self.length, 1)

    def top(
        self, k: int, *, exclude: Iterable[int] = ()
    ) -> list[tuple[int, int]]:
        """Most-visited ``k`` nodes as ``(node, visits)``, minus ``exclude``.

        Ties broken by node id for determinism.
        """
        banned = set(exclude)
        ranked = sorted(
            (
                (node, count)
                for node, count in self.visit_counts.items()
                if node not in banned
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]


class PersonalizedPageRank:
    """Algorithm-1 query engine over a :class:`PageRankStore`."""

    def __init__(
        self,
        pagerank_store: PageRankStore,
        *,
        reset_probability: float = 0.2,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        self.store = pagerank_store
        self.reset_probability = reset_probability
        self._rng = ensure_rng(rng)

    def stitched_walk(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
        use_segments: bool = True,
        fetch_cache: Optional[FetchCache] = None,
    ) -> StitchedWalkResult:
        """Run Algorithm 1 from ``seed`` until the path reaches ``length``.

        ``use_segments=False`` disables splicing (the "crude way" of
        Remark 2: every step pays its own store traffic), which is the
        baseline the fetch experiments compare against.

        ``fetch_cache`` supplies a shared cross-query :class:`FetchCache`:
        first visits found there skip the store fetch entirely (counted in
        ``cached_fetches``).  The walk's RNG consumption is *identical*
        with or without the cache — a first visit in this walk re-enters
        the loop (and re-flips the reset coin) whether its state came from
        the cache or the store, and ``full``-mode fetches draw no
        randomness — so a cached-assisted walk replays bit-for-bit the
        trajectory of a cache-free walk with the same generator.  Requires
        ``fetch_mode='full'``.
        """
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length}")
        if fetch_cache is not None and self.store.fetch_mode != FETCH_FULL:
            raise ConfigurationError(
                "fetch_cache requires a store with fetch_mode='full'"
            )
        generator = ensure_rng(rng) if rng is not None else self._rng
        reset_probability = self.reset_probability

        result = StitchedWalkResult(
            seed=seed, length=0, visit_counts=Counter(), fetches=0
        )
        fetched: dict[int, _FetchedState] = {}
        cache_version = (
            fetch_cache.version if fetch_cache is not None else 0
        )
        counts = result.visit_counts

        current = seed
        counts[seed] += 1
        result.length = 1

        while result.length < length:
            if generator.random() < reset_probability:
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            state = fetched.get(current)
            if state is None:
                payload = (
                    fetch_cache.lookup(current)
                    if fetch_cache is not None
                    else None
                )
                if payload is not None:
                    state = payload.fresh_view()
                    result.cached_fetches += 1
                else:
                    state = self._fetch(current, generator)
                    if fetch_cache is not None:
                        fetch_cache.store(
                            current,
                            state.fresh_view(),
                            guard_version=cache_version,
                        )
                    result.fetches += 1
                fetched[current] = state
                continue  # re-enter the loop with the node now in memory

            segment = state.take_segment() if use_segments else None
            if segment is not None:
                appended = len(segment) - 1  # segment[0] is `current` itself
                for node in segment[1:]:
                    counts[node] += 1
                result.length += appended
                result.segment_steps += appended
                result.segments_used += 1
                # The segment ended with its own reset; jump back to seed.
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            if state.out_degree == 0:
                # Dangling: reset to the seed (PPR-with-restart convention).
                current = seed
                counts[seed] += 1
                result.length += 1
                result.resets += 1
                continue

            current = self._step(current, state, generator)
            counts[current] += 1
            result.length += 1
            result.plain_steps += 1

        return result

    def _fetch(self, node: int, rng: np.random.Generator) -> _FetchedState:
        fetch = self.store.fetch(node, rng)
        return _FetchedState(
            neighbors=list(fetch.neighbors),
            segments=fetch.segments,
            out_degree=fetch.out_degree,
        )

    def _step(
        self, node: int, state: _FetchedState, rng: np.random.Generator
    ) -> int:
        if self.store.fetch_mode == FETCH_FULL:
            return state.neighbors[int(rng.integers(len(state.neighbors)))]
        # Remark-1 mode: the fetch carried one sampled edge; further steps
        # at this node must sample fresh edges from the social store.
        if state.neighbors:
            sampled = state.neighbors[0]
            state.neighbors = []
            return sampled
        return self.store.social_store.random_out_neighbor(node, rng)

    # ------------------------------------------------------------------

    def scores(
        self,
        seed: int,
        length: int,
        *,
        rng: RngLike = None,
        fetch_cache: Optional[FetchCache] = None,
    ) -> np.ndarray:
        """Personalized PageRank estimates (visit frequencies) for ``seed``."""
        walk = self.stitched_walk(seed, length, rng=rng, fetch_cache=fetch_cache)
        return walk.frequencies(self.store.social_store.num_nodes)

    def top_k(
        self,
        seed: int,
        k: int,
        length: int,
        *,
        exclude_seed: bool = True,
        exclude_friends: bool = False,
        rng: RngLike = None,
        fetch_cache: Optional[FetchCache] = None,
    ) -> StitchedWalkResult:
        """Run a walk sized for a top-``k`` query and leave ranking to caller.

        ``exclude_friends`` reproduces the paper's evaluation protocol
        (recommendation systems never surface existing friends).
        The walk result is returned so fetch counts stay inspectable;
        call ``.top(k, exclude=...)`` on it for the ranking.
        """
        walk = self.stitched_walk(seed, length, rng=rng, fetch_cache=fetch_cache)
        excluded: set[int] = set()
        if exclude_seed:
            excluded.add(seed)
        if exclude_friends:
            excluded.update(self.store.social_store.out_neighbors(seed))
        walk.visit_counts = Counter(
            {
                node: count
                for node, count in walk.visit_counts.items()
                if node not in excluded
            }
        )
        return walk
