#!/usr/bin/env python
"""Run benchmark modules and persist ``BENCH_<name>.json`` artifacts.

Each ``benchmarks/bench_<name>.py`` is executed as its own pytest
subprocess, and one JSON artifact per bench records what a tracking
dashboard needs:

* ``duration_seconds`` — wall time of the whole bench module;
* ``max_rss_kb`` — peak resident set of the bench subprocess tree
  (:func:`resource.getrusage` with ``RUSAGE_CHILDREN``, so worker
  processes spawned by the multi-process benches are counted);
* ``metrics`` — whatever the bench itself emitted through the
  ``REPRO_BENCH_JSON`` contract (``bench_serve_mp`` writes its qps /
  latency / differential extras; benches without an emitter leave this
  null);
* pass/fail (``returncode``) and the trailing pytest output lines.

Usage::

    python benchmarks/run_bench.py serve_mp            # one bench
    python benchmarks/run_bench.py serve_mp serve      # several
    python benchmarks/run_bench.py --all --fast        # everything, CI scale
    python benchmarks/run_bench.py serve_mp --out-dir /tmp/artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent


def discover() -> list[str]:
    return sorted(
        path.stem[len("bench_") :]
        for path in BENCH_DIR.glob("bench_*.py")
    )


def run_bench(
    name: str, out_dir: Path, *, fast: bool, extra_args: list[str]
) -> dict:
    """Run one bench module; write and return its artifact dict."""
    bench_file = BENCH_DIR / f"bench_{name}.py"
    if not bench_file.is_file():
        raise SystemExit(
            f"no such bench {name!r}; known: {', '.join(discover())}"
        )
    env = dict(os.environ)
    if fast:
        env["REPRO_BENCH_FAST"] = "1"
    with tempfile.NamedTemporaryFile(
        mode="r", suffix=".json", prefix=f"bench-{name}-", delete=False
    ) as metrics_file:
        metrics_path = Path(metrics_file.name)
    env["REPRO_BENCH_JSON"] = str(metrics_path)

    before = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    started = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", str(bench_file), "-q", *extra_args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(BENCH_DIR.parent),
    )
    duration = time.perf_counter() - started
    # ru_maxrss is a high-water mark over all reaped children; the delta
    # only moves when this bench out-peaked every earlier one, so the
    # first (or largest) bench of a session reports exactly, later
    # smaller ones report the session peak as an upper bound
    max_rss = max(
        before, resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )

    metrics = None
    try:
        text = metrics_path.read_text(encoding="utf-8")
        if text.strip():
            metrics = json.loads(text)
    except (OSError, ValueError):
        metrics = None
    finally:
        try:
            metrics_path.unlink()
        except OSError:
            pass

    artifact = {
        "bench": name,
        "returncode": completed.returncode,
        "passed": completed.returncode == 0,
        "fast_mode": fast,
        "duration_seconds": round(duration, 3),
        "max_rss_kb": max_rss,
        "metrics": metrics,
        "tail": completed.stdout.splitlines()[-12:],
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{name}.json"
    out_path.write_text(json.dumps(artifact, indent=2), encoding="utf-8")
    status = "ok" if artifact["passed"] else f"FAIL (rc={completed.returncode})"
    print(f"bench_{name}: {status} in {duration:.1f}s -> {out_path}")
    if not artifact["passed"]:
        sys.stdout.write(completed.stdout[-2000:])
        sys.stderr.write(completed.stderr[-2000:])
    return artifact


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benches",
        nargs="*",
        help="bench names without the bench_ prefix (e.g. serve_mp)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every bench_*.py module"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="set REPRO_BENCH_FAST=1 (smoke-test scale)",
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=BENCH_DIR / "artifacts",
        help="artifact directory (default benchmarks/artifacts)",
    )
    parser.add_argument(
        "--pytest-arg",
        action="append",
        default=[],
        help="extra argument forwarded to pytest (repeatable)",
    )
    args = parser.parse_args()
    names = discover() if args.all else args.benches
    if not names:
        parser.error("name at least one bench or pass --all")
    artifacts = [
        run_bench(name, args.out_dir, fast=args.fast, extra_args=args.pytest_arg)
        for name in names
    ]
    return 0 if all(a["passed"] for a in artifacts) else 1


if __name__ == "__main__":
    sys.exit(main())
