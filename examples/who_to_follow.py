#!/usr/bin/env python
"""Who-To-Follow: a live friend-recommendation service.

This is the paper's motivating application (the algorithm behind Twitter's
"Who to Follow").  The script:

1. replays a timestamped follow stream into an incremental engine — the
   social network "happening live";
2. at several points in time, serves recommendations for a user from the
   *current* walk store via personalized SALSA (relevance = authority
   score) and personalized PageRank, comparing the two;
3. reports the cost of everything in store operations — the currency that
   matters when the graph lives in a remote store.

Run:  python examples/who_to_follow.py [--users 3] [--nodes 4000]
"""

from __future__ import annotations

import argparse

from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=4000)
    parser.add_argument("--edges", type=int, default=48_000)
    parser.add_argument("--users", type=int, default=3)
    parser.add_argument("--walks", type=int, default=10)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    stream = twitter_like_stream(args.nodes, args.edges, rng=args.seed)
    engine = IncrementalSALSA(
        reset_probability=0.2, walks_per_node=args.walks, rng=args.seed
    )
    for _ in range(args.nodes):
        engine.add_node()

    # Replay the first 70% of history "offline"…
    cutoff = int(len(stream) * 0.7)
    for event in stream.prefix(cutoff):
        engine.apply(event)
    print(
        f"replayed {cutoff} follows; store holds "
        f"{engine.walks.num_segments} segments "
        f"({engine.walks.total_visits} walk-step entries)"
    )

    graph = engine.graph
    seeds = users_with_friend_count(
        graph, minimum=10, maximum=40, count=args.users, rng=args.seed
    )
    salsa_query = PersonalizedSALSA(engine.pagerank_store, rng=args.seed)

    def recommend(user: int, banner: str) -> None:
        friends = set(graph.out_view(user))
        walk = salsa_query.stitched_walk(user, 8_000)
        picks = walk.top_authorities(5, exclude={user, *friends})
        print(f"  {banner} user {user} (follows {len(friends)}): ", end="")
        print(
            ", ".join(f"{node}({visits})" for node, visits in picks)
            + f"   [{walk.fetches} fetches]"
        )

    print("\n-- recommendations at t = 70% --")
    for user in seeds:
        recommend(user, "for")

    # …then the network keeps evolving in real time: maintenance is cheap
    # and the next recommendation reflects every new follow instantly.
    maintenance = 0
    for event in stream.suffix(cutoff):
        maintenance += engine.apply(event).steps_resimulated
    print(
        f"\nreplayed the remaining {len(stream) - cutoff} follows live; "
        f"total maintenance: {maintenance} walk steps "
        f"(≈{maintenance / (len(stream) - cutoff):.1f} per follow)"
    )

    print("\n-- recommendations at t = 100% (no recomputation happened) --")
    for user in seeds:
        recommend(user, "for")

    fetches = engine.pagerank_store.fetch_count
    print(f"\ntotal personalized-query fetches this session: {fetches}")


if __name__ == "__main__":
    main()
