"""Snapshot/restore for walk stores and engines.

A production PageRank Store is expensive to initialize (``nR/ε`` walk
steps) and must survive process restarts; §2.2's whole point is never
recomputing it.  This module serializes a :class:`~repro.core.walks.
WalkStore` (and a whole :class:`~repro.core.incremental.IncrementalPageRank`
engine: graph + parameters + store) to a single ``.npz`` file.

Format (version 1): segments are flattened into one int64 arena plus a
lengths vector — compact, numpy-native, order-preserving.  Loading replays
``add_segment``, so the inverted visit index is rebuilt and validated by
construction rather than trusted from disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.walks import END_DANGLING, END_RESET, WalkSegment, WalkStore
from repro.errors import ConfigurationError, WalkStateError
from repro.graph.digraph import DynamicDiGraph
from repro.store.social_store import SocialStore

if TYPE_CHECKING:  # engine import is deferred at runtime (circular import)
    from repro.core.incremental import IncrementalPageRank

__all__ = [
    "save_walk_store",
    "load_walk_store",
    "save_engine",
    "load_engine",
]

FORMAT_VERSION = 1
PathLike = Union[str, Path]


def _store_arrays(store: WalkStore) -> dict[str, np.ndarray]:
    lengths = []
    reasons = []
    parities = []
    flat: list[int] = []
    for _, segment in store.iter_segments():
        lengths.append(len(segment.nodes))
        reasons.append(segment.end_reason)
        parities.append(segment.parity_offset)
        flat.extend(segment.nodes)
    return {
        "segment_lengths": np.asarray(lengths, dtype=np.int64),
        "segment_end_reasons": np.asarray(reasons, dtype=np.int8),
        "segment_parities": np.asarray(parities, dtype=np.int8),
        "segment_nodes": np.asarray(flat, dtype=np.int64),
    }


def save_walk_store(store: WalkStore, path: PathLike) -> None:
    """Serialize ``store`` to ``path`` (``.npz``)."""
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": "walk_store",
        "num_nodes": store.num_nodes,
        "track_sides": store.track_sides,
    }
    np.savez_compressed(
        Path(path),
        meta=json.dumps(meta),
        **_store_arrays(store),
    )


def _load_segments_into(store: WalkStore, data) -> None:
    lengths = data["segment_lengths"]
    reasons = data["segment_end_reasons"]
    parities = data["segment_parities"]
    flat = data["segment_nodes"]
    if lengths.sum() != len(flat):
        raise WalkStateError("corrupt snapshot: arena length mismatch")
    offset = 0
    for length, reason, parity in zip(lengths, reasons, parities):
        nodes = flat[offset : offset + int(length)].tolist()
        offset += int(length)
        if reason not in (END_RESET, END_DANGLING):
            raise WalkStateError(f"corrupt snapshot: end reason {reason}")
        store.add_segment(
            WalkSegment([int(n) for n in nodes], int(reason), parity_offset=int(parity))
        )


def _read_meta(data, expected_kind: str) -> dict:
    meta = json.loads(str(data["meta"]))
    if meta.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported snapshot version {meta.get('format_version')!r}"
        )
    if meta.get("kind") != expected_kind:
        raise ConfigurationError(
            f"snapshot holds a {meta.get('kind')!r}, expected {expected_kind!r}"
        )
    return meta


def load_walk_store(path: PathLike) -> WalkStore:
    """Load a store saved by :func:`save_walk_store`; index is rebuilt."""
    with np.load(Path(path), allow_pickle=False) as data:
        meta = _read_meta(data, "walk_store")
        store = WalkStore(
            int(meta["num_nodes"]), track_sides=bool(meta["track_sides"])
        )
        _load_segments_into(store, data)
    return store


def save_engine(engine: "IncrementalPageRank", path: PathLike) -> None:
    """Serialize an engine: parameters, graph edges, and walk store."""
    graph = engine.graph
    edges = graph.edge_list()
    sources = np.asarray([u for u, _ in edges], dtype=np.int64)
    targets = np.asarray([v for _, v in edges], dtype=np.int64)
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": "incremental_pagerank",
        "num_nodes": graph.num_nodes,
        "track_sides": engine.walks.track_sides,
        "reset_probability": engine.reset_probability,
        "walks_per_node": engine.walks_per_node,
        "reroute_policy": engine.reroute_policy,
        "allow_self_loops": graph.allow_self_loops,
    }
    np.savez_compressed(
        Path(path),
        meta=json.dumps(meta),
        edge_sources=sources,
        edge_targets=targets,
        **_store_arrays(engine.walks),
    )


def load_engine(path: PathLike, *, rng=None) -> "IncrementalPageRank":
    """Restore an engine saved by :func:`save_engine`.

    The walk store is revalidated against the restored graph: every stored
    step must traverse an existing edge, and dangling ends must sit at
    out-degree-zero nodes — a corrupt or mismatched snapshot fails loudly
    instead of silently skewing estimates.
    """
    from repro.core.incremental import IncrementalPageRank

    with np.load(Path(path), allow_pickle=False) as data:
        meta = _read_meta(data, "incremental_pagerank")
        graph = DynamicDiGraph(
            int(meta["num_nodes"]), allow_self_loops=bool(meta["allow_self_loops"])
        )
        for source, target in zip(data["edge_sources"], data["edge_targets"]):
            graph.add_edge(int(source), int(target))
        engine = IncrementalPageRank(
            SocialStore.of_graph(graph),
            reset_probability=float(meta["reset_probability"]),
            walks_per_node=int(meta["walks_per_node"]),
            reroute_policy=str(meta["reroute_policy"]),
            rng=rng,
        )
        store = WalkStore(graph.num_nodes, track_sides=bool(meta["track_sides"]))
        _load_segments_into(store, data)
        engine.pagerank_store.walks = store

    _validate_against_graph(engine)
    return engine


def _validate_against_graph(engine: "IncrementalPageRank") -> None:
    graph = engine.graph
    for _, segment in engine.walks.iter_segments():
        for a, b in zip(segment.nodes, segment.nodes[1:]):
            if not graph.has_edge(a, b):
                raise WalkStateError(
                    f"snapshot mismatch: segment step {a}->{b} not in graph"
                )
        if (
            segment.end_reason == END_DANGLING
            and graph.out_degree(segment.last) != 0
        ):
            raise WalkStateError(
                f"snapshot mismatch: DANGLING end at non-dangling node "
                f"{segment.last}"
            )
