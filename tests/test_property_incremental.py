"""Property-based tests: the incremental engines under arbitrary mutation
sequences.  The invariants checked here are the load-bearing ones:

* the inverted index always matches the segments (check_invariants);
* every stored segment is a valid walk on the *current* graph;
* dangling bookkeeping is exact (DANGLING ⇔ last node has no out-edge);
* exactly R segments per node survive any history;
* reports add up.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental import IncrementalPageRank
from repro.core.salsa import IncrementalSALSA
from repro.core.walks import END_DANGLING, END_RESET, SIDE_HUB
from repro.graph.arrival import ArrivalEvent

NODES = 6

edge_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODES - 1),
        st.integers(min_value=0, max_value=NODES - 1),
    ).filter(lambda e: e[0] != e[1]),
    min_size=1,
    max_size=40,
)


@given(edge_ops, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=120, deadline=None)
def test_pagerank_engine_invariants(ops, seed):
    engine = IncrementalPageRank(walks_per_node=2, rng=seed, reset_probability=0.3)
    for _ in range(NODES):
        engine.add_node()
    applied: set[tuple[int, int]] = set()
    for u, v in ops:
        if (u, v) in applied:
            report = engine.remove_edge(u, v)
            applied.discard((u, v))
            assert report.operation == "remove"
        else:
            report = engine.add_edge(u, v)
            applied.add((u, v))
            assert report.operation == "add"
        assert report.work >= 0
        assert report.segments_rerouted >= 0

    engine.walks.check_invariants()
    graph = engine.graph
    assert set(graph.edges()) == applied
    for node in range(NODES):
        assert len(engine.walks.segments_starting_at(node)) == 2
    for _, segment in engine.walks.iter_segments():
        for a, b in zip(segment.nodes, segment.nodes[1:]):
            assert graph.has_edge(a, b), "segment uses a non-existent edge"
        if segment.end_reason == END_DANGLING:
            assert graph.out_degree(segment.last) == 0, (
                "DANGLING segment at a node that has out-edges"
            )
    scores = engine.pagerank()
    assert (scores >= 0).all()
    # paper normalization overshoots only by sampling noise; at n=6, R=2
    # the realized total-visit count has large relative variance, so this
    # is a non-explosion sanity bound, not a tightness claim
    assert scores.sum() <= 3.0


@given(edge_ops, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_salsa_engine_invariants(ops, seed):
    engine = IncrementalSALSA(walks_per_node=2, rng=seed, reset_probability=0.3)
    for _ in range(NODES):
        engine.add_node()
    applied: set[tuple[int, int]] = set()
    for u, v in ops:
        if (u, v) in applied:
            engine.remove_edge(u, v)
            applied.discard((u, v))
        else:
            engine.add_edge(u, v)
            applied.add((u, v))

    engine.walks.check_invariants()
    graph = engine.graph
    for _, segment in engine.walks.iter_segments():
        for position in range(len(segment.nodes) - 1):
            a, b = segment.nodes[position], segment.nodes[position + 1]
            if segment.side_of(position) == SIDE_HUB:
                assert graph.has_edge(a, b)
            else:
                assert graph.has_edge(b, a)
        if segment.end_reason == END_DANGLING:
            last_position = len(segment.nodes) - 1
            if segment.side_of(last_position) == SIDE_HUB:
                assert graph.out_degree(segment.last) == 0
            else:
                assert graph.in_degree(segment.last) == 0


@given(
    edge_ops,
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=12),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_batch_engine_invariants(ops, batch_plan, seed):
    """The batched path under arbitrary interleaved add/remove/undangle
    sequences, chunked by an arbitrary batch-size plan, must uphold every
    invariant the sequential engine does."""
    from test_batch_vs_sequential import _toggle_stream

    engine = IncrementalPageRank(walks_per_node=2, rng=seed, reset_probability=0.3)
    for _ in range(NODES):
        engine.add_node()
    events = _toggle_stream(ops)
    applied: set[tuple[int, int]] = set()
    for event in events:
        if event.kind == "add":
            applied.add(event.edge)
        else:
            applied.discard(event.edge)

    consumed = 0
    plan = iter(batch_plan)
    while consumed < len(events):
        try:
            size = next(plan)
        except StopIteration:
            size = len(events) - consumed
        chunk = events[consumed : consumed + size]
        consumed += len(chunk)
        report = engine.apply_batch(chunk)
        assert report.num_events == len(chunk)
        assert report.work >= 0
        assert report.segments_rerouted >= 0
        assert 0.0 <= report.mean_activation_probability <= 1.0

    engine.walks.check_invariants()
    graph = engine.graph
    assert set(graph.edges()) == applied
    for node in range(NODES):
        assert len(engine.walks.segments_starting_at(node)) == 2
    for _, segment in engine.walks.iter_segments():
        for a, b in zip(segment.nodes, segment.nodes[1:]):
            assert graph.has_edge(a, b), "segment uses a non-existent edge"
        if segment.end_reason == END_DANGLING:
            assert graph.out_degree(segment.nodes[-1]) == 0, (
                "DANGLING segment at a node that has out-edges"
            )
    scores = engine.pagerank()
    assert (scores >= 0).all()
    assert scores.sum() <= 3.0


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_batch_undangle_resumes_pending_steps(seed):
    """END_DANGLING is a *pending* step: a batch that gives the stranded
    endpoint an out-edge must resume every such segment."""
    engine = IncrementalPageRank(walks_per_node=3, rng=seed, reset_probability=0.3)
    for _ in range(4):
        engine.add_node()
    # funnel every walk into node 3, which has no out-edges
    engine.apply_batch(
        [
            ArrivalEvent("add", 0, 3),
            ArrivalEvent("add", 1, 3),
            ArrivalEvent("add", 2, 3),
        ]
    )
    stranded = [
        segment_id
        for segment_id, segment in engine.walks.iter_segments()
        if segment.end_reason == END_DANGLING and segment.nodes[-1] == 3
    ]
    report = engine.apply_batch([ArrivalEvent("add", 3, 0)])
    engine.walks.check_invariants()
    assert report.segments_rerouted >= len(stranded)
    for segment_id in stranded:
        segment = engine.walks.get(segment_id)
        # the pending step was taken through the only out-edge of 3
        if segment.end_reason == END_DANGLING:
            assert segment.nodes[-1] != 3


@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_batch_walker_max_steps_cap(max_steps, seed):
    """The batch walker's safety cap bounds every resimulated tail and is
    reported (``capped``), never silently hidden."""
    engine = IncrementalPageRank(
        walks_per_node=2, rng=seed, reset_probability=0.001
    )
    for _ in range(4):
        engine.add_node()
    report = engine.apply_batch(
        [ArrivalEvent("add", i, (i + 1) % 4) for i in range(4)],
        max_steps=max_steps,
    )
    engine.walks.check_invariants()
    # ε = 0.001 on a cycle: essentially every resumed tail hits the cap
    assert report.capped > 0
    for _, segment in engine.walks.iter_segments():
        # pre-batch segments are trivial ([node]); a repaired one is that
        # single-node prefix plus a tail of at most max_steps + 1 nodes
        assert len(segment.nodes) <= max_steps + 2
        if len(segment.nodes) == max_steps + 2:
            assert segment.end_reason == END_RESET  # capped ⇒ RESET


@given(
    edge_ops,
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=200, max_value=2000),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_stitched_walk_composition(ops, seed_node, length, seed):
    """Algorithm 1's bookkeeping identity must hold on any graph shape,
    including graphs with dangling nodes and tiny reachable sets."""
    from repro.core.personalized import PersonalizedPageRank

    engine = IncrementalPageRank(walks_per_node=2, rng=seed, reset_probability=0.3)
    for _ in range(NODES):
        engine.add_node()
    for u, v in ops:
        if not engine.graph.has_edge(u, v):
            engine.add_edge(u, v)
    ppr = PersonalizedPageRank(engine.pagerank_store, rng=seed + 1)
    walk = ppr.stitched_walk(seed_node, length)
    assert walk.length >= length
    assert sum(walk.visit_counts.values()) == walk.length
    assert 1 + walk.resets + walk.segment_steps + walk.plain_steps == walk.length
    assert walk.fetches <= len(walk.visit_counts)  # at most one fetch per node


# ----------------------------------------------------------------------
# Bounded-staleness scheduler: error-budget accounting properties
# ----------------------------------------------------------------------


def _fresh_engine(seed: int) -> IncrementalPageRank:
    engine = IncrementalPageRank(walks_per_node=2, rng=seed, reset_probability=0.3)
    for _ in range(NODES):
        engine.add_node()
    return engine


def _engine_digest(engine: IncrementalPageRank) -> tuple:
    return (
        tuple(sorted(engine.graph.edge_list())),
        engine.walks.visit_count_array().tobytes(),
        engine.pagerank().tobytes(),
        repr(engine._rng.bit_generator.state),
    )


@given(edge_ops, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=80, deadline=None)
def test_scheduler_error_accounting(ops, seed):
    """The budget ledger under arbitrary deferral histories:

    * pending error accumulates *strictly monotonically* — one positive
      increment per deferred event, never negative, never forgotten;
    * per-node attribution sums (within float tolerance) to the total;
    * a flush resets the ledger *exactly* — not approximately — because
      the repaired store owes nothing.
    """
    import math

    from repro.core.scheduler import StalenessScheduler

    engine = _fresh_engine(seed)
    sched = StalenessScheduler(engine, staleness_budget=math.inf)
    previous = 0.0
    for u, v in ops:
        event = ArrivalEvent(
            "remove" if sched.has_edge(u, v) else "add", u, v
        )
        sched.apply(event)
        assert sched.pending_error > previous, "deferral must cost something"
        previous = sched.pending_error
        assert u in sched.pending_dirty_nodes
        assert v in sched.pending_dirty_nodes
        assert sched.error_of(u) > 0.0
    per_node = sum(sched.error_of(node) for node in range(NODES))
    assert abs(per_node - sched.pending_error) < 1e-9 * max(per_node, 1.0)
    assert sched.pending_events == len(ops)
    sched.flush()
    assert sched.pending_error == 0.0, "reset must be exact, not approximate"
    assert sched.pending_events == 0
    assert sched.pending_dirty_nodes == frozenset()
    assert all(sched.error_of(node) == 0.0 for node in range(NODES))
    # the ledger restarts cleanly: a fresh deferral accounts from zero
    u, v = ops[0]
    event = ArrivalEvent("remove" if sched.has_edge(u, v) else "add", u, v)
    sched.apply(event)
    assert 0.0 < sched.pending_error < previous + 1.0
    sched.close()
    engine.walks.check_invariants()


@given(
    edge_ops,
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=12),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_scheduler_granularity_invariance(ops, flush_plan, seed):
    """The final repaired state is invariant to *when* repairs ran.

    Eager application, flush-after-every-event, and flushes at arbitrary
    plan-chosen points must all land on the byte-identical engine —
    graph, walk store, scores, and RNG stream position — because replay
    re-issues the exact eager calls and deferral consumes no randomness.
    """
    import math

    from repro.core.scheduler import StalenessScheduler

    eager = _fresh_engine(seed)
    events = []
    for u, v in ops:
        event = ArrivalEvent(
            "remove" if eager.graph.has_edge(u, v) else "add", u, v
        )
        eager.apply(event)
        events.append(event)

    digests = [_engine_digest(eager)]
    for plan in ([1] * len(events), flush_plan):
        engine = _fresh_engine(seed)
        sched = StalenessScheduler(engine, staleness_budget=math.inf)
        schedule = iter(plan)
        until_flush = next(schedule)
        for event in events:
            sched.apply(event)
            until_flush -= 1
            if until_flush == 0:
                sched.flush()
                until_flush = next(schedule, len(events) + 1)
        sched.flush()
        sched.close()
        engine.walks.check_invariants()
        digests.append(_engine_digest(engine))
    assert digests[0] == digests[1] == digests[2]
