"""Experiment drivers — one per figure/table of the paper (see DESIGN.md §4).

Each driver returns an :class:`~repro.experiments.common.ExperimentResult`
with the rows the paper reports plus ASCII renderings of the figures.  The
registry maps experiment ids (``E-F1`` … ``E-T1``, ``E-THM4`` …) to
drivers; ``python -m repro.experiments <id>`` runs one from the shell, and
the ``benchmarks/`` tree wraps the same drivers in pytest-benchmark.
"""

from repro.experiments.common import ExperimentResult, get_experiment, list_experiments

# Importing the modules registers their drivers.
from repro.experiments import (  # noqa: E402,F401  (registration side effects)
    exp_arrival,
    exp_concentration,
    exp_faults,
    exp_fetches,
    exp_linkpred,
    exp_powerlaw,
    exp_precision,
    exp_serve,
    exp_serve_mp,
    exp_update_cost,
)

__all__ = ["ExperimentResult", "get_experiment", "list_experiments"]
