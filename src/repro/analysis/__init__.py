"""Analysis utilities: power-law fits, IR metrics, error norms, ASCII plots."""

from repro.analysis.concentration import (
    l1_error,
    max_relative_error,
    relative_errors,
    top_k_overlap,
)
from repro.analysis.power_law import (
    PowerLawFit,
    empirical_cdf,
    fit_personalized_exponent,
    fit_rank_exponent,
    weighted_degree_cdf,
)
from repro.analysis.precision import (
    average_precision_11pt,
    capture_count,
    interpolated_precision_11pt,
)

__all__ = [
    "PowerLawFit",
    "fit_rank_exponent",
    "fit_personalized_exponent",
    "empirical_cdf",
    "weighted_degree_cdf",
    "interpolated_precision_11pt",
    "average_precision_11pt",
    "capture_count",
    "l1_error",
    "max_relative_error",
    "relative_errors",
    "top_k_overlap",
]
