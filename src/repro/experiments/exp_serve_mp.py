"""E-SERVE-MP: the multi-process serve tier vs in-process serving.

The paper's serving story ends at one process; this experiment measures
what the shared-arena tier buys beyond it.  The same interleaved
query/update workload as E-SERVE is driven through a
:class:`~repro.serve.frontend.MultiProcessFrontend`: queries fan out
seed-affine to worker processes attached read-only to mmap'd arena
snapshots, updates land on the coordinator's private engine and become
visible through epoch bumps (:mod:`repro.serve.epochs`).

Two claims, reported separately:

* **correctness** — for every interleaving of query waves, update slices,
  and epoch bumps, multi-process answers are bit-identical to a
  single-process :class:`~repro.serve.engine.QueryEngine` with the same
  ``rng_seed`` over the same published state (rankings compared
  element-wise; cost counters legitimately differ with cache warmth);
* **scaling** — sustained query-only throughput grows with worker count,
  because workers share the arena pages read-only (no copies, no locks)
  and each drains its queue with the one-kernel-per-drain batcher.  The
  benchmark gate asserts ≥2.5× at 4 workers on ≥4-core machines.

Rows: one per serving configuration (in-process baseline + each worker
count) with sustained qps and mean batch latency.  Notes carry the
differential tally and the scaling factors.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.experiments.common import ExperimentResult, register
from repro.serve.engine import QueryEngine
from repro.serve.frontend import MultiProcessFrontend
from repro.serve.traffic import interleaved_traffic
from repro.serve.worker import WorkerConfig
from repro.workloads.twitter_like import twitter_like_stream

__all__ = ["run_serve_mp"]

ENGINE_SEED = 12345  # identical walk stores across configurations
QUERY_SEED = 7  # rng_seed shared by every serving stack under test


def _fresh_engine(stream, cut, walks_per_node):
    return IncrementalPageRank.from_graph(
        stream.snapshot_at(cut),
        walks_per_node=walks_per_node,
        rng=np.random.default_rng(ENGINE_SEED),
    )


def _differential(stream, cut, walks_per_node, phases):
    """Drive the interleaved schedule through mp + single-process stacks.

    Returns ``(matched, total)`` over every query in every wave.  The mp
    side answers from 2 workers; the oracle is an in-process QueryEngine
    over the same coordinator engine, consulted *after* the same updates.
    """
    engine = _fresh_engine(stream, cut, walks_per_node)
    oracle = QueryEngine(engine, rng_seed=QUERY_SEED)
    matched = total = 0
    with MultiProcessFrontend(
        engine,
        num_workers=2,
        max_in_flight=4096,
        config=WorkerConfig(rng_seed=QUERY_SEED),
    ) as frontend:
        for phase in phases:
            if phase.kind == "events":
                engine.apply_batch(phase.events)
                frontend.publish_epoch()
                continue
            served = frontend.run(phase.queries)
            for request, answer in zip(phase.queries, served):
                expected = oracle.top_k(
                    request.seed,
                    request.k,
                    length=request.length,
                    exclude_friends=request.exclude_friends,
                )
                total += 1
                if answer is not None and answer.ranking == expected.ranking:
                    matched += 1
    oracle.detach()
    return matched, total


def _sustained_mp(engine, requests, num_workers, wave_size):
    """Query-only burst through ``num_workers`` workers; (seconds, qps, lat)."""
    with MultiProcessFrontend(
        engine,
        num_workers=num_workers,
        max_in_flight=max(4 * wave_size, 256),
        config=WorkerConfig(rng_seed=QUERY_SEED),
    ) as frontend:
        # one warm wave primes worker caches (parity with the in-process
        # baseline, whose engine has served the differential phase)
        frontend.run(requests[:wave_size])
        started = time.perf_counter()
        for start in range(0, len(requests), wave_size):
            frontend.run(requests[start : start + wave_size])
        elapsed = time.perf_counter() - started
        snapshot = frontend.registry.snapshot()
    count = snapshot.get("repro_serve_mp_batch_latency_seconds_count", 0.0)
    total = snapshot.get("repro_serve_mp_batch_latency_seconds_sum", 0.0)
    latency = total / count if count else 0.0
    return elapsed, len(requests) / elapsed, latency


def _sustained_inprocess(engine, requests, wave_size):
    query_engine = QueryEngine(engine, rng_seed=QUERY_SEED)
    query_engine.run_batch(requests[:wave_size])
    started = time.perf_counter()
    for start in range(0, len(requests), wave_size):
        query_engine.run_batch(requests[start : start + wave_size])
    elapsed = time.perf_counter() - started
    query_engine.detach()
    return elapsed, len(requests) / elapsed


@register("E-SERVE-MP")
def run_serve_mp(
    num_nodes: int = 1200,
    num_edges: int = 14_400,
    num_queries: int = 300,
    sustained_queries: int = 600,
    seed_pool_size: int = 60,
    walk_length: int = 400,
    walks_per_node: int = 4,
    worker_counts: Sequence[int] = (1, 2),
    wave_size: int = 100,
    rng: int = 42,
) -> ExperimentResult:
    stream = twitter_like_stream(num_nodes, num_edges, rng=rng)
    cut = int(len(stream) * 0.7)
    generator = np.random.default_rng(rng)
    seed_pool = [int(s) for s in generator.choice(num_nodes, size=seed_pool_size)]
    phases = interleaved_traffic(
        stream.suffix(cut),
        seed_pool,
        num_queries=num_queries,
        k=10,
        length=walk_length,
        event_batch_size=max(200, num_edges // 12),
        query_burst=max(50, num_queries // 4),
        rng=generator,
    )
    matched, total = _differential(stream, cut, walks_per_node, phases)

    # throughput engine: all updates applied, shared by every row
    engine = _fresh_engine(stream, len(stream), walks_per_node)
    burst = [
        request
        for phase in interleaved_traffic(
            [],
            seed_pool,
            num_queries=sustained_queries,
            k=10,
            length=walk_length,
            rng=np.random.default_rng(rng + 1),
        )
        for request in phase.queries
    ]
    rows = []
    base_seconds, base_qps = _sustained_inprocess(engine, burst, wave_size)
    rows.append(
        {
            "mode": "in-process",
            "workers": 0,
            "sustained qps": round(base_qps, 1),
            "mean batch latency (ms)": round(
                1000.0 * base_seconds / max(1, -(-len(burst) // wave_size)), 2
            ),
        }
    )
    qps_by_workers = {}
    for workers in worker_counts:
        _, qps, latency = _sustained_mp(engine, burst, workers, wave_size)
        qps_by_workers[workers] = qps
        rows.append(
            {
                "mode": f"mp x{workers}",
                "workers": workers,
                "sustained qps": round(qps, 1),
                "mean batch latency (ms)": round(1000.0 * latency, 2),
            }
        )

    result = ExperimentResult(
        experiment_id="E-SERVE-MP",
        title="Multi-process serve tier over shared walk arenas",
        params={
            "nodes": num_nodes,
            "edges": num_edges,
            "queries": num_queries,
            "sustained": sustained_queries,
            "walk_length": walk_length,
            "workers": list(worker_counts),
        },
        rows=rows,
    )
    result.notes.append(
        f"differential check (mp vs single-process, interleaved "
        f"query/update/epoch schedule): {matched}/{total} rankings identical"
    )
    floor = min(qps_by_workers)
    for workers, qps in sorted(qps_by_workers.items()):
        result.notes.append(
            f"scaling: {workers} workers -> "
            f"{qps / qps_by_workers[floor]:.2f}x the {floor}-worker qps"
        )
    result.extras = {  # machine-readable for benchmarks/run_bench.py
        "qps_by_workers": {str(k): v for k, v in qps_by_workers.items()},
        "in_process_qps": base_qps,
        "differential": {"matched": matched, "total": total},
    }
    return result
