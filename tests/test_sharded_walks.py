"""Unit tests for the sharded walk-index engine (DESIGN.md §9).

Cross-backend behavior is pinned by ``tests/test_backend_fuzz.py``; these
tests cover the sharded store's own mechanics — routing, global-id maps,
merged enumerations, the parallel repair/build paths, manifest
validation, and observability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import ColumnarWalkStore, make_walk_store
from repro.core.sharded_walks import (
    COLD_BUILD_PROCESS,
    ShardedWalkIndex,
    parse_sharded_backend,
)
from repro.core.walks import END_DANGLING, END_RESET, WalkIndex, WalkSegment
from repro.errors import ConfigurationError, WalkStateError


def _random_segments(seed: int, count: int, num_nodes: int = 50):
    rng = np.random.default_rng(seed)
    segments = [
        [int(node) for node in rng.integers(0, num_nodes, int(rng.integers(1, 12)))]
        for _ in range(count)
    ]
    reasons = [int(rng.integers(2)) for _ in range(count)]
    return segments, reasons


def _paired_stores(seed: int = 0, count: int = 120, num_shards: int = 4):
    segments, reasons = _random_segments(seed, count)
    flat = ColumnarWalkStore()
    flat.bulk_add_segments(segments, reasons)
    sharded = ShardedWalkIndex(num_shards=num_shards)
    sharded.bulk_add_segments(segments, reasons)
    return flat, sharded


def _assert_equivalent(flat: WalkIndex, sharded: ShardedWalkIndex) -> None:
    assert sharded.num_segments == flat.num_segments
    assert sharded.total_visits == flat.total_visits
    assert sharded.num_nodes == flat.num_nodes
    assert np.array_equal(sharded.visit_count_array(), flat.visit_count_array())
    for node in range(flat.num_nodes):
        assert sharded.visits_of(node) == flat.visits_of(node)
        assert sharded.segment_ids_visiting(node) == flat.segment_ids_visiting(node)
        assert sharded.segments_starting_at(node) == flat.segments_starting_at(node)
        assert sharded.visit_count(node) == flat.visit_count(node)
        assert sharded.distinct_segment_count(node) == flat.distinct_segment_count(
            node
        )
    for (gid_a, seg_a), (gid_b, seg_b) in zip(
        sharded.iter_segments(), flat.iter_segments()
    ):
        assert gid_a == gid_b
        assert seg_a.nodes == seg_b.nodes
        assert seg_a.end_reason == seg_b.end_reason
    sharded.check_invariants()


# ----------------------------------------------------------------------
# Construction + routing
# ----------------------------------------------------------------------


def test_parse_sharded_backend():
    assert parse_sharded_backend("sharded") == 4
    assert parse_sharded_backend("sharded:7") == 7
    assert parse_sharded_backend("columnar") is None
    with pytest.raises(ConfigurationError):
        parse_sharded_backend("sharded:nope")
    with pytest.raises(ConfigurationError):
        parse_sharded_backend("sharded:0")


def test_make_walk_store_sharded():
    store = make_walk_store(10, backend="sharded:3")
    assert isinstance(store, ShardedWalkIndex)
    assert isinstance(store, WalkIndex)  # satisfies the runtime protocol
    assert store.num_shards == 3
    assert store.num_nodes == 10
    assert isinstance(make_walk_store(backend="sharded"), ShardedWalkIndex)
    with pytest.raises(ConfigurationError):
        make_walk_store(backend="bogus")


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        ShardedWalkIndex(num_shards=0)
    with pytest.raises(ConfigurationError):
        ShardedWalkIndex(max_workers=0)
    with pytest.raises(ConfigurationError):
        ShardedWalkIndex(cold_build="gpu")


def test_segments_route_to_source_shard():
    sharded = ShardedWalkIndex(num_shards=3)
    for source in range(12):
        sharded.add_segment(WalkSegment([source, (source + 1) % 12], END_RESET))
    for gid in range(12):
        source = sharded.source_of(gid)
        shard_index = sharded.shard_of(source)
        assert int(sharded._seg_shard[gid]) == shard_index
    assert sum(shard.num_segments for shard in sharded.shards) == 12
    sharded.check_invariants()


def test_incremental_adds_match_flat_store():
    segments, reasons = _random_segments(5, 80)
    flat = ColumnarWalkStore()
    sharded = ShardedWalkIndex(num_shards=5)
    for nodes, reason in zip(segments, reasons):
        flat.add_segment(WalkSegment(list(nodes), reason))
        sharded.add_segment(WalkSegment(list(nodes), reason))
    _assert_equivalent(flat, sharded)


def test_bulk_build_matches_flat_store():
    flat, sharded = _paired_stores()
    _assert_equivalent(flat, sharded)


def test_bulk_add_on_nonempty_store():
    flat, sharded = _paired_stores(count=30)
    more, reasons = _random_segments(9, 25)
    flat.bulk_add_segments(more, reasons)
    sharded.bulk_add_segments(more, reasons)
    _assert_equivalent(flat, sharded)


def test_bulk_add_validation():
    sharded = ShardedWalkIndex(num_shards=2)
    with pytest.raises(WalkStateError):
        sharded.bulk_add_segments([[0, 1]], [END_RESET, END_RESET])
    with pytest.raises(WalkStateError):
        sharded.bulk_add_segments([[0], [1]], [END_RESET, END_RESET], [0])
    with pytest.raises(WalkStateError):
        sharded.bulk_add_segments([[]], [END_RESET])


def test_rejected_block_leaves_store_untouched():
    """A corrupt bulk install must fail before any map/shard state lands."""
    sharded = ShardedWalkIndex(num_shards=2)
    for bad_segments, bad_reasons in (
        ([[0], [1]], [99, 99]),  # unknown end reason
        ([[0], [-3]], [END_RESET, END_RESET]),  # negative node id
    ):
        with pytest.raises(WalkStateError):
            sharded.bulk_add_segments(bad_segments, bad_reasons)
        assert sharded.num_segments == 0
        assert sharded.total_visits == 0
        sharded.check_invariants()
    # the store still works after the rejections
    sharded.bulk_add_segments([[0, 1], [1]], [END_RESET, END_DANGLING])
    assert sharded.num_segments == 2
    sharded.check_invariants()


# ----------------------------------------------------------------------
# Mutation paths
# ----------------------------------------------------------------------


def test_replace_rebuild_and_updates_match_flat_store():
    flat, sharded = _paired_stores(seed=2)
    rng = np.random.default_rng(3)
    for _ in range(40):
        gid = int(rng.integers(flat.num_segments))
        length = flat.segment_length(gid)
        if rng.random() < 0.5:
            keep = int(rng.integers(length))
            tail = [int(n) for n in rng.integers(0, 50, int(rng.integers(0, 6)))]
            reason = END_RESET if tail else END_DANGLING
            flat.replace_suffix(gid, keep, tail, reason)
            sharded.replace_suffix(gid, keep, tail, reason)
        else:
            source = flat.source_of(gid)
            tail = [source] + [
                int(n) for n in rng.integers(0, 50, int(rng.integers(0, 6)))
            ]
            flat.rebuild_segment(gid, tail, END_RESET)
            sharded.rebuild_segment(gid, tail, END_RESET)
    _assert_equivalent(flat, sharded)


@pytest.mark.parametrize("max_workers", [None, 4])
def test_apply_segment_updates_parallel_matches_serial(max_workers):
    segments, reasons = _random_segments(4, 400)
    flat = ColumnarWalkStore()
    flat.bulk_add_segments(segments, reasons)
    sharded = ShardedWalkIndex(num_shards=4, max_workers=max_workers)
    sharded.bulk_add_segments(segments, reasons)
    rng = np.random.default_rng(8)
    updates = []
    for gid in rng.choice(400, size=300, replace=False).tolist():
        keep = int(rng.integers(flat.segment_length(gid)))
        tail = [int(n) for n in rng.integers(0, 50, int(rng.integers(1, 8)))]
        updates.append((int(gid), keep, tail, END_RESET))
    flat.apply_segment_updates(updates)
    sharded.apply_segment_updates(updates)
    _assert_equivalent(flat, sharded)
    sharded.shutdown()


def test_updates_can_grow_node_space():
    _, sharded = _paired_stores(count=10)
    before = sharded.num_nodes
    sharded.apply_segment_updates([(0, 0, [before + 5], END_RESET)])
    assert sharded.num_nodes == before + 6
    for shard in sharded.shards:
        assert shard.num_nodes == sharded.num_nodes
    sharded.check_invariants()


def test_unknown_segment_id_raises():
    _, sharded = _paired_stores(count=5)
    with pytest.raises(WalkStateError):
        sharded.get(99)
    with pytest.raises(WalkStateError):
        sharded.apply_segment_updates([(99, 0, [1], END_RESET)])


def test_segment_view_is_read_only():
    _, sharded = _paired_stores(count=5)
    view = sharded.segment_view(0)
    assert view.tolist() == sharded.segment_nodes(0)
    with pytest.raises(ValueError):
        view[0] = 42


# ----------------------------------------------------------------------
# Parallel cold build
# ----------------------------------------------------------------------


def test_threaded_cold_build_matches_serial():
    segments, reasons = _random_segments(6, 600)
    serial = ShardedWalkIndex(num_shards=4)
    serial.bulk_add_segments(segments, reasons)
    threaded = ShardedWalkIndex(num_shards=4, max_workers=4)
    threaded.bulk_add_segments(segments, reasons)
    _assert_equivalent(serial, threaded)
    threaded.shutdown()


@pytest.mark.fuzz
def test_process_cold_build_matches_serial():
    """Shared-memory subprocess build (falls back cleanly if forbidden)."""
    segments, reasons = _random_segments(7, 600)
    serial = ShardedWalkIndex(num_shards=4)
    serial.bulk_add_segments(segments, reasons)
    processed = ShardedWalkIndex(
        num_shards=4, max_workers=2, cold_build=COLD_BUILD_PROCESS
    )
    processed.bulk_add_segments(segments, reasons)
    _assert_equivalent(serial, processed)
    processed.shutdown()


# ----------------------------------------------------------------------
# Manifest validation + observability
# ----------------------------------------------------------------------


def test_from_shard_arrays_rejects_corrupt_manifests():
    _, sharded = _paired_stores(count=40, num_shards=3)
    good = sharded.shard_arrays()

    bad = [dict(block) for block in good]
    bad[0]["global_ids"] = bad[0]["global_ids"][:-1]
    with pytest.raises(WalkStateError, match="global-id table length"):
        ShardedWalkIndex.from_shard_arrays(bad, num_nodes=sharded.num_nodes)

    bad = [dict(block) for block in good]
    bad[1]["global_ids"] = bad[1]["global_ids"][::-1].copy()
    with pytest.raises(WalkStateError, match="not ascending"):
        ShardedWalkIndex.from_shard_arrays(bad, num_nodes=sharded.num_nodes)

    bad = [dict(block) for block in good]
    bad[0]["global_ids"] = bad[0]["global_ids"].copy()
    bad[0]["global_ids"][0] = bad[1]["global_ids"][0]
    with pytest.raises(WalkStateError, match="partition"):
        ShardedWalkIndex.from_shard_arrays(bad, num_nodes=sharded.num_nodes)

    bad = [dict(block) for block in good]
    bad[0]["segment_nodes"] = bad[0]["segment_nodes"][:-1]
    with pytest.raises(WalkStateError, match="length mismatch"):
        ShardedWalkIndex.from_shard_arrays(bad, num_nodes=sharded.num_nodes)

    # shards swapped: segments placed where their source does not hash
    if sharded.shards[0].num_segments and sharded.shards[1].num_segments:
        swapped = [dict(block) for block in good]
        swapped[0], swapped[1] = swapped[1], swapped[0]
        with pytest.raises(WalkStateError, match="hashes elsewhere"):
            ShardedWalkIndex.from_shard_arrays(swapped, num_nodes=sharded.num_nodes)

    with pytest.raises(WalkStateError, match="no shards"):
        ShardedWalkIndex.from_shard_arrays([])


def test_global_order_export_roundtrip():
    flat, sharded = _paired_stores(seed=11, count=70, num_shards=7)
    assert [a.tolist() for a in sharded.to_arrays()] == [
        a.tolist() for a in flat.to_arrays()
    ]
    migrated = ShardedWalkIndex.from_arrays(
        *flat.to_arrays(), num_nodes=flat.num_nodes, num_shards=2
    )
    _assert_equivalent(flat, migrated)


def test_memory_and_load_observability():
    _, sharded = _paired_stores(count=100)
    stats = sharded.memory_stats()
    assert stats["num_shards"] == 4
    assert stats["bytes"] == sharded.memory_bytes()
    assert sum(stats["shard_segments"]) == sharded.num_segments
    assert sum(stats["shard_visits"]) == sharded.total_visits
    assert len(sharded.shard_load()) == 4
    assert sharded.load_imbalance() >= 1.0
    assert "ShardedWalkIndex" in repr(sharded)
    empty = ShardedWalkIndex(num_shards=2)
    assert empty.load_imbalance() == 0.0
    assert empty.memory_stats()["arena_utilization"] == 1.0


def test_side_counters_sum_across_shards():
    flat = ColumnarWalkStore(track_sides=True)
    sharded = ShardedWalkIndex(num_shards=3, track_sides=True)
    segments, reasons = _random_segments(17, 60)
    parities = [i % 2 for i in range(60)]
    flat.bulk_add_segments(segments, reasons, parities)
    sharded.bulk_add_segments(segments, reasons, parities)
    for side in (0, 1):
        assert np.array_equal(
            sharded.side_visit_count_array(side), flat.side_visit_count_array(side)
        )
        for node in range(0, flat.num_nodes, 7):
            assert sharded.side_visit_count(node, side) == flat.side_visit_count(
                node, side
            )
    sharded.check_invariants()
    sideless = ShardedWalkIndex(num_shards=2)
    with pytest.raises(WalkStateError):
        sideless.side_visit_count(0, 0)
    with pytest.raises(WalkStateError):
        sideless.side_visit_count_array(0)


def test_compact_preserves_contents():
    flat, sharded = _paired_stores(seed=13, count=60)
    rng = np.random.default_rng(1)
    for gid in range(0, 60, 3):
        tail = [int(n) for n in rng.integers(0, 50, 20)]
        keep = 0
        flat.replace_suffix(gid, keep, tail, END_RESET)
        sharded.replace_suffix(gid, keep, tail, END_RESET)
    sharded.compact()
    _assert_equivalent(flat, sharded)
    for shard in sharded.shards:
        assert shard.memory_stats()["arena_utilization"] == 1.0
