"""Incremental Monte Carlo PageRank (§2.2) — the paper's core contribution.

The engine keeps ``R`` stored walk segments per node *distributionally
correct at all times* as edges arrive and depart, touching only the
segments that can possibly be affected:

* **Edge arrival** ``(u, v)`` with post-insertion out-degree ``d``: only
  segments that took a step out of ``u`` matter.  Each such step redirects
  through the new edge with probability ``1/d`` (uniform over ``d`` edges,
  conditioned against the old uniform-over-``d−1`` choice); the first
  redirected step truncates the segment there, appends ``v``, and the rest
  is resimulated with fresh ε-coins.  Segments stranded at a previously
  dangling ``u`` (``END_DANGLING``) take their pending step and resume.
* **Edge removal** ``(u, v)``: segments that never stepped ``u → v`` are
  *already* correctly distributed for the new graph (uniform over ``d``
  conditioned on ≠ removed edge = uniform over ``d−1``), so only segments
  whose walk used the removed edge are touched: truncate at the first use,
  re-take that step over the remaining out-edges (no new ε-coin — the
  "continue" was already decided), and resimulate onward.

Every mutation returns an :class:`UpdateReport` whose fields are the units
of Theorem 4 / Proposition 5: segments rerouted (``M_t``) and walk steps
resimulated.  The engine also evaluates the paper's §2.2 *activation
probability* ``1 − (1 − 1/d(u))^{W(u)}`` for each arrival — the probability
with which the PageRank Store would be called at all in the deployed
two-store layout — so experiments can report predicted-vs-actual store
traffic (an ablation DESIGN.md calls out).

**Batched ingestion** (:meth:`IncrementalPageRank.apply_batch`) processes a
whole slice of the arrival stream at once.  Semantics: all graph mutations
are applied first, then every stored segment is repaired *directly against
the post-batch graph* — per-edge intermediate states are never
materialized.  The repair rule is the per-step coupling that generalizes
the paper's 1/d redirection coin to an arbitrary out-set delta at a source
``u`` with pre-batch out-set ``O_old`` and post-batch out-set ``O_new``
(``A = O_old ∩ O_new`` survivors, ``B = O_new \\ O_old`` newly added):

* a stored step ``u → w`` with ``w ∈ A`` is redirected into a uniform
  member of ``B`` with probability ``|B|/|O_new|`` and kept otherwise —
  the kept step is uniform over ``A`` and the marginal is uniform over
  ``O_new``, exactly the paper's ``1/d`` rule when ``|B| = 1``;
* a stored step over a removed edge (``w ∉ O_new``) is re-taken uniformly
  over ``O_new`` (no fresh ε-coin — "continue" was already decided), or
  truncated to ``END_DANGLING`` when ``O_new`` is empty;
* an ``END_DANGLING`` segment whose endpoint gained out-edges takes its
  pending step uniformly over ``O_new`` and resumes.

Each segment truncates at its *first* modified step and every truncated
tail is resimulated in **one** :func:`repro.graph.csr.batch_reset_walks`
call against a single frozen CSR snapshot of the post-batch graph, so the
per-slice cost is a handful of numpy passes instead of per-event
interpreter loops.  The result is distributionally identical to replaying
the slice event by event (both leave every segment distributed as a fresh
reset walk on the post-batch graph); the differential harness in
``tests/test_batch_vs_sequential.py`` checks the structural invariants and
score agreement.  Batches return an aggregated :class:`BatchUpdateReport`.

**Update feed.**  Every mutation bumps :attr:`IncrementalPageRank.epoch`
and notifies registered listeners with the mutation's *dirty node set* —
the nodes whose served state (out-adjacency, in-adjacency, or stored
segments keyed by their start node) may have changed.  The query-serving
layer (:mod:`repro.serve`) subscribes to this feed to invalidate exactly
the cached results whose walks read a dirty node.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.columnar import BACKEND_COLUMNAR, make_walk_store
from repro.core.monte_carlo import PAPER, scores_from_store
from repro.core.walks import (
    END_DANGLING,
    WalkIndex,
    WalkSegment,
    default_max_steps,
    simulate_reset_walk,
)
from repro.errors import ConfigurationError
from repro.graph.arrival import ADD, ArrivalEvent
from repro.graph.csr import batch_reset_walks
from repro.graph.digraph import DynamicDiGraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import StageProfiler
from repro.rng import RngLike, ensure_rng
from repro.store.pagerank_store import PageRankStore
from repro.store.social_store import SocialStore

__all__ = [
    "IncrementalPageRank",
    "UpdateReport",
    "BatchUpdateReport",
    "REROUTE_REDIRECT",
    "REROUTE_RESIMULATE",
]

REROUTE_REDIRECT = "redirect"
REROUTE_RESIMULATE = "resimulate_source"

#: Sentinel ``keep_until`` marking a whole-segment rebuild in a batch spec.
_REBUILD = -1


@dataclass
class UpdateReport:
    """Cost accounting for one graph mutation (the paper's per-edge work)."""

    operation: str
    edge: tuple[int, int]
    #: M_t — number of stored segments that were modified.
    segments_rerouted: int = 0
    #: Walk steps freshly simulated while repairing segments.
    steps_resimulated: int = 0
    #: Visits removed from the index by truncations.
    steps_discarded: int = 0
    #: Segments examined (visited the endpoint) but left untouched.
    segments_examined: int = 0
    #: Steps spent creating R fresh segments for newly arrived nodes
    #: (initialization cost, kept separate from maintenance cost).
    steps_initialized: int = 0
    #: Paper's activation probability 1 − (1 − 1/d)^W at this arrival.
    activation_probability: float = 0.0
    #: Whether any store mutation actually happened.
    store_called: bool = False
    #: Nodes whose served state (adjacency or starting segments) may have
    #: changed — the invalidation unit consumed by the query-serving layer.
    dirty_nodes: frozenset = frozenset()

    @property
    def work(self) -> int:
        """Total touched walk steps — the unit summed by Theorem 4 plots."""
        return self.steps_resimulated + self.steps_discarded


@dataclass
class BatchUpdateReport:
    """Aggregated cost accounting for one batched event slice."""

    #: Events in the slice (adds + removes).
    num_events: int = 0
    num_adds: int = 0
    num_removes: int = 0
    #: Σ M_t over the slice — stored segments rewritten.
    segments_rerouted: int = 0
    #: Walk steps freshly simulated (one vectorized pass for the whole slice).
    steps_resimulated: int = 0
    #: Visits removed from the index by truncations.
    steps_discarded: int = 0
    #: Affected segments examined but left untouched.
    segments_examined: int = 0
    #: Fresh segments created for nodes that arrived inside the slice.
    segments_initialized: int = 0
    #: Steps spent creating those fresh segments (init, not maintenance).
    steps_initialized: int = 0
    #: Mean §2.2 activation probability over the slice's add events,
    #: evaluated with pre-batch W(u) and post-batch d(u).
    mean_activation_probability: float = 0.0
    #: Resimulated tails truncated at the safety cap (reported, not hidden).
    capped: int = 0
    #: Whether any store mutation actually happened.
    store_called: bool = False
    #: Nodes whose served state (adjacency or starting segments) may have
    #: changed — the invalidation unit consumed by the query-serving layer.
    dirty_nodes: frozenset = frozenset()

    @property
    def work(self) -> int:
        """Total touched walk steps — comparable to ``UpdateReport.work``."""
        return self.steps_resimulated + self.steps_discarded

    @classmethod
    def merge(
        cls, reports: Iterable["UpdateReport | BatchUpdateReport"]
    ) -> "BatchUpdateReport":
        """Aggregate per-mutation and per-batch reports into one report.

        The bounded-staleness scheduler (:mod:`repro.core.scheduler`)
        replays a deferred queue as a sequence of engine calls and returns
        the merged accounting to its caller; counters sum, dirty sets
        union, and the mean activation probability is weighted by each
        report's add count.
        """
        merged = cls()
        dirty: set[int] = set()
        activation_weighted = 0.0
        activation_adds = 0
        for report in reports:
            if isinstance(report, BatchUpdateReport):
                merged.num_events += report.num_events
                merged.num_adds += report.num_adds
                merged.num_removes += report.num_removes
                merged.segments_initialized += report.segments_initialized
                merged.capped += report.capped
                activation_weighted += (
                    report.mean_activation_probability * report.num_adds
                )
                activation_adds += report.num_adds
            else:
                merged.num_events += 1
                if report.operation == "add":
                    merged.num_adds += 1
                    activation_weighted += report.activation_probability
                    activation_adds += 1
                else:
                    merged.num_removes += 1
            merged.segments_rerouted += report.segments_rerouted
            merged.steps_resimulated += report.steps_resimulated
            merged.steps_discarded += report.steps_discarded
            merged.segments_examined += report.segments_examined
            merged.steps_initialized += report.steps_initialized
            merged.store_called = merged.store_called or report.store_called
            dirty.update(report.dirty_nodes)
        if activation_adds:
            merged.mean_activation_probability = (
                activation_weighted / activation_adds
            )
        merged.dirty_nodes = frozenset(dirty)
        return merged


@dataclass
class _SourceDelta:
    """Net out-set change at one source over a batch (repair inputs)."""

    #: Post-batch out-set, for O(1) removed-edge detection.
    new_set: frozenset
    #: Post-batch out-adjacency (uniform re-take targets).
    new_neighbors: list[int]
    #: Edges in the post-batch out-set that were not there pre-batch.
    added: list[int]
    #: |B| / |O_new| — probability a surviving step redirects into ``added``.
    redirect_probability: float


class IncrementalPageRank:
    """Always-fresh PageRank over a dynamic graph via stored walk segments."""

    def __init__(
        self,
        social_store: Optional[SocialStore] = None,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        reroute_policy: str = REROUTE_REDIRECT,
        pagerank_store: Optional[PageRankStore] = None,
        store_backend: str = BACKEND_COLUMNAR,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        if walks_per_node <= 0:
            raise ConfigurationError(
                f"walks_per_node must be positive, got {walks_per_node}"
            )
        if reroute_policy not in (REROUTE_REDIRECT, REROUTE_RESIMULATE):
            raise ConfigurationError(f"unknown reroute_policy {reroute_policy!r}")
        #: The unified observability sink for this engine and the stores it
        #: default-constructs (DESIGN.md §12).  Explicitly passed stores
        #: keep whatever stats/registry they were built with.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.social_store = (
            social_store
            if social_store is not None
            else SocialStore(registry=self.registry)
        )
        self.reset_probability = reset_probability
        self.walks_per_node = walks_per_node
        self.reroute_policy = reroute_policy
        #: Which WalkIndex implementation initialize() builds ("columnar"
        #: by default; "object" selects the reference WalkStore).
        self.store_backend = store_backend
        make_walk_store(0, backend=store_backend)  # validate the name early
        self._rng = ensure_rng(rng)
        self.pagerank_store = (
            pagerank_store
            if pagerank_store is not None
            else PageRankStore(self.social_store, registry=self.registry)
        )
        #: apply_batch phase attribution (enabled at REPRO_OBS >= 1).
        self._profiler = StageProfiler(
            self.registry,
            metric="repro_core_stage_seconds",
            documentation="Wall-clock seconds per apply_batch phase",
        )
        self._store_profiler = StageProfiler(
            self.registry,
            metric="repro_store_stage_seconds",
            documentation="Wall-clock seconds per storage repair stage",
        )
        self._mutation_counter = self.registry.counter(
            "repro_core_mutations_total",
            "Graph mutations processed by the incremental engine",
            labels=("kind",),
        )
        self._repair_counters = {
            "segments_rerouted": self.registry.counter(
                "repro_core_segments_rerouted_total",
                "Stored walk segments rerouted by updates (Theorem 4 units)",
            ),
            "steps_resimulated": self.registry.counter(
                "repro_core_steps_resimulated_total",
                "Walk steps regenerated by update repair",
            ),
            "steps_discarded": self.registry.counter(
                "repro_core_steps_discarded_total",
                "Stored walk steps discarded by update repair",
            ),
        }
        # Cumulative counters across the engine's lifetime.
        self.total_segments_rerouted = 0
        self.total_steps_resimulated = 0
        self.total_steps_discarded = 0
        self.arrivals_processed = 0
        self.removals_processed = 0
        #: Monotone mutation counter; bumps once per mutation (or batch).
        self.epoch = 0
        self._update_listeners: list[Callable[[int, Optional[frozenset]], None]] = []
        #: Durability hook (attach_wal): logged-before-mutate edge events.
        self._wal = None

    # ------------------------------------------------------------------
    # Durability (write-ahead logging; see repro.serve.wal)
    # ------------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Log every mutation to ``wal`` *before* applying it.

        ``wal`` is a :class:`~repro.serve.wal.WriteAheadLog` (anything
        with ``append(op, events, rng_state)``).  Each record carries the
        engine RNG state as of just before the mutation, which is what
        makes :func:`~repro.serve.wal.recover_engine` replay bit-identical
        rather than merely distributionally correct.
        """
        if self._wal is not None and wal is not self._wal:
            raise ConfigurationError(
                "a write-ahead log is already attached; detach_wal() first"
            )
        self._wal = wal

    def detach_wal(self) -> None:
        self._wal = None

    @property
    def wal(self):
        return self._wal

    def rng_state(self) -> dict:
        """The engine RNG's bit-generator state (for WAL records)."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore an :meth:`rng_state` capture (WAL replay does, per record)."""
        self._rng.bit_generator.state = state

    def _log_wal(self, op: str, events) -> None:
        if self._wal is not None:
            self._wal.append(op, events, self.rng_state())

    # ------------------------------------------------------------------
    # Update notification (the serving layer's invalidation feed)
    # ------------------------------------------------------------------

    def add_update_listener(
        self, listener: Callable[[int, Optional[frozenset]], None]
    ) -> None:
        """Subscribe to mutations: ``listener(epoch, dirty_nodes)``.

        ``dirty_nodes`` is the set of nodes whose *served* state may have
        changed — out-adjacency (event sources), in-adjacency (event
        targets, for ``include_in_neighbors`` stores), rewritten stored
        segments (keyed by the segment's start node), or newly created
        nodes.  A query whose walk never read any dirty node is provably
        unaffected by the mutation.  ``dirty_nodes=None`` means "assume
        everything changed" (full reinitialization)."""
        self._update_listeners.append(listener)

    def remove_update_listener(
        self, listener: Callable[[int, Optional[frozenset]], None]
    ) -> None:
        self._update_listeners.remove(listener)

    def _publish_update(self, dirty_nodes: Optional[frozenset]) -> None:
        self.epoch += 1
        for listener in self._update_listeners:
            listener(self.epoch, dirty_nodes)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: DynamicDiGraph,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        reroute_policy: str = REROUTE_REDIRECT,
        store_backend: str = BACKEND_COLUMNAR,
        registry: Optional[MetricsRegistry] = None,
    ) -> "IncrementalPageRank":
        """Wrap an existing graph and initialize all walk segments (batch)."""
        registry = registry if registry is not None else MetricsRegistry()
        engine = cls(
            SocialStore(graph=graph, registry=registry),
            reset_probability=reset_probability,
            walks_per_node=walks_per_node,
            rng=rng,
            reroute_policy=reroute_policy,
            store_backend=store_backend,
            registry=registry,
        )
        engine.initialize()
        return engine

    def initialize(self) -> None:
        """(Re)simulate ``R`` segments per existing node, vectorized."""
        graph = self.graph
        store = make_walk_store(graph.num_nodes, backend=self.store_backend)
        bind_profiler = getattr(store, "bind_profiler", None)
        if bind_profiler is not None:
            bind_profiler(self._store_profiler)
        if graph.num_nodes:
            csr = graph.to_csr("out")
            starts = np.repeat(
                np.arange(graph.num_nodes, dtype=np.int64), self.walks_per_node
            )
            result = batch_reset_walks(
                csr, starts, self.reset_probability, self._rng
            )
            store.bulk_add_segments(result.segments, result.end_reasons)
        self.pagerank_store.walks = store
        self._publish_update(None)  # every stored segment was rebuilt

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> DynamicDiGraph:
        return self.social_store.graph

    @property
    def walks(self) -> WalkIndex:
        return self.pagerank_store.walks

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    # ------------------------------------------------------------------
    # Node arrival
    # ------------------------------------------------------------------

    def add_node(self) -> int:
        """Add a fresh node with its ``R`` (trivial) walk segments."""
        node = self.graph.add_node()
        self._ensure_walks(node)
        self._publish_update(frozenset((node,)))
        return node

    def _ensure_walks(self, node: int) -> int:
        """Make sure ``node`` owns R segments; returns steps simulated."""
        self.walks.ensure_node(node)
        existing = len(self.walks.segments_starting_at(node))
        steps = 0
        for _ in range(existing, self.walks_per_node):
            segment = simulate_reset_walk(
                self.graph, node, self.reset_probability, self._rng
            )
            self.walks.add_segment(segment)
            steps += len(segment.nodes) - 1
        return steps

    # ------------------------------------------------------------------
    # Edge arrival (Theorem 4's operation)
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int) -> UpdateReport:
        """Insert an edge and repair exactly the affected segments."""
        self._log_wal("add", ((ADD, source, target),))
        nodes_before = self.graph.num_nodes
        self.graph.ensure_node(max(source, target))
        # W(u) must be read before mutation for the paper's activation
        # statistic (the deployed system checks it from cached counters),
        # and the affected-segment snapshot must be taken before any new
        # walks are created: segments simulated after the insertion are
        # already correct for the new graph and must NOT be redirected.
        walk_count_before = self.walks.distinct_segment_count(source)
        affected_ids = self.walks.segment_ids_visiting(source)
        self.social_store.add_edge(source, target)
        report = UpdateReport(operation="add", edge=(source, target))
        dirty = {source, target}
        for node in range(nodes_before, self.graph.num_nodes):
            report.steps_initialized += self._ensure_walks(node)
            dirty.add(node)
        degree = self.graph.out_degree(source)
        report.activation_probability = (
            1.0 - (1.0 - 1.0 / degree) ** walk_count_before
            if walk_count_before
            else 0.0
        )

        rng = self._rng
        redirect_probability = 1.0 / degree
        for segment_id in affected_ids:
            nodes = self.walks.segment_nodes(segment_id)
            handled = self._maybe_redirect(
                segment_id,
                nodes,
                source,
                target,
                redirect_probability,
                report,
                rng,
                dirty,
            )
            if not handled:
                if (
                    nodes[-1] == source
                    and self.walks.end_reason_of(segment_id) == END_DANGLING
                ):
                    self._extend_dangling(segment_id, nodes, report, rng, dirty)
                else:
                    report.segments_examined += 1

        report.dirty_nodes = frozenset(dirty)
        self._finish_report(report)
        self.arrivals_processed += 1
        self._publish_update(report.dirty_nodes)
        return report

    def _maybe_redirect(
        self,
        segment_id: int,
        nodes: list[int],
        source: int,
        target: int,
        redirect_probability: float,
        report: UpdateReport,
        rng: np.random.Generator,
        dirty: set[int],
    ) -> bool:
        """Flip a 1/d coin per step taken at ``source``; reroute on first hit.

        ``nodes`` is the segment's (materialized) node list — the scan
        works on it directly so the hot loop never touches store objects.
        """
        for position in range(len(nodes) - 1):
            if nodes[position] != source:
                continue
            if rng.random() >= redirect_probability:
                continue
            dirty.add(nodes[0])
            if self.reroute_policy == REROUTE_RESIMULATE:
                self._resimulate_from_source(segment_id, nodes, report, rng)
            else:
                discarded = len(nodes) - (position + 1)
                continuation = simulate_reset_walk(
                    self.graph, target, self.reset_probability, rng
                )
                self.walks.replace_suffix(
                    segment_id, position, continuation.nodes, continuation.end_reason
                )
                report.steps_discarded += discarded
                report.steps_resimulated += len(continuation.nodes)
                report.segments_rerouted += 1
            return True
        return False

    def _extend_dangling(
        self,
        segment_id: int,
        nodes: list[int],
        report: UpdateReport,
        rng: np.random.Generator,
        dirty: set[int],
    ) -> None:
        """Resume a segment stranded at a node that just gained an out-edge.

        The segment's final ε-coin already came up "continue"; the pending
        step is taken uniformly over the node's *current* out-edges, then
        the walk proceeds normally.
        """
        node = nodes[-1]
        dirty.add(nodes[0])
        next_node = self.graph.random_out_neighbor(node, rng)
        continuation = simulate_reset_walk(
            self.graph, next_node, self.reset_probability, rng
        )
        self.walks.replace_suffix(
            segment_id,
            len(nodes) - 1,
            continuation.nodes,
            continuation.end_reason,
        )
        report.steps_resimulated += len(continuation.nodes)
        report.segments_rerouted += 1

    def _resimulate_from_source(
        self,
        segment_id: int,
        nodes: list[int],
        report: UpdateReport,
        rng: np.random.Generator,
    ) -> None:
        """§2.2's simplified policy: throw the segment away and re-walk."""
        report.steps_discarded += len(nodes) - 1
        replacement = simulate_reset_walk(
            self.graph, nodes[0], self.reset_probability, rng
        )
        self.walks.rebuild_segment(
            segment_id, replacement.nodes, replacement.end_reason
        )
        report.steps_resimulated += len(replacement.nodes) - 1
        report.segments_rerouted += 1

    # ------------------------------------------------------------------
    # Edge removal (Proposition 5's operation)
    # ------------------------------------------------------------------

    def remove_edge(self, source: int, target: int) -> UpdateReport:
        """Delete an edge; repair segments whose walk used it."""
        self._log_wal("remove", (("remove", source, target),))
        # Affected set must be computed against the *stored* segments, but
        # resimulation must use the post-removal graph — so mutate first.
        self.social_store.remove_edge(source, target)
        report = UpdateReport(operation="remove", edge=(source, target))
        dirty = {source, target}
        rng = self._rng
        for segment_id in self.walks.segment_ids_visiting(source):
            nodes = self.walks.segment_nodes(segment_id)
            position = self._first_use_of_edge(nodes, source, target)
            if position is None:
                report.segments_examined += 1
                continue
            dirty.add(nodes[0])
            if self.reroute_policy == REROUTE_RESIMULATE:
                self._resimulate_from_source(segment_id, nodes, report, rng)
                continue
            discarded = len(nodes) - (position + 1)
            # Re-take the step over the remaining edges; the ε-coin at
            # ``source`` already came up "continue", so it is NOT reflipped.
            if self.graph.out_degree(source) == 0:
                self.walks.replace_suffix(segment_id, position, [], END_DANGLING)
                resimulated = 0
            else:
                next_node = self.graph.random_out_neighbor(source, rng)
                continuation = simulate_reset_walk(
                    self.graph, next_node, self.reset_probability, rng
                )
                self.walks.replace_suffix(
                    segment_id, position, continuation.nodes, continuation.end_reason
                )
                resimulated = len(continuation.nodes)
            report.steps_discarded += discarded
            report.steps_resimulated += resimulated
            report.segments_rerouted += 1

        report.dirty_nodes = frozenset(dirty)
        self._finish_report(report)
        self.removals_processed += 1
        self._publish_update(report.dirty_nodes)
        return report

    @staticmethod
    def _first_use_of_edge(
        nodes: list[int], source: int, target: int
    ) -> Optional[int]:
        for position in range(len(nodes) - 1):
            if nodes[position] == source and nodes[position + 1] == target:
                return position
        return None

    # ------------------------------------------------------------------
    # Event-log replay
    # ------------------------------------------------------------------

    def apply(self, event: ArrivalEvent) -> UpdateReport:
        """Apply one :class:`ArrivalEvent` (add or remove)."""
        if event.kind == "add":
            return self.add_edge(event.source, event.target)
        return self.remove_edge(event.source, event.target)

    # ------------------------------------------------------------------
    # Batched ingestion (vectorized; see module docstring for semantics)
    # ------------------------------------------------------------------

    def apply_batch(
        self,
        events: Iterable[ArrivalEvent],
        *,
        max_steps: Optional[int] = None,
    ) -> BatchUpdateReport:
        """Ingest a whole slice of the arrival stream at once.

        Equivalent in distribution to ``for e in events: self.apply(e)``
        but interpreter work is O(affected segment steps) with all tail
        resimulation done in one :func:`batch_reset_walks` call against a
        single frozen CSR snapshot of the post-batch graph.  ``events``
        must be valid to apply in order (no duplicate adds, no removals of
        absent edges).  ``max_steps`` caps resimulated tail length
        (default :func:`repro.core.walks.default_max_steps`).
        """
        events = list(events)
        report = BatchUpdateReport(num_events=len(events))
        if not events:
            return report
        self._log_wal(
            "batch",
            [(event.kind, event.source, event.target) for event in events],
        )
        # Phase attribution (REPRO_OBS >= 1): one enabled check per batch,
        # one clock read per phase boundary.
        profiler = self._profiler
        profiling = profiler.enabled
        mark = perf_counter() if profiling else 0.0
        graph = self.graph
        walks = self.walks
        nodes_before = graph.num_nodes
        touched = {node for event in events for node in (event.source, event.target)}

        # -- 1. pre-mutation snapshots: old out-sets and W(u) ------------
        # Both must be read before any write: segments simulated after the
        # mutations are already correct for the new graph, and the paper's
        # activation statistic is defined on the pre-arrival counters.
        old_out: dict[int, list[int]] = {}
        for event in events:
            source = event.source
            if source not in old_out:
                old_out[source] = (
                    graph.out_neighbors(source) if source < nodes_before else []
                )
        walk_count_before = {
            source: walks.distinct_segment_count(source) for source in old_out
        }

        # -- 2. apply every mutation through the social store ------------
        batch_ops = self.social_store.apply_events(events)
        report.num_adds = batch_ops.get("add_edge", 0)
        report.num_removes = batch_ops.get("remove_edge", 0)

        # -- 3. net per-source out-set deltas vs the post-batch graph ----
        deltas: dict[int, _SourceDelta] = {}
        for source, old in old_out.items():
            new = graph.out_neighbors(source)
            old_set = set(old)
            new_set = set(new)
            if old_set == new_set:
                continue  # net no-op: stored steps at source stay correct
            added = [w for w in new if w not in old_set]
            deltas[source] = _SourceDelta(
                new_set=frozenset(new_set),
                new_neighbors=new,
                added=added,
                redirect_probability=len(added) / len(new) if new else 1.0,
            )

        add_sources = [event.source for event in events if event.kind == ADD]
        if add_sources:
            # activation is a per-source constant within one batch, so
            # evaluate once per distinct source and weight by event count
            unique_sources, source_counts = np.unique(
                np.asarray(add_sources, dtype=np.int64), return_counts=True
            )
            values = np.fromiter(
                (
                    self._batch_activation(int(source), walk_count_before)
                    for source in unique_sources
                ),
                dtype=np.float64,
                count=unique_sources.size,
            )
            report.mean_activation_probability = float(
                np.average(values, weights=source_counts)
            )

        if profiling:
            now = perf_counter()
            profiler.record("apply_batch.snapshot_and_mutate", now - mark)
            mark = now

        # -- 4. one index scan: candidate step positions at dirty sources -
        # All affected segments are concatenated into a single flat node
        # array so candidate extraction is pure numpy, not a Python loop
        # over every stored position.
        affected_ids = sorted(
            {
                segment_id
                for source in deltas
                for segment_id in walks.segment_ids_visiting(source)
            }
        )
        resim_specs: list[tuple[int, int]] = []  # (segment id, keep_until)
        resim_starts: list[int] = []
        rng = self._rng
        if affected_ids:
            # zero-copy on the columnar backend: views straight into the
            # node arena; the object backend materializes arrays here
            segment_arrays = [
                walks.segment_view(segment_id) for segment_id in affected_ids
            ]
            lengths = np.fromiter(
                (arr.size for arr in segment_arrays),
                dtype=np.int64,
                count=len(segment_arrays),
            )
            ends = np.cumsum(lengths)
            offsets = ends - lengths
            flat = np.concatenate(segment_arrays)
            dirty = np.zeros(graph.num_nodes, dtype=bool)
            dirty[list(deltas)] = True
            is_step = np.ones(flat.size, dtype=bool)
            is_step[ends - 1] = False  # no step is taken at a final node
            candidates = np.flatnonzero(dirty[flat] & is_step)
            cand_source = flat[candidates]
            cand_next = flat[candidates + 1]
            cand_segment = np.searchsorted(ends, candidates, side="right")
            cand_position = candidates - offsets[cand_segment]

            # -- 5. vectorized coin flips; first modified step/segment ---
            # a step over an edge absent from the post-batch graph is
            # always modified; encode (u, w) pairs for bulk membership
            key_base = np.int64(graph.num_nodes)
            delta_edge_keys = np.concatenate(
                [
                    source * key_base
                    + np.asarray(delta.new_neighbors, dtype=np.int64)
                    for source, delta in deltas.items()
                ]
            )
            valid = np.isin(
                cand_source * key_base + cand_next, delta_edge_keys
            )
            redirect_lookup = np.zeros(graph.num_nodes, dtype=np.float64)
            for source, delta in deltas.items():
                redirect_lookup[source] = delta.redirect_probability
            triggered = ~valid | (
                rng.random(candidates.size) < redirect_lookup[cand_source]
            )
            trigger_indices = np.flatnonzero(triggered)
            # candidates are ordered segment-major by position, so the
            # first trigger of each segment is its first occurrence here
            _, first_occurrence = np.unique(
                cand_segment[trigger_indices], return_index=True
            )
            winners = trigger_indices[first_occurrence]
            rerouted_mask = np.zeros(len(affected_ids), dtype=bool)
            rerouted_mask[cand_segment[winners]] = True
            target_coins = rng.random(len(winners))
            for which, coin in zip(winners.tolist(), target_coins):
                segment_id = affected_ids[int(cand_segment[which])]
                position = int(cand_position[which])
                delta = deltas[int(cand_source[which])]
                if self.reroute_policy == REROUTE_RESIMULATE:
                    # §2.2's simplified policy: re-walk from the source
                    resim_specs.append((segment_id, _REBUILD))
                    resim_starts.append(walks.source_of(segment_id))
                elif not delta.new_neighbors:
                    # source lost every out-edge: the already-decided
                    # "continue" becomes a pending step (Prop 5 semantics)
                    report.steps_discarded += walks.segment_length(segment_id) - (
                        position + 1
                    )
                    touched.add(walks.source_of(segment_id))
                    walks.replace_suffix(segment_id, position, [], END_DANGLING)
                    report.segments_rerouted += 1
                elif not valid[which]:
                    # step used a removed edge: re-take over O_new, no ε-coin
                    pool = delta.new_neighbors
                    resim_specs.append((segment_id, position))
                    resim_starts.append(pool[int(coin * len(pool))])
                else:
                    # surviving step redirected into the newly added edges
                    pool = delta.added
                    resim_specs.append((segment_id, position))
                    resim_starts.append(pool[int(coin * len(pool))])

            # -- 6. END_DANGLING resume: endpoints that gained out-edges -
            # the final ε-coin already came up "continue"; the pending step
            # is taken uniformly over the endpoint's post-batch out-set
            dangling = np.fromiter(
                (
                    walks.end_reason_of(segment_id) == END_DANGLING
                    for segment_id in affected_ids
                ),
                dtype=bool,
                count=len(affected_ids),
            )
            dirty_degree = np.zeros(graph.num_nodes, dtype=np.int64)
            for source, delta in deltas.items():
                dirty_degree[source] = len(delta.new_neighbors)
            last_nodes = flat[ends - 1]
            resumed = np.flatnonzero(
                dangling
                & ~rerouted_mask
                & dirty[last_nodes]
                & (dirty_degree[last_nodes] > 0)
            )
            for index in resumed.tolist():
                pool = deltas[int(last_nodes[index])].new_neighbors
                resim_specs.append(
                    (affected_ids[index], int(lengths[index]) - 1)
                )
                resim_starts.append(pool[int(rng.random() * len(pool))])
            report.segments_examined = int(
                len(affected_ids) - rerouted_mask.sum() - resumed.size
            )

        if profiling:
            now = perf_counter()
            profiler.record("apply_batch.scan", now - mark)
            mark = now

        # -- 7. one vectorized resimulation against a frozen snapshot -----
        init_starts = np.repeat(
            np.arange(nodes_before, graph.num_nodes, dtype=np.int64),
            self.walks_per_node,
        )
        all_starts = np.concatenate(
            [np.asarray(resim_starts, dtype=np.int64), init_starts]
        )
        if all_starts.size:
            csr = graph.to_csr("out")
            result = batch_reset_walks(
                csr,
                all_starts,
                self.reset_probability,
                rng,
                max_steps=(
                    max_steps
                    if max_steps is not None
                    else default_max_steps(self.reset_probability)
                ),
            )
            report.capped = result.capped
            if profiling:
                now = perf_counter()
                profiler.record("apply_batch.resimulate", now - mark)
                mark = now
            # merge repaired tails back into the store — one bulk call so
            # the columnar backend can rebuild its index vectorized
            updates: list[tuple[int, int, list[int], int]] = []
            for (segment_id, keep_until), tail, reason in zip(
                resim_specs, result.segments, result.end_reasons
            ):
                stored_length = walks.segment_length(segment_id)
                if keep_until == _REBUILD:
                    report.steps_discarded += stored_length - 1
                    report.steps_resimulated += len(tail) - 1
                else:
                    report.steps_discarded += stored_length - (keep_until + 1)
                    report.steps_resimulated += len(tail)
                updates.append((segment_id, keep_until, tail, int(reason)))
                report.segments_rerouted += 1
            walks.apply_segment_updates(updates)
            # R fresh segments per node that arrived inside the slice
            for index in range(len(resim_specs), len(all_starts)):
                tail = result.segments[index]
                walks.add_segment(
                    WalkSegment(tail, int(result.end_reasons[index]))
                )
                report.segments_initialized += 1
                report.steps_initialized += len(tail) - 1

        if profiling:
            profiler.record("apply_batch.writeback", perf_counter() - mark)

        touched.update(
            walks.source_of(segment_id) for segment_id, _ in resim_specs
        )
        touched.update(range(nodes_before, graph.num_nodes))
        report.dirty_nodes = frozenset(touched)
        self._finish_report(report)
        self.arrivals_processed += report.num_adds
        self.removals_processed += report.num_removes
        self.pagerank_store.record_batch(report)
        self._publish_update(report.dirty_nodes)
        return report

    def _batch_activation(
        self, source: int, walk_count_before: dict[int, int]
    ) -> float:
        """§2.2 activation for one batched add: pre-batch W, final degree."""
        walk_count = walk_count_before[source]
        if not walk_count:
            return 0.0
        degree = self.graph.out_degree(source)
        if degree <= 0:
            return 1.0
        return 1.0 - (1.0 - 1.0 / degree) ** walk_count

    def _finish_report(self, report: UpdateReport) -> None:
        report.store_called = report.segments_rerouted > 0
        self.total_segments_rerouted += report.segments_rerouted
        self.total_steps_resimulated += report.steps_resimulated
        self.total_steps_discarded += report.steps_discarded
        self._mutation_counter.inc(kind=getattr(report, "operation", "batch"))
        self._repair_counters["segments_rerouted"].inc(report.segments_rerouted)
        self._repair_counters["steps_resimulated"].inc(report.steps_resimulated)
        self._repair_counters["steps_discarded"].inc(report.steps_discarded)

    @property
    def total_work(self) -> int:
        """Lifetime touched-step count (Theorem 4's summed quantity)."""
        return self.total_steps_resimulated + self.total_steps_discarded

    # ------------------------------------------------------------------
    # Estimates (available in O(1) per node at all times)
    # ------------------------------------------------------------------

    def pagerank(self, normalization: str = PAPER) -> np.ndarray:
        """Current PageRank estimates for all nodes."""
        return scores_from_store(
            self.walks,
            self.num_nodes,
            self.walks_per_node,
            self.reset_probability,
            normalization,
        )

    def pagerank_of(self, node: int) -> float:
        """Current estimate for one node — a counter read, no computation."""
        return self.walks.visit_count(node) / (
            self.num_nodes * self.walks_per_node / self.reset_probability
        )

    def top(self, k: int) -> list[tuple[int, float]]:
        """The ``k`` nodes with the highest current estimates.

        Ties are broken by node id (via the shared
        :func:`repro.core.topk.top_k_dense` rule), so rankings compare
        exactly across runs and against cached results.
        """
        from repro.core.topk import top_k_dense

        return top_k_dense(self.pagerank(), k)

    def __repr__(self) -> str:
        return (
            f"IncrementalPageRank(nodes={self.num_nodes}, "
            f"edges={self.graph.num_edges}, R={self.walks_per_node}, "
            f"eps={self.reset_probability}, arrivals={self.arrivals_processed})"
        )
