"""E-THM1: sharp concentration of the Monte Carlo estimates (Theorem 1).

Theorem 1 proves π̃_v concentrates around π_v, sharply enough that R = 1
already yields usable estimates for above-average nodes and R = O(ln n)
covers average nodes.  This experiment measures, for a sweep of R:

* L1 error of the estimate vs the exact Equation-1 fixed point,
* max relative error over nodes with π_v ≥ 1/n (the regime Theorem 1
  actually covers),
* top-100 ranking overlap,

and checks the error shrinks like ~1/sqrt(R).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.concentration import (
    l1_error,
    max_relative_error,
    top_k_overlap,
)
from repro.baselines.power_iteration import exact_pagerank
from repro.core.monte_carlo import MonteCarloPageRank
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng, spawn
from repro.workloads.twitter_like import twitter_like_graph

__all__ = ["run_thm1"]


@register("E-THM1")
def run_thm1(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    walk_counts: tuple[int, ...] = (1, 2, 5, 10, 20),
    reset_probability: float = 0.2,
    rng=42,
) -> ExperimentResult:
    """Theorem 1: estimate quality as a function of R."""
    generator = ensure_rng(rng)
    graph_rng, *run_rngs = spawn(generator, 1 + len(walk_counts))
    graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    exact = exact_pagerank(graph, reset_probability=reset_probability)

    rows = []
    l1_errors = []
    for walks, run_rng in zip(walk_counts, run_rngs):
        estimator = MonteCarloPageRank(
            graph,
            reset_probability=reset_probability,
            walks_per_node=walks,
            rng=run_rng,
        ).build()
        estimate = estimator.scores()
        l1 = l1_error(estimate, exact)
        l1_errors.append(l1)
        rows.append(
            {
                "R": walks,
                "L1 error": l1,
                "max rel err (pi >= 1/n)": max_relative_error(
                    estimate, exact, floor=1.0 / num_nodes
                ),
                "top-100 overlap": top_k_overlap(estimate, exact, 100),
                "store visits": estimator.total_work_estimate(),
            }
        )

    result = ExperimentResult(
        experiment_id="E-THM1",
        title="Theorem 1: Monte Carlo concentration vs number of walks R",
        params={
            "n": num_nodes,
            "m": num_edges,
            "eps": reset_probability,
        },
        rows=rows,
    )
    ratio = l1_errors[0] / l1_errors[-1]
    expected = float(np.sqrt(walk_counts[-1] / walk_counts[0]))
    result.notes.append(
        f"L1 error shrank x{ratio:.1f} from R={walk_counts[0]} to "
        f"R={walk_counts[-1]} (sqrt scaling predicts x{expected:.1f}); "
        "R=1 already ranks the top-100 well — the paper's point."
    )
    return result
