"""E-SERVE: serving-layer benchmark (cache + batcher vs direct walks).

The headline acceptance: on a Zipf(1.0) seed distribution the cached,
batched service sustains ≥5× the query throughput of the cache-free
direct path, while every served answer stays differentially equal to a
cache-free reference run (same derived RNG, same post-update store).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (used by the CI
workflow); the ≥5× and differential assertions hold at both scales —
cache hits are O(1) lookups regardless of graph size.
"""

from __future__ import annotations

import os
import re

from repro.experiments.exp_serve import run_serve

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 600,
        "num_edges": 7_200,
        "num_queries": 400,
        "sustained_queries": 1200,
        "seed_pool_size": 80,
        "walk_length": 800,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 2000,
        "num_edges": 24_000,
        "num_queries": 1000,
        "sustained_queries": 3000,
        "seed_pool_size": 150,
        "walk_length": 2000,
        "rng": 42,
    }
)


def test_e_serve(benchmark, once):
    result = once(benchmark, run_serve, **PARAMS)
    rows = {row["mode"]: row for row in result.rows}
    uncached = rows["uncached"]
    cached = rows["cached"]
    batched = rows["cached + batcher"]

    # Differential correctness first — speed means nothing without it:
    # every mode's served answers equal the cache-free same-RNG reference.
    checks = [note for note in result.notes if "differential check" in note]
    assert len(checks) == 3
    for note in checks:
        served, total = re.search(r"(\d+)/(\d+)", note).groups()
        assert served == total, note

    # The headline: >=5x sustained throughput with cache + batcher on vs off.
    assert cached["sustained qps"] >= 5.0 * uncached["sustained qps"]
    assert batched["sustained qps"] >= 5.0 * uncached["sustained qps"]

    # The cache genuinely serves: hot Zipf traffic hits most of the time,
    # and the shared fetch cache slashes store round-trips per query.
    assert cached["hit rate"] > 0.5
    assert cached["store fetches / query"] < uncached["store fetches / query"] / 5
    # The batcher coalesces duplicate in-flight seeds instead of re-walking.
    assert batched["coalesced"] > 0

    print()
    print(result.render())
