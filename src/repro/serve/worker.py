"""Serve-tier worker process: attach, answer batches, swap epochs, heartbeat.

``worker_main`` is the entry point the frontend spawns (start method
``spawn`` — the coordinator owns thread pools, which ``fork`` would
duplicate into undefined states, and spawn also proves the attach path
carries *all* worker state).  Each worker:

1. attaches read-only to the published snapshot generation
   (:func:`~repro.store.persistence.attach_engine` — walk arenas stay
   memory-mapped, shared across workers via the page cache);
2. builds a :class:`~repro.serve.engine.QueryEngine` fronted by a
   :class:`~repro.serve.batcher.RequestBatcher`, so every batch message is
   answered with the same coalescing + one-kernel-per-drain machinery as
   in-process serving — which is exactly why worker answers are
   bit-identical to single-process answers (same derived per-query RNG,
   same arena bits, same kernel);
3. loops on its private request queue: ``batch`` messages produce
   ``result`` responses, ``epoch`` messages re-attach + swap the engine
   between drains (the FIFO queue makes the swap a consistent barrier —
   see :mod:`repro.serve.epochs`), ``stop`` drains out.  When the queue
   is idle for ``heartbeat_interval`` the worker emits a ``heartbeat``
   response instead — the coordinator's supervisor reads receipt times
   (its own clock, so worker clock skew cannot fake liveness) and any
   worker message counts as proof of life, so busy workers need no extra
   heartbeat traffic.

Cross-process payloads are plain picklable data: request batches are
tuples of frozen :class:`~repro.serve.batcher.QueryRequest`, results are
the engine's result dataclasses, errors travel as ``(type_name, message)``
string pairs (exception *instances* with custom ``__init__`` signatures —
:class:`~repro.errors.LoadShedError` — do not survive unpickling), and
spans travel as :meth:`~repro.obs.tracing.Span.to_json` dicts for the
coordinator to graft (:meth:`~repro.obs.tracing.Tracer.graft`).

Both caches are strictly per-process here: the worker's
:class:`~repro.serve.cache.ResultCache` and
:class:`~repro.core.personalized.FetchCache` live in worker memory, keyed
by (and invalidated on) the worker's own arena generation — nothing cache-
shaped ever crosses the queue.

Fault injection: a :class:`~repro.faults.FaultPlan` riding in
``WorkerConfig.fault_plan`` is consulted at the ``worker.batch`` /
``worker.epoch`` / ``worker.heartbeat`` sites (kill = ``os._exit``, i.e.
a real crash with no STOPPED message; delay; drop) and contributes a
static ``worker.clock`` skew to the engine's TTL clock.  ``incarnation``
counts respawns — fault rules default to incarnation 0, so a respawned
worker does not re-run its predecessor's death schedule.
"""

from __future__ import annotations

import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Optional

from repro.faults import DELAY, DROP, KILL, FaultPlan
from repro.serve.batcher import RequestBatcher
from repro.serve.engine import QueryEngine

__all__ = ["WorkerConfig", "worker_main"]

# Response-message tags (worker -> coordinator, one pipe per worker).
READY = "ready"
INIT_ERROR = "init_error"
RESULT = "result"
ERROR = "error"
EPOCH_OK = "epoch_ok"
STOPPED = "stopped"
HEARTBEAT = "heartbeat"

# Request-message tags (coordinator -> per-worker queue).
BATCH = "batch"
EPOCH = "epoch"
STOP = "stop"


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable recipe for a worker's serving stack.

    Mirrors the :class:`~repro.serve.engine.QueryEngine` /
    :class:`~repro.serve.batcher.RequestBatcher` knobs that matter for a
    read-only worker.  ``rng_seed`` and ``use_kernel`` must match the
    single-process engine you compare against — the RNG contract derives
    every walk from ``(rng_seed, seed, length)``, and kernel vs scalar
    walker are different (equally valid) draws.  ``trace=True`` runs the
    worker with a force-enabled tracer and ships finished spans home with
    each batch result.  ``heartbeat_interval`` is the idle period after
    which the worker proves liveness; ``fault_plan`` threads a seeded
    chaos schedule into the loop (tests/benchmarks only).
    """

    rng_seed: int = 0
    result_capacity: int = 4096
    cache_results: bool = True
    share_fetches: bool = True
    use_kernel: bool = True
    alpha: float = 0.77
    c: float = 5.0
    worker_threads: int = 1
    max_queue_depth: int = 1024
    max_kernel_batch: int = 64
    trace: bool = False
    heartbeat_interval: float = 0.5
    fault_plan: Optional[FaultPlan] = None


def _build(snapshot_path, config: WorkerConfig, clock=time.monotonic):
    """Attach a snapshot and stand up the engine + batcher stack."""
    from repro.obs import Tracer
    from repro.store.persistence import attach_engine

    engine = attach_engine(snapshot_path, validate=False)
    tracer = Tracer(enabled=True) if config.trace else None
    query_engine = QueryEngine(
        engine,
        rng_seed=config.rng_seed,
        result_capacity=config.result_capacity,
        cache_results=config.cache_results,
        share_fetches=config.share_fetches,
        use_kernel=config.use_kernel,
        alpha=config.alpha,
        c=config.c,
        tracer=tracer,
        clock=clock,
    )
    batcher = RequestBatcher(
        query_engine,
        max_workers=config.worker_threads,
        max_queue_depth=config.max_queue_depth,
        max_kernel_batch=config.max_kernel_batch,
    )
    return query_engine, batcher


def _drain_spans(query_engine: QueryEngine, config: WorkerConfig) -> list:
    if not config.trace:
        return []
    spans = [span.to_json() for span in query_engine.tracer.spans()]
    query_engine.tracer.clear()
    return spans


def _error_tuple(exc: BaseException) -> tuple:
    return (type(exc).__name__, str(exc))


def worker_main(
    worker_id: int,
    snapshot_path: str,
    generation: int,
    config: WorkerConfig,
    request_queue,
    response_queue,
    incarnation: int = 0,
) -> None:
    """Worker-process message loop (run via ``multiprocessing.Process``).

    Protocol (all messages are tuples tagged by their first element):

    * in  ``(BATCH, batch_id, requests)`` →
      out ``(RESULT, worker_id, batch_id, results, spans)`` or
      ``(ERROR, worker_id, batch_id, (type_name, message))``.
      Shed requests surface as ``None`` results (the batcher's contract).
    * in  ``(EPOCH, epoch_id, generation, snapshot_path)`` →
      out ``(EPOCH_OK, worker_id, epoch_id, generation)`` after the swap,
      or ``(ERROR, worker_id, -epoch_id, ...)`` if the attach failed (the
      worker keeps serving the old generation).  ``epoch_id`` 0 is the
      supervisor's barrier-free re-sync bump for respawned workers.
    * in  ``(STOP,)`` → out ``(STOPPED, worker_id)`` and return.
    * idle ``heartbeat_interval`` with no message →
      out ``(HEARTBEAT, worker_id)``; any other outbound message counts
      as liveness too, so a busy worker never emits these.

    Startup emits ``(READY, worker_id, generation)`` once attached, or
    ``(INIT_ERROR, worker_id, (type_name, message))`` and returns.

    A ``kill`` fault exits via ``os._exit`` — no STOPPED message, no
    ``finally`` — indistinguishable from a real crash, which is the point.

    ``response_queue`` is normally the worker's private end of a
    ``multiprocessing.Pipe``: a per-worker pipe has exactly one writer,
    so a worker dying mid-send corrupts only its own channel (the
    coordinator reads it as EOF).  A shared ``mp.Queue`` would instead
    hand every writer one cross-process ``writelock`` — and a ``kill``
    landing inside the queue's feeder thread leaves that lock held
    forever, wedging every surviving worker and the coordinator itself.
    In-process tests may still pass a ``queue.Queue``; both are accepted.
    """
    _send = (
        response_queue.send
        if hasattr(response_queue, "send")
        else response_queue.put
    )
    plan = config.fault_plan

    def _fire(site: str):
        if plan is None:
            return None
        return plan.fire(site, worker=worker_id, incarnation=incarnation)

    skew = (
        plan.clock_skew(worker=worker_id, incarnation=incarnation)
        if plan is not None
        else 0.0
    )
    clock = (lambda: time.monotonic() + skew) if skew else time.monotonic
    try:
        query_engine, batcher = _build(snapshot_path, config, clock=clock)
    except BaseException as exc:  # noqa: BLE001 - shipped to coordinator
        _send((INIT_ERROR, worker_id, _error_tuple(exc)))
        return
    _send((READY, worker_id, generation))
    current_generation = generation
    try:
        while True:
            try:
                message = request_queue.get(
                    timeout=config.heartbeat_interval
                )
            except queue_module.Empty:
                if _fire("worker.heartbeat") is None:
                    _send((HEARTBEAT, worker_id))
                continue
            tag = message[0]
            if tag == STOP:
                break
            if tag == BATCH:
                rule = _fire("worker.batch")
                if rule is not None:
                    if rule.action == KILL:
                        os._exit(rule.exit_code)
                    if rule.action == DELAY:
                        time.sleep(rule.seconds)
                    elif rule.action == DROP:
                        continue
                _, batch_id, requests = message
                try:
                    results = batcher.run(requests)
                    spans = _drain_spans(query_engine, config)
                    _send(
                        (RESULT, worker_id, batch_id, results, spans)
                    )
                except Exception as exc:  # noqa: BLE001
                    _send(
                        (ERROR, worker_id, batch_id, _error_tuple(exc))
                    )
            elif tag == EPOCH:
                rule = _fire("worker.epoch")
                if rule is not None:
                    if rule.action == KILL:
                        os._exit(rule.exit_code)
                    if rule.action == DELAY:
                        time.sleep(rule.seconds)
                    elif rule.action == DROP:
                        continue
                _, epoch_id, new_generation, new_path = message
                try:
                    from repro.store.persistence import attach_engine

                    fresh = attach_engine(new_path, validate=False)
                    query_engine.swap_engine(fresh)
                    current_generation = new_generation
                    _send(
                        (EPOCH_OK, worker_id, epoch_id, new_generation)
                    )
                except Exception as exc:  # noqa: BLE001
                    # keep serving the old (still-mapped) generation
                    _send(
                        (ERROR, worker_id, -epoch_id, _error_tuple(exc))
                    )
            # unknown tags are dropped: a newer coordinator may speak a
            # superset protocol, and a worker must never wedge on it
    finally:
        batcher.close()
        query_engine.detach()
        _send((STOPPED, worker_id))


def spawn_worker(
    context,
    worker_id: int,
    snapshot_path,
    generation: int,
    config: WorkerConfig,
    request_queue,
    response_queue,
    *,
    incarnation: int = 0,
    name: Optional[str] = None,
):
    """Start (and return) a worker process on ``context`` (spawn)."""
    process = context.Process(
        target=worker_main,
        args=(
            worker_id,
            str(snapshot_path),
            generation,
            config,
            request_queue,
            response_queue,
            incarnation,
        ),
        name=name or f"repro-serve-worker-{worker_id}",
        daemon=True,
    )
    process.start()
    return process
