"""Structured tracing: spans, context propagation, ring sink, JSONL export.

A span is one timed, named unit of work (``kernel.batch``, ``store.fetch``)
with free-form attributes and parent/trace identifiers.  The span taxonomy
for this repo (DESIGN.md §12):

* ``serve.request`` — one submitted request on the per-request path.
* ``serve.drain`` — one batched drain cycle in ``RequestBatcher.run``.
* ``serve.chunk`` — one kernel-sized chunk executed on a pool worker.
* ``kernel.batch`` — one multi-seed query-kernel invocation.
* ``store.fetch`` — one physical node fetch inside the kernel.
* ``scheduler.flush`` — one staleness-scheduler repair flush.

Context propagation uses a :mod:`contextvars` variable, which follows the
synchronous call stack for free; crossing an executor boundary (the
``RequestBatcher`` worker pool, the scheduler's background worker) is
explicit — the submitter captures :meth:`Tracer.current` and the worker
passes it as ``parent=``.  Finished spans land in a thread-safe ring
buffer (:class:`RingSink`) and can be exported as JSON Lines for offline
reconstruction of request paths.

Tracing is enabled when the global ``REPRO_OBS`` level is >= 2 (see
:mod:`repro.obs.profile`) or when the tracer is constructed with
``enabled=True``.  A disabled tracer's :meth:`~Tracer.span` returns a
shared no-op context manager: one branch, no allocation.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

from repro.obs import profile as _profile

__all__ = ["Span", "RingSink", "Tracer", "current_span"]

_ids = itertools.count(1)
_current_span: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread/context, if any."""
    return _current_span.get()


class Span:
    """One timed unit of work.  Created via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attributes",
        "thread",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, object],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.duration = 0.0
        self.attributes = attributes
        self.thread = threading.current_thread().name

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "thread": self.thread,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id}, duration={self.duration:.6f})"
        )


class RingSink:
    """Thread-safe bounded buffer of finished spans (oldest evicted)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """A stable copy of the buffered spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def export_jsonl(self, path) -> int:
        """Write buffered spans as JSON Lines; returns the span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_json()) + "\n")
        return len(spans)


class Tracer:
    """Produces spans into a :class:`RingSink` with context propagation.

    ``enabled=None`` (the default) defers to the global ``REPRO_OBS``
    level; ``True``/``False`` pins the tracer regardless of the level.
    """

    def __init__(
        self,
        sink: Optional[RingSink] = None,
        capacity: int = 4096,
        enabled: Optional[bool] = None,
    ) -> None:
        self.sink = sink if sink is not None else RingSink(capacity)
        self._forced = enabled

    @property
    def enabled(self) -> bool:
        if self._forced is not None:
            return self._forced
        return _profile.get_level() >= _profile.LEVEL_TRACE

    def current(self) -> Optional[Span]:
        """Capture the current span for explicit cross-thread propagation."""
        if not self.enabled:
            return None
        return _current_span.get()

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attributes: object,
    ) -> Iterator[Optional[Span]]:
        """Open a span; yields it (or ``None`` when tracing is disabled).

        The parent is ``parent`` if given, else the innermost open span in
        the current context.  While the block runs, the new span is the
        current context span, so nested calls chain automatically.
        """
        if not self.enabled:
            yield None
            return
        if parent is None:
            parent = _current_span.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = next(_ids)
            parent_id = None
        span = Span(name, trace_id, next(_ids), parent_id, dict(attributes))
        token = _current_span.set(span)
        span.start = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            _current_span.reset(token)
            self.sink.emit(span)

    def start_leaf(
        self, name: str, **attributes: object
    ) -> Optional[Span]:
        """Open a *leaf* span cheaply; close with :meth:`finish_leaf`.

        The hot-path variant of :meth:`span` for spans that never have
        children (``store.fetch``): it skips the generator context
        manager and the contextvar swap, which at thousands of spans per
        batch is most of the tracing cost.  The caller must not open
        descendant spans before finishing it — they would mis-parent to
        this span's parent.  Returns ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        parent = _current_span.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = next(_ids)
            parent_id = None
        # **attributes is already a fresh dict — no defensive copy needed
        span = Span(name, trace_id, next(_ids), parent_id, attributes)
        span.start = time.perf_counter()
        return span

    def finish_leaf(self, span: Optional[Span]) -> None:
        """Close and emit a span opened by :meth:`start_leaf` (None ok)."""
        if span is None:
            return
        span.duration = time.perf_counter() - span.start
        self.sink.emit(span)

    def graft(
        self,
        span_dicts: List[Dict[str, object]],
        parent: Optional[Span] = None,
        origin: Optional[str] = None,
    ) -> int:
        """Re-emit spans exported by *another process* under ``parent``.

        The multi-process serve tier ships finished worker spans home as
        :meth:`Span.to_json` dicts (picklable, no live objects).  Grafting
        assigns them fresh local ids — worker id counters would collide
        with this process's — while preserving their internal parent/child
        structure, and roots any span whose parent is not in the shipped
        set under ``parent`` (or a fresh trace).  ``origin`` (e.g.
        ``"worker-3"``) is stamped on each grafted span's attributes so
        reconstructed request paths show which process ran what.  Span
        ``start`` values are the *source* process's ``perf_counter`` clock
        — durations are comparable across the boundary, absolute starts
        are not.  Returns the number of spans emitted (0 when disabled).
        """
        if not self.enabled or not span_dicts:
            return 0
        if parent is not None:
            trace_id = parent.trace_id
            root_parent = parent.span_id
        else:
            trace_id = next(_ids)
            root_parent = None
        remapped = {raw["span_id"]: next(_ids) for raw in span_dicts}
        for raw in span_dicts:
            attributes = dict(raw.get("attributes") or {})
            if origin is not None:
                attributes["origin"] = origin
            span = Span(
                str(raw["name"]),
                trace_id,
                remapped[raw["span_id"]],
                remapped.get(raw.get("parent_id"), root_parent),
                attributes,
            )
            span.start = float(raw.get("start", 0.0))
            span.duration = float(raw.get("duration", 0.0))
            thread = raw.get("thread")
            if thread is not None:
                span.thread = str(thread)
            self.sink.emit(span)
        return len(span_dicts)

    # ------------------------------------------------------------------
    # Export / inspection
    # ------------------------------------------------------------------

    def spans(self) -> List[Span]:
        return self.sink.spans()

    def clear(self) -> None:
        self.sink.clear()

    def export_jsonl(self, path) -> int:
        return self.sink.export_jsonl(path)

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, buffered={len(self.sink)})"
