"""SALSA by iteration (the paper's §1.1 equations) — reference + Table 1.

Personalized SALSA over seed ``u``:

    h_v = ε·δ_{u,v} + (1−ε) Σ_{x: (v,x)∈E} a_x / indeg(x)
    a_x =             Σ_{v: (v,x)∈E} h_v / outdeg(v)

Global SALSA replaces the ε·δ jump with a uniform ε/n jump.  Both sums are
contraction-friendly (degree-normalized), so no renormalization is needed;
the paper's 10 iterations are the default.  These serve two roles: the
Table-1 contestant ("We performed 10 iterations for each method") and the
reference the Monte Carlo SALSA estimates are validated against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph

__all__ = ["salsa_operators", "global_salsa", "personalized_salsa"]


def salsa_operators(
    graph: DynamicDiGraph,
) -> tuple[scipy.sparse.csr_matrix, scipy.sparse.csr_matrix]:
    """``(forward, backward)`` operators.

    ``forward[x, v] = 1/outdeg(v)`` for each edge ``(v, x)`` — maps hub
    scores to authority scores.  ``backward[v, x] = 1/indeg(x)`` for each
    edge ``(v, x)`` — maps authority scores back to hub scores.
    """
    n = graph.num_nodes
    edges = graph.edge_list()
    if not edges:
        empty = scipy.sparse.csr_matrix((n, n))
        return empty, empty
    sources = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
    targets = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))
    out_degrees = graph.out_degree_array().astype(np.float64)
    in_degrees = graph.in_degree_array().astype(np.float64)
    forward = scipy.sparse.csr_matrix(
        (1.0 / out_degrees[sources], (targets, sources)), shape=(n, n)
    )
    backward = scipy.sparse.csr_matrix(
        (1.0 / in_degrees[targets], (sources, targets)), shape=(n, n)
    )
    return forward, backward


def _iterate(
    hub: np.ndarray,
    jump: np.ndarray,
    reset_probability: float,
    forward: scipy.sparse.csr_matrix,
    backward: scipy.sparse.csr_matrix,
    iterations: int,
) -> tuple[np.ndarray, np.ndarray]:
    authority = np.zeros_like(hub)
    for _ in range(iterations):
        authority = forward @ hub
        hub = reset_probability * jump + (1.0 - reset_probability) * (
            backward @ authority
        )
    return hub, authority


def global_salsa(
    graph: DynamicDiGraph,
    *,
    reset_probability: float = 0.2,
    iterations: int = 10,
    operators: Optional[tuple] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Global SALSA ``(hub, authority)``; authority → indeg/m as ε→0."""
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0), np.zeros(0)
    forward, backward = operators if operators is not None else salsa_operators(graph)
    jump = np.full(n, 1.0 / n)
    return _iterate(
        jump.copy(), jump, reset_probability, forward, backward, iterations
    )


def personalized_salsa(
    graph: DynamicDiGraph,
    seed: int,
    *,
    reset_probability: float = 0.2,
    iterations: int = 10,
    operators: Optional[tuple] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Personalized SALSA ``(hub, authority)`` for ``seed``."""
    n = graph.num_nodes
    if not 0 <= seed < n:
        raise ConfigurationError(f"seed {seed} outside [0, {n})")
    if iterations <= 0:
        raise ConfigurationError(f"iterations must be positive, got {iterations}")
    forward, backward = operators if operators is not None else salsa_operators(graph)
    jump = np.zeros(n, dtype=np.float64)
    jump[seed] = 1.0
    return _iterate(
        jump.copy(), jump, reset_probability, forward, backward, iterations
    )
