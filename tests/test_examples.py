"""Smoke tests: every example script runs to completion.

The CLI-capable examples are shrunk via flags; quickstart runs at its
built-in (already small) size.  Marked slow: a few seconds each.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
def test_quickstart():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "top-5 PageRank" in result.stdout
    assert "database fetches" in result.stdout


@pytest.mark.slow
def test_who_to_follow():
    result = _run(
        "who_to_follow.py", "--nodes", "800", "--edges", "9600", "--users", "2"
    )
    assert result.returncode == 0, result.stderr
    assert "recommendations at t = 100%" in result.stdout
    assert "fetches" in result.stdout


@pytest.mark.slow
def test_batch_ingest():
    result = _run("batch_ingest.py", "--nodes", "500", "--edges", "6000")
    assert result.returncode == 0, result.stderr
    assert "speedup" in result.stdout
    assert "one whole-slice batch" in result.stdout
    assert "pagerank-store traffic" in result.stdout


@pytest.mark.slow
def test_serving():
    result = _run(
        "serving.py", "--nodes", "500", "--edges", "6000", "--queries", "300"
    )
    assert result.returncode == 0, result.stderr
    assert "cache hit" in result.stdout
    assert "results invalidated" in result.stdout
    assert "served ranking == cache-free recompute" in result.stdout
    assert "shed" in result.stdout


@pytest.mark.slow
def test_realtime_maintenance():
    result = _run(
        "realtime_maintenance.py", "--nodes", "400", "--edges", "4800"
    )
    assert result.returncode == 0, result.stderr
    assert "theorem-4 bound" in result.stdout
    assert "estimate quality" in result.stdout


@pytest.mark.slow
def test_observability(tmp_path):
    trace_out = tmp_path / "spans.jsonl"
    result = _run(
        "observability.py",
        "--nodes", "300",
        "--edges", "3600",
        "--queries", "60",
        "--rounds", "3",
        "--trace-out", str(trace_out),
    )
    assert result.returncode == 0, result.stderr
    assert "Prometheus exposition (one registry, every layer)" in result.stdout
    assert "metric families" in result.stdout
    assert "exported" in result.stdout and "spans" in result.stdout
    assert "one drain reconstructed from spans" in result.stdout
    assert "serve.drain" in result.stdout
    assert "kernel.batch" in result.stdout
    assert "store.fetch" in result.stdout
    assert trace_out.exists() and trace_out.stat().st_size > 0


@pytest.mark.slow
def test_capacity_planning():
    result = _run(
        "capacity_planning.py", "--nodes", "600", "--edges", "7200"
    )
    assert result.returncode == 0, result.stderr
    assert "closed-form budget" in result.stdout
    assert "shard load" in result.stdout


@pytest.mark.slow
def test_api_server_self_test():
    """The HTTP façade probes every route against live worker processes."""
    result = _run(
        "api_server.py",
        "--self-test",
        "--nodes", "250",
        "--edges", "2500",
        "--walks", "3",
        "--workers", "2",
    )
    assert result.returncode == 0, result.stderr
    assert "self-test OK" in result.stdout
