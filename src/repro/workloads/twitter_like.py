"""A synthetic Twitter-like evolving network (the FlockDB data substitute).

The paper's experiments need four properties of the edge stream (DESIGN.md
§2): power-law in-degrees (rank exponent < 1), arrivals that look
random-order (Figure 1's two CDFs coincide), users who keep growing their
friend lists over time (Appendix A's protocol), and *locality* — new
follows concentrate in the follower's social neighbourhood, which is what
makes personalized rankers beat global-popularity rankers at link
prediction (Table 1's entire point).  The generator supplies all four:

* **communities** — every user is born into one of ``num_communities``
  interest clusters; a ``community_bias`` fraction of popularity-driven
  follows stay inside the cluster.  Without this, a laptop-sized graph is
  a single global core and every ranker degenerates to popularity.
* **node arrivals** — a new user joins and immediately follows
  ``edges_per_new_node`` targets drawn from the Krapivsky-Redner mixture
  (uniform with probability ``uniform_prob``, else in-degree-proportional)
  over its community's arena (or the global arena with probability
  ``1 − community_bias``).  The mixture yields heavy-tailed in-degrees
  with rank-size exponent well below 1.
* **organic edge arrivals** — an *existing* user (chosen ∝ out-degree + 1:
  active users stay active) follows one more target: with probability
  ``closure_prob`` a friend-of-a-friend (triadic closure, the dominant
  mechanism in measured social-network growth), otherwise the
  community-biased popularity mixture.
* **pacing** — node arrivals are spread over the whole stream, leaving
  every cohort time to grow, exactly the population the Appendix-A
  protocol selects from.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.arrival import ADD, ArrivalEvent, TimestampedStream
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["twitter_like_stream", "twitter_like_graph"]


def twitter_like_stream(
    num_nodes: int,
    target_edges: int,
    *,
    edges_per_new_node: int = 5,
    uniform_prob: float = 0.23,
    closure_prob: float = 0.5,
    num_communities: Optional[int] = None,
    community_bias: float = 0.85,
    seed_nodes: int = 5,
    rng: RngLike = None,
    max_retries: int = 32,
) -> TimestampedStream:
    """Generate the full timestamped edge-arrival history.

    ``num_communities`` defaults to ``max(1, num_nodes // 250)``; pass 1
    to disable community structure (the ablation where link prediction
    degenerates to global popularity).  ``closure_prob`` is the fraction
    of organic edges formed by triadic closure.
    """
    if num_nodes < seed_nodes:
        raise ConfigurationError(
            f"num_nodes={num_nodes} must be at least seed_nodes={seed_nodes}"
        )
    if not 0.0 <= closure_prob <= 1.0:
        raise ConfigurationError(f"closure_prob must be in [0, 1], got {closure_prob}")
    if not 0.0 <= community_bias <= 1.0:
        raise ConfigurationError(
            f"community_bias must be in [0, 1], got {community_bias}"
        )
    min_edges = seed_nodes + (num_nodes - seed_nodes) * 1
    if target_edges < min_edges:
        raise ConfigurationError(
            f"target_edges={target_edges} too small to introduce {num_nodes} nodes"
        )
    if num_communities is None:
        num_communities = max(1, num_nodes // 250)
    if num_communities < 1:
        raise ConfigurationError(
            f"num_communities must be >= 1, got {num_communities}"
        )
    generator = ensure_rng(rng)
    events = list(
        _generate_events(
            num_nodes,
            target_edges,
            edges_per_new_node,
            uniform_prob,
            closure_prob,
            num_communities,
            community_bias,
            seed_nodes,
            generator,
            max_retries,
        )
    )
    return TimestampedStream(num_nodes, events)


def _generate_events(
    num_nodes: int,
    target_edges: int,
    edges_per_new_node: int,
    uniform_prob: float,
    closure_prob: float,
    num_communities: int,
    community_bias: float,
    seed_nodes: int,
    rng: np.random.Generator,
    max_retries: int,
) -> Iterator[ArrivalEvent]:
    existing: set[tuple[int, int]] = set()
    # Per-community target arenas (one entry per unit of in-degree) plus a
    # global arena; source_arena holds every introduced node once plus one
    # entry per out-edge; out_lists is the adjacency for triadic sampling.
    community_of: list[int] = [0] * num_nodes
    community_members: list[list[int]] = [[] for _ in range(num_communities)]
    community_arenas: list[list[int]] = [[] for _ in range(num_communities)]
    global_arena: list[int] = []
    source_arena: list[int] = []
    out_lists: list[list[int]] = [[] for _ in range(num_nodes)]
    introduced = 0
    produced = 0

    def emit(source: int, target: int) -> ArrivalEvent:
        nonlocal produced
        existing.add((source, target))
        global_arena.append(target)
        community_arenas[community_of[target]].append(target)
        source_arena.append(source)
        out_lists[source].append(target)
        produced += 1
        return ArrivalEvent(ADD, source, target, time=produced)

    def introduce(node: int) -> None:
        nonlocal introduced
        community = int(rng.integers(num_communities))
        community_of[node] = community
        community_members[community].append(node)
        source_arena.append(node)
        introduced += 1

    def pick_popularity(source: int) -> Optional[int]:
        """Community-biased Krapivsky-Redner mixture target."""
        community = community_of[source]
        for _ in range(max_retries):
            if rng.random() < community_bias:
                arena = community_arenas[community]
                members = community_members[community]
            else:
                arena = global_arena
                members = None  # uniform over all introduced nodes
            if not arena or rng.random() < uniform_prob:
                if members is not None and members:
                    candidate = members[int(rng.integers(len(members)))]
                else:
                    candidate = int(rng.integers(introduced))
            else:
                candidate = arena[int(rng.integers(len(arena)))]
            if candidate != source and (source, candidate) not in existing:
                return candidate
        return None

    def pick_closure(source: int) -> Optional[int]:
        """A friend-of-a-friend of ``source`` (two uniform hops)."""
        friends = out_lists[source]
        if not friends:
            return None
        for _ in range(max_retries):
            friend = friends[int(rng.integers(len(friends)))]
            second_hop = out_lists[friend]
            if not second_hop:
                continue
            candidate = second_hop[int(rng.integers(len(second_hop)))]
            if candidate != source and (source, candidate) not in existing:
                return candidate
        return None

    # Seed cohort: a small cycle so the very first arrivals have targets.
    for node in range(seed_nodes):
        introduce(node)
    for node in range(seed_nodes):
        yield emit(node, (node + 1) % seed_nodes)

    while produced < target_edges:
        # Pace node arrivals uniformly across the stream.
        due = introduced < num_nodes and (
            produced / target_edges
            >= (introduced - seed_nodes) / max(num_nodes - seed_nodes, 1)
        )
        if due:
            new_node = introduced
            introduce(new_node)
            wanted = min(edges_per_new_node, introduced - 1, target_edges - produced)
            for _ in range(wanted):
                target = pick_popularity(new_node)
                if target is not None:
                    yield emit(new_node, target)
            continue
        source = source_arena[int(rng.integers(len(source_arena)))]
        target = None
        if rng.random() < closure_prob:
            target = pick_closure(source)
        if target is None:
            target = pick_popularity(source)
        if target is not None:
            yield emit(source, target)


def twitter_like_graph(
    num_nodes: int,
    target_edges: int,
    *,
    edges_per_new_node: int = 5,
    uniform_prob: float = 0.23,
    closure_prob: float = 0.5,
    num_communities: Optional[int] = None,
    community_bias: float = 0.85,
    rng: RngLike = None,
) -> DynamicDiGraph:
    """Materialize the final graph of a twitter-like stream."""
    stream = twitter_like_stream(
        num_nodes,
        target_edges,
        edges_per_new_node=edges_per_new_node,
        uniform_prob=uniform_prob,
        closure_prob=closure_prob,
        num_communities=num_communities,
        community_bias=community_bias,
        rng=rng,
    )
    return stream.snapshot_at(len(stream))
