"""The Appendix-A link-prediction protocol (Table 1).

Paper protocol, reproduced step by step on the synthetic stream:

1. Take the network at two dates (here: two arrival-prefix snapshots).
2. Select random users who, at date A, had 20–30 friends, and who grew
   their friend count by 50–100% by date B — counting only new friends who
   already *existed* at date A and were "reasonably followed" there
   (≥ 10 followers).
3. For each selected user, rank candidates using only the date-A network,
   and count how many of the actually-made friendships appear in the
   top-100 / top-1000 predictions (averaged over users).

Predictions must exclude the seed and its date-A friends — a recommender
never surfaces existing friendships, and the actual new friends are by
construction non-friends at date A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.precision import capture_count
from repro.errors import ConfigurationError
from repro.graph.arrival import TimestampedStream
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "LinkPredictionCase",
    "build_link_prediction_workload",
    "evaluate_rankers",
    "rank_from_scores",
]

#: A ranker maps (graph_at_date_A, seed) -> candidate nodes, best first.
Ranker = Callable[[DynamicDiGraph, int], Sequence[int]]


@dataclass(frozen=True)
class LinkPredictionCase:
    """One evaluation user: the seed and the friendships they later made."""

    user: int
    friends_at_a: frozenset[int]
    new_friends: frozenset[int]


def build_link_prediction_workload(
    stream: TimestampedStream,
    *,
    snapshot_a: float = 0.5,
    snapshot_b: float = 1.0,
    friends_min: int = 15,
    friends_max: int = 40,
    growth_min: float = 0.5,
    growth_max: float = 1.0,
    min_followers: int = 5,
    max_users: int = 100,
    rng: RngLike = None,
) -> tuple[DynamicDiGraph, list[LinkPredictionCase]]:
    """Materialize date-A graph and the selected evaluation cases.

    ``snapshot_a``/``snapshot_b`` are fractions of the stream length (the
    "two dates").  Returns ``(graph_a, cases)``; ``graph_b`` is only needed
    transiently to diff friend lists.

    Default thresholds are scale adaptations of the paper's (friends 20–30,
    ≥10 followers, growth 50–100%): a 10⁴-node synthetic graph is ~10⁴×
    smaller than Twitter, so the friend band is widened to 15–40 and the
    follower filter relaxed to ≥5 to keep ~100 users selectable while the
    growth band stays the paper's [0.5, 1.0].  EXPERIMENTS.md records the
    values used per run.
    """
    if not 0.0 < snapshot_a < snapshot_b <= 1.0:
        raise ConfigurationError(
            f"need 0 < snapshot_a < snapshot_b <= 1, got {snapshot_a}, {snapshot_b}"
        )
    cut_a = int(len(stream) * snapshot_a)
    cut_b = int(len(stream) * snapshot_b)
    graph_a = stream.snapshot_at(cut_a)
    graph_b = stream.snapshot_at(cut_b)

    cases: list[LinkPredictionCase] = []
    for user in graph_a.nodes():
        friends_a = set(graph_a.out_view(user))
        if not friends_min <= len(friends_a) <= friends_max:
            continue
        eligible_new = frozenset(
            friend
            for friend in graph_b.out_view(user)
            if friend not in friends_a
            and _existed_at(graph_a, friend)
            and graph_a.in_degree(friend) >= min_followers
        )
        growth = len(eligible_new) / len(friends_a)
        if growth_min <= growth <= growth_max:
            cases.append(
                LinkPredictionCase(
                    user=user,
                    friends_at_a=frozenset(friends_a),
                    new_friends=eligible_new,
                )
            )

    if len(cases) > max_users:
        generator = ensure_rng(rng)
        picks = generator.choice(len(cases), size=max_users, replace=False)
        cases = [cases[int(index)] for index in sorted(picks)]
    return graph_a, cases


def _existed_at(graph: DynamicDiGraph, node: int) -> bool:
    """A node "exists" at a snapshot if it has any incident edge there."""
    return graph.out_degree(node) > 0 or graph.in_degree(node) > 0


def rank_from_scores(
    scores: np.ndarray, *, exclude: Iterable[int], top: int
) -> list[int]:
    """Dense score vector → ranked candidate list minus excluded nodes."""
    banned = set(exclude)
    order = np.argsort(-scores)
    ranked: list[int] = []
    for node in order:
        node = int(node)
        if node in banned or scores[node] <= 0:
            continue
        ranked.append(node)
        if len(ranked) >= top:
            break
    return ranked


def evaluate_rankers(
    graph_a: DynamicDiGraph,
    cases: Sequence[LinkPredictionCase],
    rankers: Mapping[str, Ranker],
    *,
    tops: tuple[int, ...] = (100, 1000),
) -> dict[str, dict[int, float]]:
    """Table 1: average capture counts per ranker per cutoff.

    Each ranker is called once per case on the date-A graph; its ranked
    list is matched against the case's actually-made friendships.
    """
    if not cases:
        raise ConfigurationError("no evaluation cases supplied")
    table: dict[str, dict[int, float]] = {}
    for name, ranker in rankers.items():
        sums = {top: 0.0 for top in tops}
        for case in cases:
            predictions = list(ranker(graph_a, case.user))
            for top in tops:
                sums[top] += capture_count(
                    predictions, case.new_friends, top=top
                )
        table[name] = {top: sums[top] / len(cases) for top in tops}
    return table
