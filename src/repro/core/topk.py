"""Top-k personalized queries (§3.2).

The paper's observation: applications never need the full personalized
vector — only its top ``k`` entries.  Under the power-law model the walk
length needed so each of the true top ``k`` is seen ``c`` times in
expectation is ``s_k`` (Equation 4), and the fetch cost of that walk is
bounded by Corollary 9.  This module packages the query: size the walk,
run it, rank, and report both the measured and the theoretical fetch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import theory
from repro.core.personalized import FetchCache, PersonalizedPageRank
from repro.errors import ConfigurationError
from repro.rng import RngLike

__all__ = [
    "TopKResult",
    "top_k_dense",
    "top_k_personalized",
    "walk_length_for_top_k",
]


def top_k_dense(scores: np.ndarray, k: int) -> list[tuple[int, float]]:
    """The ``k`` highest-scoring nodes of a dense vector, ties by node id.

    The one ranking rule every dense-score ``top`` in this repository
    uses (:meth:`IncrementalPageRank.top`, :meth:`MonteCarloPageRank.top`,
    :meth:`IncrementalSALSA.top_authorities`), extracted so it cannot
    drift: ``argpartition`` alone picks arbitrary members among equal
    scores at the cut boundary, so the candidate set is widened to every
    node tied with the k-th score before the (stable, ascending-id input)
    sort — O(n + m log m), deterministic across runs and platforms.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    scores = np.asarray(scores)
    if k >= len(scores):
        order = np.argsort(-scores, kind="stable")
        return [(int(node), float(scores[node])) for node in order]
    boundary = scores[np.argpartition(-scores, k - 1)[k - 1]]
    candidates = np.flatnonzero(scores >= boundary)
    order = candidates[np.argsort(-scores[candidates], kind="stable")]
    return [(int(node), float(scores[node])) for node in order[:k]]


def walk_length_for_top_k(
    k: int, num_nodes: int, alpha: float, c: float = 5.0
) -> int:
    """Integer walk length from Equation 4 (rounded up, at least ``k``)."""
    length = theory.eq4_walk_length(k, num_nodes, alpha, c)
    return max(int(length) + 1, k)


@dataclass
class TopKResult:
    """Top-``k`` personalized ranking with its cost accounting."""

    seed: int
    k: int
    #: ``(node, visits)`` pairs, highest first; equal visit counts are
    #: broken by ascending node id (see :meth:`StitchedWalkResult.top`), so
    #: rankings are deterministic and cacheable.
    ranking: list[tuple[int, int]]
    walk_length: int
    fetches: int
    fetch_bound: float
    alpha: float
    c: float

    @property
    def nodes(self) -> list[int]:
        return [node for node, _ in self.ranking]

    @property
    def within_bound(self) -> bool:
        return self.fetches <= self.fetch_bound


def top_k_personalized(
    engine: PersonalizedPageRank,
    seed: int,
    k: int,
    *,
    alpha: float = 0.77,
    c: float = 5.0,
    exclude_friends: bool = True,
    length: Optional[int] = None,
    rng: RngLike = None,
    fetch_cache: Optional[FetchCache] = None,
) -> TopKResult:
    """Find the ``k`` nodes with highest personalized PageRank for ``seed``.

    ``alpha`` is the power-law exponent assumed for this seed's personalized
    vector (§3.1; measure it with
    :func:`repro.analysis.power_law.fit_rank_exponent` when unknown).
    ``length`` overrides the Equation-4 walk length when given.
    ``fetch_cache`` lets repeated queries share fetched node states (the
    reported ``fetches`` then counts only actual store fetches).
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    num_nodes = engine.store.social_store.num_nodes
    walk_length = (
        length
        if length is not None
        else walk_length_for_top_k(k, num_nodes, alpha, c)
    )
    before = engine.store.fetch_count
    walk = engine.top_k(
        seed,
        k,
        walk_length,
        exclude_seed=True,
        exclude_friends=exclude_friends,
        rng=rng,
        fetch_cache=fetch_cache,
    )
    fetches = engine.store.fetch_count - before
    walks_per_node = max(len(engine.store.walks.segments_starting_at(seed)), 1)
    return TopKResult(
        seed=seed,
        k=k,
        ranking=walk.top(k),
        walk_length=walk_length,
        fetches=fetches,
        fetch_bound=theory.cor9_topk_fetch_bound(k, alpha, c, walks_per_node),
        alpha=alpha,
        c=c,
    )
