"""IR metrics for the retrieval experiments (Figure 5, Table 1).

Figure 5 plots the **11-point interpolated average precision** curve
(Manning et al., IR book §8.4): for recall levels 0.0, 0.1, …, 1.0, the
interpolated precision is the *maximum* precision attained at any recall
≥ that level, averaged over query users.

Table 1 counts, per user, how many of the new friendships actually made
between two snapshots appear in a predictor's top-100 / top-1000 list
(:func:`capture_count`), averaged over users.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "precision_recall_points",
    "interpolated_precision_11pt",
    "average_precision_11pt",
    "capture_count",
    "RECALL_LEVELS",
]

RECALL_LEVELS = np.linspace(0.0, 1.0, 11)


def precision_recall_points(
    retrieved: Sequence[int], relevant: Iterable[int]
) -> tuple[np.ndarray, np.ndarray]:
    """(recall, precision) after each retrieved item, in rank order."""
    relevant_set = set(relevant)
    if not relevant_set:
        raise ConfigurationError("relevant set must be non-empty")
    hits = 0
    recalls = np.zeros(len(retrieved))
    precisions = np.zeros(len(retrieved))
    for rank, item in enumerate(retrieved, start=1):
        if item in relevant_set:
            hits += 1
        recalls[rank - 1] = hits / len(relevant_set)
        precisions[rank - 1] = hits / rank
    return recalls, precisions


def interpolated_precision_11pt(
    retrieved: Sequence[int], relevant: Iterable[int]
) -> np.ndarray:
    """Interpolated precision at the 11 standard recall levels.

    ``p_interp(r) = max { precision(r') : r' ≥ r }``; recall levels never
    reached get interpolated precision 0.
    """
    recalls, precisions = precision_recall_points(retrieved, relevant)
    result = np.zeros(11)
    for index, level in enumerate(RECALL_LEVELS):
        mask = recalls >= level - 1e-12
        result[index] = precisions[mask].max() if mask.any() else 0.0
    return result


def average_precision_11pt(
    runs: Iterable[tuple[Sequence[int], Iterable[int]]]
) -> np.ndarray:
    """Average the 11-point curve over ``(retrieved, relevant)`` pairs."""
    curves = [interpolated_precision_11pt(ret, rel) for ret, rel in runs]
    if not curves:
        raise ConfigurationError("no runs supplied")
    return np.mean(np.stack(curves), axis=0)


def capture_count(
    predictions: Sequence[int], actual: Iterable[int], *, top: int
) -> int:
    """How many of ``actual`` appear among the first ``top`` predictions."""
    if top <= 0:
        raise ConfigurationError(f"top must be positive, got {top}")
    actual_set = set(actual)
    return sum(1 for item in list(predictions)[:top] if item in actual_set)
