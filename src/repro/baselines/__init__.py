"""Baselines the paper compares against (and exact references for tests).

* :mod:`power_iteration` — Equation (1) power iteration, personalized
  variants, and exact sparse linear-solve references.
* :mod:`monte_carlo_static` — the naive rebuild-per-arrival Monte Carlo
  strawman (the Ω(mn/ε) row of the paper's cost comparisons).
* :mod:`hits`, :mod:`cosine`, :mod:`salsa_iterative` — the Appendix-A
  link-prediction contestants.
"""

from repro.baselines.cosine import cosine_scores
from repro.baselines.hits import hits_scores, personalized_hits
from repro.baselines.monte_carlo_static import NaiveMonteCarloRebuild
from repro.baselines.power_iteration import (
    PowerIterationResult,
    exact_pagerank,
    exact_personalized_pagerank,
    power_iteration_pagerank,
)
from repro.baselines.salsa_iterative import global_salsa, personalized_salsa

__all__ = [
    "PowerIterationResult",
    "power_iteration_pagerank",
    "exact_pagerank",
    "exact_personalized_pagerank",
    "NaiveMonteCarloRebuild",
    "hits_scores",
    "personalized_hits",
    "cosine_scores",
    "global_salsa",
    "personalized_salsa",
]
