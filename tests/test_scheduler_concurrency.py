"""Background repair thread vs. concurrent queries: the torn-read battery.

A background :class:`StalenessScheduler` rewrites arena memory while
kernel queries hold zero-copy views — the exact failure mode the
scheduler's readers-writer lock exists to prevent.  These tests hammer
that seam: a mutator thread streams deferrals (triggering background
budget repairs), a pool of query threads runs ``ppr`` / ``run_batch`` /
``RequestBatcher`` drains the whole time, and every answer is checked
against the walk identities that any *consistent* store state satisfies
(a torn read yields nonsense counts long before it yields a crash).
Then: stats attribution adds up, and shutdown is clean — the worker is
non-daemon, joined, and the queue drains on close.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.core.scheduler import StalenessScheduler
from repro.graph.arrival import ADD, REMOVE, ArrivalEvent
from repro.serve.batcher import QueryRequest, RequestBatcher
from repro.serve.engine import QueryEngine
from repro.serve.stats import ServeStats
from repro.workloads.twitter_like import twitter_like_graph

NUM_NODES = 120
NUM_EDGES = 800
WALK_LENGTH = 300


def build_engine(seed: int = 5, backend: str = "columnar") -> IncrementalPageRank:
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    return IncrementalPageRank.from_graph(
        graph, walks_per_node=3, rng=seed + 1, store_backend=backend
    )


def assert_walk_consistent(walk, length: int) -> None:
    """Identities every walk on a *consistent* store satisfies.

    The stitched walk contract: at least ``length`` visits (stitching may
    overshoot by a segment tail), every visit accounted in the counter,
    and the step bookkeeping — seed visit + segment steps + plain steps +
    resets — summing exactly to the realized length.  A walk that read a
    half-repaired arena breaks these long before anything crashes.
    """
    assert walk.length >= length
    assert sum(walk.visit_counts.values()) == walk.length
    assert 1 + walk.segment_steps + walk.plain_steps + walk.resets == walk.length
    assert all(count > 0 for count in walk.visit_counts.values())
    assert walk.fetches + walk.cached_fetches >= 1
    assert 0 <= walk.seed < NUM_NODES


def mutation_stream(sched, seed: int, count: int):
    """Deterministic toggle stream against the scheduler's logical view."""
    driver = np.random.default_rng(seed)
    for _ in range(count):
        u = int(driver.integers(NUM_NODES))
        v = int(driver.integers(NUM_NODES))
        if u == v:
            continue
        kind = REMOVE if sched.has_edge(u, v) else ADD
        yield ArrivalEvent(kind, u, v)


@pytest.mark.parametrize("backend", ["columnar", "sharded:3"])
def test_background_repair_vs_concurrent_queries(backend):
    """Queries stay consistent while the worker repairs under them."""
    engine = build_engine(seed=5, backend=backend)
    stats = ServeStats()
    sched = StalenessScheduler(
        engine,
        staleness_budget=0.02,
        repair="coalesce",
        background=True,
        stats=stats,
    )
    qe = QueryEngine(
        engine, rng_seed=3, scheduler=sched, stats=stats, cache_results=False
    )
    errors: list[BaseException] = []
    stop = threading.Event()

    def query_worker(worker_seed: int) -> int:
        driver = np.random.default_rng(worker_seed)
        answered = 0
        try:
            while not stop.is_set():
                qseed = int(driver.integers(NUM_NODES))
                walk = qe.ppr(qseed, WALK_LENGTH)
                assert_walk_consistent(walk, WALK_LENGTH)
                answered += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
        return answered

    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(query_worker, 100 + w) for w in range(4)]
        for event in mutation_stream(sched, seed=9, count=400):
            sched.apply(event)
        stop.set()
        answered = sum(future.result() for future in futures)
    sched.close()
    if errors:
        raise errors[0]
    assert answered > 0
    assert sched.pending_events == 0
    assert stats.repairs >= 1, "budget never woke the worker"
    # post-close the store must be fully consistent
    engine.walks.check_invariants()


def test_run_batch_and_batcher_under_background_repair():
    engine = build_engine(seed=21)
    sched = StalenessScheduler(
        engine, staleness_budget=0.02, repair="coalesce", background=True
    )
    qe = QueryEngine(engine, rng_seed=1, scheduler=sched)
    errors: list[BaseException] = []
    stop = threading.Event()

    def mutator() -> None:
        try:
            for event in mutation_stream(sched, seed=31, count=300):
                sched.apply(event)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    thread = threading.Thread(target=mutator)
    thread.start()
    with RequestBatcher(qe, max_workers=3) as batcher:
        driver = np.random.default_rng(55)
        drains = 0
        while not stop.is_set() or drains < 3:
            requests = [
                QueryRequest(
                    kind="ppr",
                    seed=int(driver.integers(NUM_NODES)),
                    length=WALK_LENGTH,
                )
                for _ in range(8)
            ]
            for walk in batcher.run(requests):
                assert walk is not None
                assert_walk_consistent(walk, WALK_LENGTH)
            drains += 1
    thread.join()
    sched.close()
    if errors:
        raise errors[0]
    assert drains >= 3
    engine.walks.check_invariants()


def test_stats_attribution_adds_up():
    """Every deferral and repair is billed exactly once."""
    engine = build_engine(seed=7)
    stats = ServeStats()
    sched = StalenessScheduler(
        engine, staleness_budget=0.05, repair="coalesce", stats=stats
    )
    qe = QueryEngine(engine, rng_seed=2, scheduler=sched, stats=stats)
    deferred = 0
    for event in mutation_stream(sched, seed=13, count=120):
        sched.apply(event)
        deferred += 1
    driver = np.random.default_rng(77)
    for _ in range(30):
        qe.ppr(int(driver.integers(NUM_NODES)), WALK_LENGTH)
    sched.flush()
    snap = stats.snapshot()
    assert snap["queries"] == snap["hits"] + snap["misses"] == 30
    assert snap["deferred_events"] == deferred
    # every deferred event was repaired by exactly one flush
    assert snap["repaired_events"] == deferred
    assert snap["repairs"] == snap["budget_repairs"] + snap["read_repairs"] + (
        sched.flushes - snap["budget_repairs"] - snap["read_repairs"]
    )
    assert snap["repairs"] == sched.flushes
    assert snap["stale_depth"] == 0
    assert snap["max_stale_depth"] >= 1
    assert stats.max_repair_latency >= 0.0
    assert stats.repair_latency_percentile(0.5) >= 0.0
    sched.close()
    qe.detach()


def test_clean_shutdown_joins_worker_and_drains_queue():
    engine = build_engine(seed=3)
    reference = build_engine(seed=3)
    sched = StalenessScheduler(
        engine, staleness_budget=np.inf, repair="replay", background=True
    )
    worker = sched._thread
    assert worker is not None
    assert worker.daemon is False, "a daemon worker can die mid-rewrite"
    assert worker.is_alive()
    events = list(mutation_stream(sched, seed=61, count=25))
    for event in events:
        sched.apply(event)
    assert sched.pending_events == len(events)
    sched.close()
    assert not worker.is_alive(), "close() must join the worker"
    assert sched.pending_events == 0, "close() must flush the remainder"
    # the final flush applied everything, identically to an eager twin
    for event in events:
        reference.apply(event)
    assert engine.pagerank().tobytes() == reference.pagerank().tobytes()
    assert threading.active_count() < 10, "worker threads leaked"


def test_close_without_flush_discards_nothing_silently():
    """flush_pending=False is explicit: the queue is dropped, visibly."""
    engine = build_engine(seed=15)
    sched = StalenessScheduler(
        engine, staleness_budget=np.inf, background=True
    )
    for event in mutation_stream(sched, seed=71, count=5):
        sched.apply(event)
    before = engine.graph.edge_list()
    sched.close(flush_pending=False)
    assert engine.graph.edge_list() == before, "discard must not half-apply"
    assert not sched._thread.is_alive()


def test_concurrent_flush_calls_serialize():
    """Racing flushes apply the queue exactly once between them."""
    engine = build_engine(seed=17)
    reference = build_engine(seed=17)
    sched = StalenessScheduler(engine, staleness_budget=np.inf, repair="replay")
    events = list(mutation_stream(sched, seed=81, count=30))
    for event in events:
        sched.apply(event)
    reports = []
    with ThreadPoolExecutor(max_workers=6) as pool:
        futures = [pool.submit(sched.flush) for _ in range(6)]
        reports = [future.result() for future in futures]
    applied = [report for report in reports if report is not None]
    assert len(applied) == 1, "exactly one racer should win the queue"
    assert applied[0].num_events == len(events)
    for event in events:
        reference.apply(event)
    assert engine.pagerank().tobytes() == reference.pagerank().tobytes()
    sched.close()
