"""Algorithm 1 (stitched personalized walks) and fetch accounting (§3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_iteration import exact_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.theory import thm8_fetch_bound
from repro.errors import ConfigurationError
from repro.store.pagerank_store import FETCH_SAMPLED_EDGE, PageRankStore
from repro.store.social_store import SocialStore


@pytest.fixture
def social_graph():
    """A graph with *forward* reachability.

    Pure preferential attachment only points new→old, so a personalized
    walk's reachable closure is a handful of nodes; the twitter-like
    stream's organic edges (old users following newer ones) make seeds
    explore widely — the regime §3 is about.
    """
    from repro.workloads.twitter_like import twitter_like_graph

    return twitter_like_graph(400, 4000, rng=77)


@pytest.fixture
def engine(social_graph):
    return IncrementalPageRank.from_graph(
        social_graph, reset_probability=0.2, walks_per_node=10, rng=101
    )


class TestStitchedWalk:
    def test_walk_reaches_length(self, engine):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=1)
        walk = ppr.stitched_walk(5, 4000)
        assert walk.length >= 4000
        assert sum(walk.visit_counts.values()) == walk.length

    def test_estimates_personalized_pagerank(self, engine, social_graph):
        """Visit frequencies of a long stitched walk must approximate the
        exact personalized PageRank vector (Lemma 7 territory)."""
        seed = 17
        exact = exact_pagerank(social_graph, reset_probability=0.2, personalize=seed)
        exact = exact / exact.sum()  # dangling-absorbed: renormalize
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=2)
        walk = ppr.stitched_walk(seed, 150_000)
        estimate = walk.frequencies(social_graph.num_nodes)
        heavy = exact > 5e-4
        assert heavy.sum() > 20
        relative = np.abs(estimate[heavy] - exact[heavy]) / exact[heavy]
        assert np.median(relative) < 0.25
        correlation = np.corrcoef(estimate[heavy], exact[heavy])[0, 1]
        assert correlation > 0.97

    def test_fetches_far_below_walk_length(self, engine):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=3)
        walk = ppr.stitched_walk(5, 20_000)
        assert walk.fetches < 20_000 / 10

    def test_stitching_beats_crude_walk(self, engine):
        """With segments disabled every newly visited node costs a fetch;
        stitching must use strictly fewer (Remark 2's comparison)."""
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=4)
        with_segments = ppr.stitched_walk(9, 10_000, use_segments=True)
        crude = ppr.stitched_walk(9, 10_000, use_segments=False)
        assert with_segments.fetches < crude.fetches

    def test_fetch_count_matches_store_stats(self, engine):
        store = engine.pagerank_store
        before = store.fetch_count
        ppr = PersonalizedPageRank(store, rng=5)
        walk = ppr.stitched_walk(2, 5000)
        assert store.fetch_count - before == walk.fetches

    def test_walk_composition_accounts_for_length(self, engine):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=6)
        walk = ppr.stitched_walk(3, 5000)
        # every visit is the start, a reset, a segment step, or a plain step
        assert 1 + walk.resets + walk.segment_steps + walk.plain_steps == walk.length

    def test_deterministic_given_rng(self, engine):
        a = PersonalizedPageRank(engine.pagerank_store, rng=7).stitched_walk(4, 3000)
        b = PersonalizedPageRank(engine.pagerank_store, rng=7).stitched_walk(4, 3000)
        assert a.visit_counts == b.visit_counts
        assert a.fetches == b.fetches

    def test_bad_length(self, engine):
        ppr = PersonalizedPageRank(engine.pagerank_store)
        with pytest.raises(ConfigurationError):
            ppr.stitched_walk(0, 0)

    def test_bad_eps(self, engine):
        with pytest.raises(ConfigurationError):
            PersonalizedPageRank(engine.pagerank_store, reset_probability=0.0)


class TestThm8Bound:
    def test_fetches_within_theoretical_bound(self, engine, social_graph):
        """Figure 6's claim: measured fetches sit below the Theorem-8 curve
        (using the graph's own fitted exponent)."""
        from repro.analysis.power_law import fit_rank_exponent

        exact = exact_pagerank(social_graph, reset_probability=0.2, personalize=23)
        alpha = fit_rank_exponent(exact, min_rank=5, max_rank=150).alpha
        alpha = min(max(alpha, 0.3), 0.95)
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=8)
        for length in (500, 2000, 8000):
            fetches = np.mean(
                [
                    ppr.stitched_walk(23, length, rng=seed).fetches
                    for seed in range(5)
                ]
            )
            bound = thm8_fetch_bound(
                length, social_graph.num_nodes, engine.walks_per_node, alpha
            )
            # n=300 is tiny for the asymptotic bound; allow 2x slack but the
            # shape (fetches ≪ steps, growing sublinearly) must hold
            assert fetches < 2 * bound + engine.num_nodes


class TestTopK:
    def test_exclusions(self, engine, social_graph):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=9)
        seed = 31
        walk = ppr.top_k(seed, 10, 5000, exclude_seed=True, exclude_friends=True)
        banned = {seed, *social_graph.out_view(seed)}
        assert all(node not in banned for node, _ in walk.top(10))

    def test_top_ranks_by_visits(self, engine):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=10)
        walk = ppr.stitched_walk(6, 5000)
        top = walk.top(20)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_scores_vector(self, engine, social_graph):
        ppr = PersonalizedPageRank(engine.pagerank_store, rng=11)
        scores = ppr.scores(8, 3000)
        assert scores.shape == (social_graph.num_nodes,)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)


class TestSampledEdgeMode:
    def test_remark1_mode_works(self, social_graph):
        """Remark 1: fetches may return a single sampled edge instead of
        the full adjacency; the walk must still work."""
        store = PageRankStore(
            SocialStore.of_graph(social_graph), fetch_mode=FETCH_SAMPLED_EDGE
        )
        engine = IncrementalPageRank(
            social_store=store.social_store,
            walks_per_node=5,
            rng=12,
            pagerank_store=store,
        )
        engine.initialize()
        ppr = PersonalizedPageRank(store, rng=13)
        walk = ppr.stitched_walk(5, 3000)
        assert walk.length >= 3000
        assert walk.fetches > 0
