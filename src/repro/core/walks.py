"""Walk segments, the walk store, and scalar walk simulation.

A *walk segment* ``[x₀, …, x_k]`` (paper §2.1) is one random-surfer session:
steps were taken at ``x₀ … x_{k−1}`` and the segment ended at ``x_k`` —
either because the ε-coin came up "reset" (:data:`END_RESET`) or because
``x_k`` had no out-edges after the coin came up "continue"
(:data:`END_DANGLING`; the pending step resumes if ``x_k`` ever gains an
out-edge).  These semantics are normative — see DESIGN.md §5.

:class:`WalkStore` owns all segments plus the inverted *visit index* the
incremental algorithms live on:

* ``X(v)`` — total visits to ``v`` over all segments (the paper's ``X_v``),
* ``W(v)`` — number of distinct segments visiting ``v`` (the paper's
  counter used in the activation probability ``1 − (1 − 1/d(v))^{W(v)}``),
* ``visits_of(v)`` — which segments visit ``v`` and how often, so an edge
  arrival touches only the segments that can possibly need a reroute.

SALSA reuses the same store with ``track_sides=True``: each segment carries
a ``parity_offset`` and position ``p`` of a segment counts toward side
``(p + parity_offset) % 2`` (0 = hub visit, 1 = authority visit).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import WalkStateError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "END_RESET",
    "END_DANGLING",
    "WalkSegment",
    "WalkStore",
    "simulate_reset_walk",
    "default_max_steps",
]

#: Segment ended because the ε-coin came up "reset".
END_RESET = 0
#: Segment ended at a node with no out-edges, with "continue" already decided.
END_DANGLING = 1

SIDE_HUB = 0
SIDE_AUTHORITY = 1


def default_max_steps(reset_probability: float) -> int:
    """Safety cap on segment length (P(exceed) < 1e-40 for sane ε)."""
    return max(1000, int(50.0 / reset_probability))


class WalkSegment:
    """One stored random-walk session."""

    __slots__ = ("nodes", "end_reason", "parity_offset")

    def __init__(
        self, nodes: list[int], end_reason: int, parity_offset: int = 0
    ) -> None:
        if not nodes:
            raise WalkStateError("a walk segment must contain at least its source")
        if end_reason not in (END_RESET, END_DANGLING):
            raise WalkStateError(f"unknown end_reason {end_reason!r}")
        self.nodes = nodes
        self.end_reason = end_reason
        self.parity_offset = parity_offset

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def last(self) -> int:
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.nodes)

    def step_positions_at(self, node: int) -> list[int]:
        """Positions where this segment *took a step* out of ``node``.

        The final position is excluded: no step was taken there (the walk
        reset or is dangling-pending).
        """
        return [
            position
            for position, visited in enumerate(self.nodes[:-1])
            if visited == node
        ]

    def side_of(self, position: int) -> int:
        """Hub/authority side of ``position`` (SALSA bookkeeping)."""
        return (position + self.parity_offset) % 2

    def __repr__(self) -> str:
        reason = "RESET" if self.end_reason == END_RESET else "DANGLING"
        return f"WalkSegment({self.nodes!r}, {reason})"


class WalkStore:
    """All stored segments plus the inverted visit index and counters."""

    def __init__(self, num_nodes: int = 0, *, track_sides: bool = False) -> None:
        self.segments: list[Optional[WalkSegment]] = []
        self.segments_of: list[list[int]] = [[] for _ in range(num_nodes)]
        # visit index: node -> {segment id -> number of visits}
        self._visits: list[dict[int, int]] = [{} for _ in range(num_nodes)]
        self._visit_count: list[int] = [0] * num_nodes
        self.track_sides = track_sides
        self._side_count: list[list[int]] = (
            [[0] * num_nodes, [0] * num_nodes] if track_sides else [[], []]
        )
        self.total_visits = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._visits)

    @property
    def num_segments(self) -> int:
        return sum(1 for segment in self.segments if segment is not None)

    def ensure_node(self, node: int) -> None:
        while node >= self.num_nodes:
            self.segments_of.append([])
            self._visits.append({})
            self._visit_count.append(0)
            if self.track_sides:
                self._side_count[0].append(0)
                self._side_count[1].append(0)

    # ------------------------------------------------------------------
    # Index maintenance primitives
    # ------------------------------------------------------------------

    def _index_range(
        self, segment_id: int, segment: WalkSegment, start: int, sign: int
    ) -> None:
        """Add (+1) or remove (−1) index entries for positions ≥ ``start``."""
        visits = self._visits
        count = self._visit_count
        for position in range(start, len(segment.nodes)):
            node = segment.nodes[position]
            bucket = visits[node]
            updated = bucket.get(segment_id, 0) + sign
            if updated:
                bucket[segment_id] = updated
            else:
                del bucket[segment_id]
            count[node] += sign
            if self.track_sides:
                self._side_count[segment.side_of(position)][node] += sign
        self.total_visits += sign * (len(segment.nodes) - start)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def add_segment(self, segment: WalkSegment) -> int:
        """Register a fresh segment; returns its id."""
        self.ensure_node(max(segment.nodes))
        segment_id = len(self.segments)
        self.segments.append(segment)
        self.segments_of[segment.source].append(segment_id)
        self._index_range(segment_id, segment, 0, +1)
        return segment_id

    def get(self, segment_id: int) -> WalkSegment:
        segment = self.segments[segment_id]
        if segment is None:
            raise WalkStateError(f"segment {segment_id} has been removed")
        return segment

    def replace_suffix(
        self,
        segment_id: int,
        keep_until: int,
        new_suffix: list[int],
        end_reason: int,
    ) -> None:
        """Rewrite a segment as ``nodes[:keep_until+1] + new_suffix``.

        ``keep_until`` is the last preserved position.  The visit index and
        all counters are updated incrementally — only the changed suffix is
        touched, which is what makes Theorem 4's accounting real.
        """
        segment = self.get(segment_id)
        if not 0 <= keep_until < len(segment.nodes):
            raise WalkStateError(
                f"keep_until={keep_until} out of range for segment of length "
                f"{len(segment.nodes)}"
            )
        if new_suffix:
            self.ensure_node(max(new_suffix))
        self._index_range(segment_id, segment, keep_until + 1, -1)
        del segment.nodes[keep_until + 1 :]
        segment.nodes.extend(new_suffix)
        segment.end_reason = end_reason
        self._index_range(segment_id, segment, keep_until + 1, +1)

    def rebuild_segment(
        self, segment_id: int, nodes: list[int], end_reason: int
    ) -> None:
        """Replace a segment wholesale (resimulate-from-source policy)."""
        segment = self.get(segment_id)
        if nodes[0] != segment.source:
            raise WalkStateError(
                f"rebuilt segment must keep source {segment.source}, got {nodes[0]}"
            )
        self.ensure_node(max(nodes))
        self._index_range(segment_id, segment, 0, -1)
        segment.nodes = list(nodes)
        segment.end_reason = end_reason
        self._index_range(segment_id, segment, 0, +1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def visits_of(self, node: int) -> dict[int, int]:
        """Mapping ``segment id -> visit count`` for segments visiting ``node``."""
        if node >= self.num_nodes:
            return {}
        return dict(self._visits[node])

    def segment_ids_visiting(self, node: int) -> list[int]:
        if node >= self.num_nodes:
            return []
        return list(self._visits[node])

    def visit_count(self, node: int) -> int:
        """``X(v)``: total visits to ``node`` across all segments."""
        if node >= self.num_nodes:
            return 0
        return self._visit_count[node]

    def distinct_segment_count(self, node: int) -> int:
        """``W(v)``: number of distinct segments visiting ``node``."""
        if node >= self.num_nodes:
            return 0
        return len(self._visits[node])

    def side_visit_count(self, node: int, side: int) -> int:
        """Visits to ``node`` on ``side`` (0 = hub, 1 = authority)."""
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        if node >= self.num_nodes:
            return 0
        return self._side_count[side][node]

    def visit_count_array(self) -> np.ndarray:
        return np.asarray(self._visit_count, dtype=np.int64)

    def side_visit_count_array(self, side: int) -> np.ndarray:
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        return np.asarray(self._side_count[side], dtype=np.int64)

    def iter_segments(self) -> Iterator[tuple[int, WalkSegment]]:
        for segment_id, segment in enumerate(self.segments):
            if segment is not None:
                yield segment_id, segment

    # ------------------------------------------------------------------
    # Invariant checking (tests and failure injection)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Recompute the index from scratch and compare (O(total visits)).

        Raises :class:`WalkStateError` on any inconsistency.  Used heavily
        by tests; cheap enough to run on moderate stores.
        """
        expected_visits: list[dict[int, int]] = [{} for _ in range(self.num_nodes)]
        expected_count = [0] * self.num_nodes
        expected_sides = [[0] * self.num_nodes, [0] * self.num_nodes]
        expected_total = 0
        for segment_id, segment in self.iter_segments():
            for position, node in enumerate(segment.nodes):
                bucket = expected_visits[node]
                bucket[segment_id] = bucket.get(segment_id, 0) + 1
                expected_count[node] += 1
                expected_total += 1
                if self.track_sides:
                    expected_sides[segment.side_of(position)][node] += 1
        if expected_count != self._visit_count:
            raise WalkStateError("visit_count diverged from segments")
        if expected_visits != self._visits:
            raise WalkStateError("visit index diverged from segments")
        if expected_total != self.total_visits:
            raise WalkStateError("total_visits diverged from segments")
        if self.track_sides and expected_sides != self._side_count:
            raise WalkStateError("side counters diverged from segments")


def simulate_reset_walk(
    graph: DynamicDiGraph,
    start: int,
    reset_probability: float,
    rng: RngLike = None,
    *,
    max_steps: Optional[int] = None,
) -> WalkSegment:
    """Scalar reset walk from ``start`` (coin flipped at every node, start
    included).  Used for reroute continuations; bulk initialization goes
    through :func:`repro.graph.csr.batch_reset_walks` instead.
    """
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = default_max_steps(reset_probability)
    nodes = [start]
    current = start
    out_view = graph.out_view
    integers = generator.integers
    random = generator.random
    for _ in range(max_steps):
        if random() < reset_probability:
            return WalkSegment(nodes, END_RESET)
        adjacency = out_view(current)
        if not adjacency:
            return WalkSegment(nodes, END_DANGLING)
        current = adjacency[int(integers(len(adjacency)))]
        nodes.append(current)
    return WalkSegment(nodes, END_RESET)  # safety cap; probability ≈ 0
