"""SALSA: walk semantics, incremental maintenance, score validity (§2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.salsa_iterative import global_salsa, personalized_salsa
from repro.core.salsa import (
    IncrementalSALSA,
    PersonalizedSALSA,
    batch_salsa_walks,
    simulate_salsa_walk,
)
from repro.core.walks import END_DANGLING, SIDE_AUTHORITY, SIDE_HUB
from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import directed_cycle, directed_erdos_renyi


def _assert_segment_valid(graph: DynamicDiGraph, segment) -> None:
    """Alternating semantics: hub positions step forward, authority
    positions step backward."""
    for position in range(len(segment.nodes) - 1):
        a, b = segment.nodes[position], segment.nodes[position + 1]
        if segment.side_of(position) == SIDE_HUB:
            assert graph.has_edge(a, b), f"forward step {a}->{b} missing"
        else:
            assert graph.has_edge(b, a), f"backward step {b}->{a} missing"


class TestSalsaWalks:
    def test_scalar_walk_alternates(self, random_graph):
        rng = np.random.default_rng(0)
        for start_side in (SIDE_HUB, SIDE_AUTHORITY):
            for _ in range(50):
                seg = simulate_salsa_walk(random_graph, 5, start_side, 0.3, rng)
                assert seg.parity_offset == start_side
                _assert_segment_valid(random_graph, seg)

    def test_dangling_hub_start(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])  # node 1: no out-edges
        rng = np.random.default_rng(1)
        seg = simulate_salsa_walk(graph, 1, SIDE_HUB, 0.0001, rng)
        # either immediate (unlikely) reset or dangling at 1
        if seg.end_reason == END_DANGLING:
            assert seg.nodes == [1]

    def test_dangling_authority_start(self):
        graph = DynamicDiGraph.from_edges([(0, 1)])  # node 0: no in-edges
        seg = simulate_salsa_walk(
            graph, 0, SIDE_AUTHORITY, 0.2, np.random.default_rng(2)
        )
        assert seg.nodes == [0]
        assert seg.end_reason == END_DANGLING

    def test_mean_length_about_two_over_eps(self):
        graph = directed_cycle(12)
        rng = np.random.default_rng(3)
        eps = 0.2
        lengths = [
            len(simulate_salsa_walk(graph, 0, SIDE_HUB, eps, rng).nodes)
            for _ in range(20000)
        ]
        # forward-start visits: 1 + 2(G-1), mean 2/eps - 1 = 9
        assert abs(np.mean(lengths) - (2 / eps - 1)) < 0.2

    def test_batch_matches_scalar(self, random_graph):
        out_csr = random_graph.to_csr("out")
        in_csr = random_graph.to_csr("in")
        starts = np.array([0] * 5000)
        segments, reasons = batch_salsa_walks(
            out_csr, in_csr, starts, SIDE_HUB, 0.25, rng=4
        )
        batch_mean = np.mean([len(s) for s in segments])
        rng = np.random.default_rng(5)
        scalar_mean = np.mean(
            [
                len(simulate_salsa_walk(random_graph, 0, SIDE_HUB, 0.25, rng).nodes)
                for _ in range(5000)
            ]
        )
        assert abs(batch_mean - scalar_mean) < 0.3
        for seg in segments[:200]:
            for position in range(len(seg) - 1):
                a, b = seg[position], seg[position + 1]
                if position % 2 == 0:
                    assert random_graph.has_edge(a, b)
                else:
                    assert random_graph.has_edge(b, a)


class TestScores:
    def test_global_authority_tracks_indegree_at_small_eps(self, random_graph):
        """§2.2: 'the authority score of a node is exactly its in-degree as
        the reset probability goes to 0'."""
        engine = IncrementalSALSA.from_graph(
            random_graph, reset_probability=0.02, walks_per_node=20, rng=6
        )
        authority = engine.authority_scores()
        expected = random_graph.in_degree_array() / random_graph.num_edges
        assert np.abs(authority - expected).sum() < 0.1

    def test_mc_agrees_with_iterative_global_salsa(self, random_graph):
        engine = IncrementalSALSA.from_graph(
            random_graph, reset_probability=0.1, walks_per_node=30, rng=7
        )
        _, authority_iter = global_salsa(
            random_graph, reset_probability=0.1, iterations=50
        )
        authority_iter = authority_iter / authority_iter.sum()
        correlation = np.corrcoef(engine.authority_scores(), authority_iter)[0, 1]
        assert correlation > 0.97

    def test_scores_are_distributions(self, pa_graph):
        engine = IncrementalSALSA.from_graph(pa_graph, walks_per_node=3, rng=8)
        assert engine.authority_scores().sum() == pytest.approx(1.0)
        assert engine.hub_scores().sum() == pytest.approx(1.0)

    def test_top_authorities_sorted(self, pa_graph):
        engine = IncrementalSALSA.from_graph(pa_graph, walks_per_node=3, rng=8)
        top = engine.top_authorities(5)
        values = [s for _, s in top]
        assert values == sorted(values, reverse=True)


class TestIncrementalMaintenance:
    def test_invariants_and_validity_through_mutations(self):
        rng = np.random.default_rng(9)
        graph = directed_erdos_renyi(20, 70, rng=10)
        engine = IncrementalSALSA.from_graph(graph, walks_per_node=3, rng=11)
        for step in range(100):
            if engine.graph.num_edges > 30 and rng.random() < 0.4:
                engine.remove_edge(*engine.graph.random_edge(rng))
            else:
                u, v = int(rng.integers(20)), int(rng.integers(20))
                if u != v and not engine.graph.has_edge(u, v):
                    engine.add_edge(u, v)
            if step % 20 == 0:
                engine.walks.check_invariants()
        engine.walks.check_invariants()
        for _, segment in engine.walks.iter_segments():
            _assert_segment_valid(engine.graph, segment)

    def test_incremental_add_unbiased(self):
        """Mean authority after incremental adds ≈ mean after fresh builds
        on the final graph (both sides statistical, same run count)."""
        base = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]
        added = [(0, 3), (3, 0), (1, 0)]
        runs = 120
        incremental = np.zeros(4)
        fresh = np.zeros(4)
        for seed in range(runs):
            graph = DynamicDiGraph.from_edges(base, num_nodes=4)
            engine = IncrementalSALSA.from_graph(
                graph, reset_probability=0.25, walks_per_node=4, rng=seed
            )
            for edge in added:
                engine.add_edge(*edge)
            incremental += engine.authority_scores()
            final = DynamicDiGraph.from_edges(base + added, num_nodes=4)
            ref = IncrementalSALSA.from_graph(
                final, reset_probability=0.25, walks_per_node=4, rng=50_000 + seed
            )
            fresh += ref.authority_scores()
        assert np.abs(incremental / runs - fresh / runs).max() < 0.03

    def test_incremental_remove_unbiased(self):
        base = [(0, 1), (1, 2), (2, 0), (0, 2), (2, 1), (1, 0)]
        removed = [(0, 2), (2, 1)]
        runs = 120
        incremental = np.zeros(3)
        fresh = np.zeros(3)
        for seed in range(runs):
            graph = DynamicDiGraph.from_edges(base, num_nodes=3)
            engine = IncrementalSALSA.from_graph(
                graph, reset_probability=0.25, walks_per_node=4, rng=seed
            )
            for edge in removed:
                engine.remove_edge(*edge)
            incremental += engine.authority_scores()
            final = DynamicDiGraph.from_edges(
                [e for e in base if e not in removed], num_nodes=3
            )
            ref = IncrementalSALSA.from_graph(
                final, reset_probability=0.25, walks_per_node=4, rng=90_000 + seed
            )
            fresh += ref.authority_scores()
        assert np.abs(incremental / runs - fresh / runs).max() < 0.03

    def test_both_endpoints_can_trigger(self):
        """An arriving edge must be able to reroute via the target's
        backward steps, not just the source's forward steps."""
        graph = directed_erdos_renyi(15, 60, rng=12)
        engine = IncrementalSALSA.from_graph(graph, walks_per_node=10, rng=13)
        rerouted = 0
        for _ in range(20):
            u, v = int(engine._rng.integers(15)), int(engine._rng.integers(15))
            if u != v and not engine.graph.has_edge(u, v):
                rerouted += engine.add_edge(u, v).segments_rerouted
        assert rerouted > 0
        engine.walks.check_invariants()

    def test_node_arrival(self):
        engine = IncrementalSALSA(walks_per_node=3, rng=14)
        node = engine.add_node()
        assert len(engine.walks.segments_starting_at(node)) == 6  # R fwd + R bwd
        engine.add_edge(0, 1)
        assert engine.graph.num_nodes == 2
        engine.walks.check_invariants()


class TestPersonalizedSALSA:
    def test_walk_runs_and_counts(self, pa_graph):
        engine = IncrementalSALSA.from_graph(pa_graph, walks_per_node=5, rng=15)
        query = PersonalizedSALSA(engine.pagerank_store, rng=16)
        walk = query.stitched_walk(7, 3000)
        assert walk.length >= 3000
        assert walk.fetches > 0
        assert walk.fetches < 3000  # stitching must beat one-fetch-per-step
        assert sum(walk.hub_counts.values()) + sum(
            walk.authority_counts.values()
        ) == walk.length

    def test_correlates_with_iterative_personalized_salsa(self, pa_graph):
        seed = 11
        engine = IncrementalSALSA.from_graph(
            pa_graph, reset_probability=0.2, walks_per_node=10, rng=17
        )
        query = PersonalizedSALSA(engine.pagerank_store, rng=18)
        walk = query.stitched_walk(seed, 60_000)
        estimate = np.zeros(pa_graph.num_nodes)
        for node, count in walk.authority_counts.items():
            estimate[node] = count
        estimate /= max(estimate.sum(), 1)
        _, authority = personalized_salsa(
            pa_graph, seed, reset_probability=0.2, iterations=30
        )
        authority = authority / authority.sum()
        mask = authority > 1e-4
        assert mask.sum() > 10
        correlation = np.corrcoef(estimate[mask], authority[mask])[0, 1]
        assert correlation > 0.9

    def test_top_authorities_excludes(self, pa_graph):
        engine = IncrementalSALSA.from_graph(pa_graph, walks_per_node=5, rng=19)
        query = PersonalizedSALSA(engine.pagerank_store, rng=20)
        walk = query.stitched_walk(3, 2000)
        banned = {3, *pa_graph.out_view(3)}
        top = walk.top_authorities(10, exclude=banned)
        assert all(node not in banned for node, _ in top)

    def test_requires_side_tracking(self, tiny_graph):
        from repro.store.pagerank_store import PageRankStore
        from repro.store.social_store import SocialStore

        plain = PageRankStore(SocialStore.of_graph(tiny_graph))
        with pytest.raises(ConfigurationError):
            PersonalizedSALSA(plain)

    def test_bad_length(self, pa_graph):
        engine = IncrementalSALSA.from_graph(pa_graph, walks_per_node=2, rng=21)
        query = PersonalizedSALSA(engine.pagerank_store)
        with pytest.raises(ConfigurationError):
            query.stitched_walk(0, 0)
