"""Shared benchmark configuration.

Every benchmark wraps one experiment driver (see ``repro.experiments``) in
``benchmark.pedantic(…, rounds=1)`` — the experiments are end-to-end
reproductions, not microseconds-scale kernels, so one timed round is the
meaningful measurement.  Each benchmark also asserts the experiment's
*shape* claim (who wins, what stays under which bound), so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction gate.

Sizes are the runner's ``--quick``-ish scale so the full suite finishes in
a few minutes; EXPERIMENTS.md records a full-size run.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, **kwargs):
    """Run an experiment driver exactly once under the benchmark clock."""
    return benchmark.pedantic(lambda: func(**kwargs), rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
