"""Epoch-bump protocol: publishing walk-arena generations to worker processes.

The multi-process serve tier splits the paper's two roles across process
boundaries: one **coordinator** owns the write path (``apply`` /
``apply_batch`` on the live engine) and N **workers** own the read path,
each serving queries from a read-only mmap of a published arena snapshot
(:func:`repro.store.persistence.attach_engine`).  The handoff between
them is the *epoch-bump protocol*:

1. The coordinator mutates its private engine (walk arenas are process-
   private; workers never see torn intermediate states).
2. When it wants those updates visible, it **publishes**: the current
   engine state is written to a fresh generation directory
   (``gen-000007/``) via :func:`~repro.store.persistence.save_shared_snapshot`,
   and only once every array file is durable is the ``CURRENT`` pointer
   file flipped to name it (tmp + :func:`os.replace`, atomic on POSIX).
   A reader can therefore trust whatever ``CURRENT`` names: the pointed-to
   manifest lands last inside its directory, and the pointer lands last
   overall.
3. The frontend enqueues an ``epoch`` message on every worker's request
   queue.  Queues are FIFO, so the message is a **barrier**: every batch
   enqueued before it is answered from the old generation, every batch
   after it from the new one — each answer comes from exactly one
   consistent epoch, never a blend.
4. Each worker attaches the new generation, swaps its query engine onto
   it between drains (:meth:`~repro.serve.engine.QueryEngine.swap_engine`,
   which bumps the result-cache generation and drops the fetch cache),
   and acks.  When all workers have acked, the coordinator may prune
   generations older than ``retain`` — on POSIX, unlinking a mapped file
   is safe (pages live until the last mapping goes away), so pruning
   never races a worker that is still mid-swap.

Determinism: a worker's answers are a pure function of (generation,
query, rng_seed) — same derived RNG, same arena bits — so multi-process
serving is bit-identical to a single-process
:class:`~repro.serve.engine.QueryEngine` over the same published state
(``tests/test_serve_mp.py`` proves this differentially over interleaved
query/update/swap schedules).
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import ConfigurationError, InjectedFault, WalkStateError
from repro.faults import PARTIAL
from repro.store.persistence import save_shared_snapshot

__all__ = ["ArenaPublisher", "read_current", "CURRENT_NAME"]

#: Pointer file naming the live generation inside a publish root.
CURRENT_NAME = "CURRENT"


#: Re-reads of ``CURRENT`` tolerated while a concurrent publish+prune is
#: flipping the pointer (each retry either returns or sees a new value,
#: so the loop terminates as soon as the pointer stops moving).
_READ_CURRENT_RETRIES = 8


def read_current(root) -> Tuple[int, Path]:
    """Resolve the live ``(generation, snapshot directory)`` under ``root``.

    Raises :class:`ConfigurationError` when ``root`` has no ``CURRENT``
    pointer (nothing published yet) and :class:`WalkStateError` when the
    pointer is unreadable or names a missing generation directory.

    A reader can race a concurrent publish+prune: it reads a pointer
    naming generation ``G``, the coordinator flips to ``G+1`` and prunes
    ``G``, and the directory check then fails even though a fresh read
    would succeed.  The pointer is therefore re-read (bounded) whenever
    the named directory is missing *and* the pointer has moved since —
    only a pointer that stably names a missing directory is an error.
    """
    root = Path(root)
    pointer = root / CURRENT_NAME
    last_generation = None
    generation, directory = 0, root
    for _ in range(_READ_CURRENT_RETRIES):
        if not pointer.is_file():
            raise ConfigurationError(
                f"no published generation under {root} (missing {CURRENT_NAME})"
            )
        try:
            data = json.loads(pointer.read_text(encoding="utf-8"))
            generation = int(data["generation"])
            directory = root / str(data["directory"])
        except (ValueError, KeyError, TypeError, OSError) as exc:
            raise WalkStateError(
                f"unreadable generation pointer {pointer}: {exc}"
            ) from exc
        if directory.is_dir():
            return generation, directory
        if last_generation == generation:
            break
        last_generation = generation
    raise WalkStateError(
        f"generation pointer names missing snapshot {directory}"
    )


class ArenaPublisher:
    """Writes arena generations under a root and flips the live pointer.

    One publisher instance belongs to the coordinator process.  Each
    :meth:`publish` call writes a complete, self-contained snapshot
    directory (never mutated afterwards — readers mmap it), then
    atomically repoints ``CURRENT``.  Old generations beyond ``retain``
    are pruned; callers that hand generation paths directly to workers
    (the frontend does, for the ack barrier) should prune only after the
    swap acks arrive — :meth:`publish` therefore exposes ``prune=False``
    and a separate :meth:`prune` for that pattern.
    """

    def __init__(self, root, *, retain: int = 2, fault_plan=None) -> None:
        if retain < 1:
            raise ConfigurationError(f"retain must be >= 1, got {retain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.retain = retain
        self.fault_plan = fault_plan
        self._generation = 0
        # resume numbering past an existing root so stale worker mmaps of
        # a previous run's generations can never alias a fresh directory
        try:
            current, _ = read_current(self.root)
            self._generation = current
        except (ConfigurationError, WalkStateError):
            pass

    @property
    def generation(self) -> int:
        """The most recently published generation (0 = none yet)."""
        return self._generation

    def generation_dir(self, generation: int) -> Path:
        return self.root / f"gen-{generation:06d}"

    def publish(self, target, *, prune: bool = True) -> Tuple[int, Path]:
        """Snapshot ``target`` as the next generation and flip ``CURRENT``.

        ``target`` is an engine or bare walk index (whatever
        :func:`save_shared_snapshot` accepts).  Returns ``(generation,
        directory)``.  ``prune=False`` defers retention cleanup to an
        explicit :meth:`prune` call (after worker acks).
        """
        generation = self._generation + 1
        directory = self.generation_dir(generation)
        if self.fault_plan is not None:
            rule = self.fault_plan.fire("publisher.publish")
            if rule is not None and rule.action == PARTIAL:
                # simulate a crash mid-snapshot: junk lands in the new
                # generation directory but CURRENT never flips, so readers
                # keep resolving the old generation and the *next* publish
                # reclaims the leftover (the rmtree below)
                directory.mkdir(parents=True, exist_ok=True)
                (directory / "manifest.json.tmp").write_text(
                    '{"partial": true', encoding="utf-8"
                )
                raise InjectedFault(
                    f"partial snapshot write at generation {generation}"
                )
        if directory.exists():
            # a half-written leftover from a crashed publish; CURRENT
            # never pointed at it, so it is safe to discard — and a
            # concurrent prune may be deleting it right now, so missing
            # entries mid-removal must not crash the publish
            shutil.rmtree(directory, ignore_errors=True)
        save_shared_snapshot(target, directory)
        pointer = self.root / CURRENT_NAME
        tmp = self.root / (CURRENT_NAME + ".tmp")
        tmp.write_text(
            json.dumps({"generation": generation, "directory": directory.name}),
            encoding="utf-8",
        )
        os.replace(tmp, pointer)
        self._generation = generation
        if prune:
            self.prune()
        return generation, directory

    def prune(self, *, keep: Optional[int] = None) -> int:
        """Delete generations older than the newest ``keep`` (default
        ``retain``).  The live generation is never pruned.  Returns the
        number of directories removed.

        Crash-safe against concurrent activity in the root: a generation
        directory may disappear mid-scan (another prune, or an operator
        cleanup) and candidate directories are re-checked and removed with
        errors ignored, so retention never takes the publisher down.
        """
        keep = self.retain if keep is None else max(1, keep)
        removed = 0
        try:
            candidates = sorted(self.root.glob("gen-*"))
        except OSError:
            return 0
        for path in candidates:
            if not path.is_dir():
                continue
            try:
                generation = int(path.name.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if generation <= self._generation - keep:
                shutil.rmtree(path, ignore_errors=True)
                if not path.exists():
                    removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"ArenaPublisher(root={str(self.root)!r}, "
            f"generation={self._generation}, retain={self.retain})"
        )
