"""Graph generators: structure, exponents, and the Example-1 gadget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.power_law import fit_rank_exponent
from repro.errors import ConfigurationError
from repro.graph.generators import (
    directed_complete,
    directed_configuration_power_law,
    directed_cycle,
    directed_erdos_renyi,
    directed_preferential_attachment,
    directed_star,
    example1_adversarial_gadget,
    zipf_rank_weights,
)


class TestPreferentialAttachment:
    def test_shape(self):
        graph = directed_preferential_attachment(200, edges_per_node=3, rng=0)
        assert graph.num_nodes == 200
        # seed cycle (5) + up to 3 per new node
        assert graph.num_edges <= 5 + 3 * 195
        assert graph.num_edges >= 5 + 2 * 195  # retries rarely all fail

    def test_no_self_loops_or_duplicates(self):
        graph = directed_preferential_attachment(150, edges_per_node=4, rng=1)
        seen = set()
        for u, v in graph.edges():
            assert u != v
            assert (u, v) not in seen
            seen.add((u, v))

    def test_heavy_tail_emerges(self):
        graph = directed_preferential_attachment(2000, edges_per_node=5, rng=2)
        indeg = graph.in_degree_array()
        fit = fit_rank_exponent(indeg.astype(float), min_rank=5, max_rank=200)
        assert 0.4 < fit.alpha < 1.1
        assert fit.r_squared > 0.85

    def test_callable_out_degree(self):
        graph = directed_preferential_attachment(
            100, edges_per_node=lambda rng: int(rng.integers(1, 4)), rng=3
        )
        degrees = graph.out_degree_array()[10:]
        assert degrees.min() >= 1
        assert degrees.max() <= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            directed_preferential_attachment(3, seed_nodes=5)
        with pytest.raises(ConfigurationError):
            directed_preferential_attachment(10, uniform_prob=1.5)
        with pytest.raises(ConfigurationError):
            directed_preferential_attachment(
                50, edges_per_node=lambda rng: -1, rng=0
            )


class TestConfigurationPowerLaw:
    def test_exact_edge_count(self):
        graph = directed_configuration_power_law(500, 3000, alpha=0.76, rng=4)
        assert graph.num_edges == 3000
        assert graph.num_nodes == 500

    def test_controlled_exponent(self):
        graph = directed_configuration_power_law(3000, 30_000, alpha=0.7, rng=5)
        fit = fit_rank_exponent(
            graph.in_degree_array().astype(float), min_rank=3, max_rank=300
        )
        assert abs(fit.alpha - 0.7) < 0.15

    def test_source_alpha_gives_heavy_out_degrees(self):
        graph = directed_configuration_power_law(
            1000, 10_000, alpha=0.7, source_alpha=0.7, rng=6
        )
        out = np.sort(graph.out_degree_array())[::-1]
        assert out[0] > 5 * np.median(out[out > 0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            directed_configuration_power_law(1, 5)
        with pytest.raises(ConfigurationError):
            directed_configuration_power_law(10, -1)
        with pytest.raises(ConfigurationError):
            directed_configuration_power_law(10, 5, alpha=1.5)

    def test_zipf_weights(self):
        weights = zipf_rank_weights(100, 0.75)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) < 0).all()
        with pytest.raises(ConfigurationError):
            zipf_rank_weights(10, 0.0)


class TestClassicShapes:
    def test_erdos_renyi(self):
        graph = directed_erdos_renyi(50, 200, rng=7)
        assert graph.num_edges == 200
        with pytest.raises(ConfigurationError):
            directed_erdos_renyi(3, 100)

    def test_cycle(self):
        graph = directed_cycle(7)
        assert graph.num_edges == 7
        assert all(graph.out_degree(v) == 1 for v in graph.nodes())
        assert graph.has_edge(6, 0)

    def test_star(self):
        inward = directed_star(5, inward=True)
        assert inward.in_degree(0) == 5
        assert inward.out_degree(0) == 0
        outward = directed_star(5, inward=False)
        assert outward.out_degree(0) == 5

    def test_complete(self):
        graph = directed_complete(5)
        assert graph.num_edges == 20


class TestExample1Gadget:
    def test_structure(self):
        size = 10
        graph, killer, deferred = example1_adversarial_gadget(size)
        hub = size
        assert graph.num_nodes == 3 * size + 1
        assert killer == (hub, 0)
        assert len(deferred) == size
        # hub is dangling until the adversary releases its out-edges
        assert graph.out_degree(hub) == 0
        assert graph.in_degree(hub) == 2 * size  # all v_j and all x_j
        # cycle, v_1 <-> y's
        assert graph.has_edge(size - 1, 0)
        assert graph.has_edge(0, 2 * size + 1)
        assert graph.has_edge(2 * size + 1, 0)
        for edge in deferred:
            assert edge[0] == hub
            assert not graph.has_edge(*edge)

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            example1_adversarial_gadget(1)
