"""Multi-process serve frontend: supervised, fault-tolerant fan-out.

:class:`MultiProcessFrontend` is the coordinator-side half of the
multi-process serve tier.  It owns

* the **write path** — the live :class:`~repro.core.incremental.
  IncrementalPageRank` engine stays in this process; workers never mutate;
  an optional :class:`~repro.serve.wal.WriteAheadLog` makes the window
  between publishes durable (attached on construction, truncated after
  each successful :meth:`publish_epoch`);
* the **publish path** — an :class:`~repro.serve.epochs.ArenaPublisher`
  snapshots the engine into mmap-able generation directories and
  :meth:`publish_epoch` pushes the bump through every worker queue (a
  FIFO barrier: see :mod:`repro.serve.epochs` for the protocol proof);
* the **read fan-out** — N spawned worker processes
  (:func:`~repro.serve.worker.worker_main`), each attached read-only to
  the current generation, each fronted by its own in-process
  :class:`~repro.serve.batcher.RequestBatcher`;
* the **supervisor** — a thread that watches worker process sentinels,
  heartbeat ages, and per-batch deadlines, and repairs what it finds
  (see below).

Requests route to workers **seed-affine** (the same Fibonacci multiplier
hash the sharded store uses), so a hot seed always lands on the worker
whose result/fetch caches already hold it.  Admission control is a
bounded in-flight window shared across workers: past ``max_in_flight``
outstanding requests, new work is shed with
:class:`~repro.errors.LoadShedError` — backpressure at the front door
instead of unbounded queue growth.

**Fault tolerance** (DESIGN.md §15).  A dead worker (crash, OOM-kill,
injected fault) is detected by its process sentinel; its in-flight
batches are re-routed to the surviving workers (seed affinity rebuilt
over the live set) and re-executed — **bit-identically**, because every
answer is a pure function of (generation, query, rng_seed), never of
which worker computes it.  The worker is respawned attached to the
latest published generation and re-synced to the current epoch; each
respawn counts against a per-worker circuit breaker
(``max_worker_restarts``), after which the worker stays down and traffic
degrades to the remaining workers — or, at zero live workers, to inline
execution on the coordinator over the same published snapshot (still
bit-identical; the coordinator's *live* engine may be ahead of the
published generation, so inline serving attaches the snapshot instead).
A batch that outlives ``request_timeout`` marks its worker wedged — the
supervisor terminates it, which funnels into the same death-repair path;
``max_retries`` bounds how many times one batch is re-executed before
its future fails with :class:`~repro.errors.ServeError`.

The blocking API is :meth:`submit` (one request → ``Future``) and
:meth:`run` (a wave of requests → ordered results); the asyncio façade is
:meth:`asubmit` / :meth:`arun`, which wrap the same futures for an event
loop (``examples/api_server.py`` serves HTTP straight off them).  A
``Future`` resolves in the reader thread that multiplexes the per-worker
response pipes, so event loops and blocking callers coexist on one
frontend.  (Responses travel over one *private pipe per worker*, never a
shared queue: a shared ``mp.Queue``'s writers all pass through one
cross-process lock, and a worker killed while holding it would wedge
every survivor — see :meth:`_read_responses`.)

Observability: every outcome bills ``repro_serve_mp_*`` metrics into
:attr:`registry` (plus ``repro_serve_retries_total`` and the per-worker
restart counter / heartbeat-age gauge), and when tracing is on,
worker-side spans ship home with each batch and are grafted under the
coordinator's dispatch span, with ``serve.retry`` point spans marking
every re-execution.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import shutil
import tempfile
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, LoadShedError, ServeError
from repro.faults import DELAY, DROP
from repro.lifecycle import register_for_shutdown
from repro.obs import MetricsRegistry, Tracer
from repro.obs.metrics import BATCH_SIZE_BUCKETS, LATENCY_BUCKETS
from repro.serve.batcher import QueryRequest, RequestBatcher
from repro.serve.engine import QueryEngine
from repro.serve.epochs import ArenaPublisher
from repro.serve.worker import (
    BATCH,
    EPOCH,
    EPOCH_OK,
    ERROR,
    HEARTBEAT,
    INIT_ERROR,
    READY,
    RESULT,
    STOP,
    STOPPED,
    WorkerConfig,
    spawn_worker,
)

__all__ = ["MultiProcessFrontend"]

#: Fibonacci multiplier (golden-ratio hash) — the same seed scrambler the
#: sharded store routes with, so routing is uniform even for dense ids.
_HASH_MULTIPLIER = 0x9E3779B9

_READER_STOP = ("__reader_stop__",)

#: Queue-put failure modes when the far side died or the queue closed.
_QUEUE_ERRORS = (ValueError, OSError, AssertionError)


class _PendingBatch:
    """Coordinator-side record of one dispatched batch.

    ``requests`` is retained (not just the count) so a batch orphaned by
    a worker death can be re-dispatched verbatim; ``retries`` counts
    re-executions against ``max_retries``; ``deadline`` (coordinator
    monotonic) is the wedge detector.
    """

    __slots__ = (
        "future",
        "requests",
        "count",
        "span",
        "worker_id",
        "started",
        "deadline",
        "retries",
    )

    def __init__(self, future, requests, span, started):
        self.future = future
        self.requests = tuple(requests)
        self.count = len(self.requests)
        self.span = span
        self.worker_id = -1
        self.started = started
        self.deadline: Optional[float] = None
        self.retries = 0


class _EpochWait:
    """Barrier state for one in-flight epoch bump."""

    __slots__ = ("pending", "event", "errors")

    def __init__(self, pending: Set[int]):
        self.pending = pending
        self.event = threading.Event()
        self.errors: List[str] = []


class _WorkerSlot:
    """Everything the coordinator knows about one worker id.

    The *slot* outlives any single process: a respawn replaces
    ``process``/``queue``/``conn`` and bumps ``incarnation`` while the
    slot keeps the restart count the circuit breaker trips on.  ``conn``
    is the coordinator's receive end of the worker's private response
    pipe (``None`` once the pipe hit EOF and before the respawn's pipe
    is installed) — responses deliberately do *not* share one queue; see
    :meth:`MultiProcessFrontend._read_responses`.  ``last_seen`` is the
    coordinator-clock receipt time of the worker's latest message (any
    message proves liveness, so busy workers pay no heartbeat traffic);
    ``stopping`` marks an intentional shutdown so the supervisor never
    "repairs" a teardown.
    """

    __slots__ = (
        "worker_id",
        "process",
        "queue",
        "conn",
        "generation",
        "live",
        "starting",
        "stopping",
        "tripped",
        "restarts",
        "incarnation",
        "last_seen",
    )

    def __init__(self, worker_id, process, queue, conn, generation):
        self.worker_id = worker_id
        self.process = process
        self.queue = queue
        self.conn = conn
        self.generation = generation
        self.live = False
        self.starting = True
        self.stopping = False
        self.tripped = False
        self.restarts = 0
        self.incarnation = 0
        self.last_seen = time.monotonic()


class MultiProcessFrontend:
    """Admission-controlled, supervised fan-out over worker processes."""

    def __init__(
        self,
        engine,
        *,
        num_workers: int = 2,
        root=None,
        max_in_flight: int = 256,
        config: Optional[WorkerConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        retain: int = 2,
        start_timeout: float = 120.0,
        request_timeout: Optional[float] = 60.0,
        max_retries: int = 2,
        max_worker_restarts: int = 3,
        heartbeat_timeout: Optional[float] = None,
        sweep_interval: float = 0.25,
        wal=None,
        fault_plan=None,
    ) -> None:
        """Publish ``engine``'s state and stand up ``num_workers`` workers.

        ``engine`` stays this process's mutable write path — apply updates
        to it directly (between query waves), then :meth:`publish_epoch`
        to make them visible to workers.  ``root`` is the publish
        directory (a private temp dir by default, removed on close).
        ``config`` pins the workers' serving stack; by default it inherits
        ``trace`` from the coordinator ``tracer`` so spans ship exactly
        when someone is looking.

        Fault-tolerance knobs: ``request_timeout`` is the per-batch
        deadline after which the owning worker is presumed wedged and
        terminated (``None`` disables); ``max_retries`` bounds
        re-executions of one batch across worker deaths; a worker that
        dies more than ``max_worker_restarts`` times trips its circuit
        breaker and stays down; ``heartbeat_timeout`` (``None`` disables)
        additionally terminates a live worker whose last message is older
        than that — the deadline sweep already catches wedges that hold
        work, so this is for belt-and-braces deployments.  ``wal``
        attaches a :class:`~repro.serve.wal.WriteAheadLog` to the engine
        for crash recovery (truncated after every successful publish);
        ``fault_plan`` threads a chaos schedule into the coordinator-side
        hook points (defaults to ``config.fault_plan`` so one plan covers
        both sides of the queue).
        """
        if num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {num_workers}"
            )
        if max_in_flight <= 0:
            raise ConfigurationError(
                f"max_in_flight must be positive, got {max_in_flight}"
            )
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        if max_worker_restarts < 0:
            raise ConfigurationError(
                f"max_worker_restarts must be >= 0, got {max_worker_restarts}"
            )
        self.engine = engine
        self.num_workers = num_workers
        self.max_in_flight = max_in_flight
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.config = (
            config
            if config is not None
            else WorkerConfig(trace=self.tracer.enabled)
        )
        self.fault_plan = (
            fault_plan if fault_plan is not None else self.config.fault_plan
        )
        self.wal = wal
        self._request_timeout = request_timeout
        self._max_retries = max_retries
        self._max_worker_restarts = max_worker_restarts
        self._heartbeat_timeout = heartbeat_timeout
        self._sweep_interval = sweep_interval
        self._owns_root = root is None
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-serve-mp-")
        self.publisher = ArenaPublisher(
            root, retain=retain, fault_plan=self.fault_plan
        )

        reg = self.registry
        self._m_requests = reg.counter(
            "repro_serve_mp_requests_total",
            "Requests admitted to the multi-process serve tier",
            labels=("kind",),
        )
        self._m_shed = reg.counter(
            "repro_serve_mp_shed_total",
            "Requests refused by the frontend in-flight window",
        )
        self._m_batches = reg.counter(
            "repro_serve_mp_batches_total",
            "Batches dispatched to workers",
            labels=("worker",),
        )
        self._m_errors = reg.counter(
            "repro_serve_mp_errors_total",
            "Worker-reported batch/epoch failures",
            labels=("worker",),
        )
        self._m_in_flight = reg.gauge(
            "repro_serve_mp_in_flight",
            "Requests dispatched and not yet resolved",
        )
        self._m_workers = reg.gauge(
            "repro_serve_mp_workers", "Live worker processes"
        )
        self._m_generation = reg.gauge(
            "repro_serve_mp_generation", "Published arena generation"
        )
        self._m_epochs = reg.counter(
            "repro_serve_mp_epoch_swaps_total",
            "Completed epoch bumps (all workers swapped)",
        )
        self._m_latency = reg.histogram(
            "repro_serve_mp_batch_latency_seconds",
            "Dispatch-to-resolution latency per batch",
            buckets=LATENCY_BUCKETS,
        )
        self._m_batch_size = reg.histogram(
            "repro_serve_mp_batch_size",
            "Requests per dispatched batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._m_grafted = reg.counter(
            "repro_serve_mp_spans_grafted_total",
            "Worker spans grafted into the coordinator trace",
        )
        self._m_restarts = reg.counter(
            "repro_serve_mp_worker_restarts_total",
            "Worker processes respawned after a crash",
            labels=("worker",),
        )
        self._m_retries = reg.counter(
            "repro_serve_retries_total",
            "Requests re-executed after a worker failure",
        )
        self._m_heartbeat_age = reg.gauge(
            "repro_serve_mp_heartbeat_age_seconds",
            "Seconds since each worker's last message (coordinator clock)",
            labels=("worker",),
        )
        self._m_inline = reg.counter(
            "repro_serve_mp_inline_total",
            "Requests answered inline on the coordinator (0 live workers)",
        )
        self._m_breaker = reg.counter(
            "repro_serve_mp_breaker_trips_total",
            "Per-worker circuit breakers tripped (worker left down)",
            labels=("worker",),
        )
        self._m_supervisor_errors = reg.counter(
            "repro_serve_mp_supervisor_errors_total",
            "Repair sweeps abandoned to an unexpected exception",
        )

        self._lock = threading.Lock()
        self._closed = False
        self._in_flight = 0
        self._next_batch_id = 0
        self._next_epoch_id = 0
        self._batches: Dict[int, _PendingBatch] = {}
        self._epochs: Dict[int, _EpochWait] = {}
        self._inline_lock = threading.Lock()
        self._inline_engine: Optional[QueryEngine] = None
        self._inline_batcher: Optional[RequestBatcher] = None
        self._inline_generation = -1

        if wal is not None:
            engine.attach_wal(wal)

        generation, snapshot = self.publisher.publish(engine)
        self.generation = generation
        self._latest: Tuple[int, object] = (generation, snapshot)
        self._m_generation.set(float(generation))

        # spawn, not fork: the coordinator owns thread pools and live
        # locks a fork would duplicate mid-state; spawn also proves the
        # snapshot attach path carries every bit of worker state
        self._context = multiprocessing.get_context("spawn")
        # reader stop signal: a private pipe, NOT a message on a shared
        # queue — there is no shared response queue (see _read_responses)
        self._reader_stop_recv, self._reader_stop_send = self._context.Pipe(
            duplex=False
        )
        self._workers: Dict[int, _WorkerSlot] = {}
        for worker_id in range(num_workers):
            request_queue = self._context.Queue()
            recv_conn, send_conn = self._context.Pipe(duplex=False)
            process = spawn_worker(
                self._context,
                worker_id,
                snapshot,
                generation,
                self.config,
                request_queue,
                send_conn,
            )
            # drop the coordinator's copy of the worker's send end so the
            # pipe reads EOF the moment the worker (sole writer) dies
            send_conn.close()
            self._workers[worker_id] = _WorkerSlot(
                worker_id, process, request_queue, recv_conn, generation
            )
        try:
            self._await_ready(start_timeout)
        except BaseException:
            self._teardown_processes()
            if self._owns_root:
                shutil.rmtree(self.publisher.root, ignore_errors=True)
            raise
        self._m_workers.set(float(num_workers))
        self._reader = threading.Thread(
            target=self._read_responses,
            name="repro-serve-mp-reader",
            daemon=True,
        )
        self._reader.start()
        self._supervisor = threading.Thread(
            target=self._supervise,
            name="repro-serve-mp-supervisor",
            daemon=True,
        )
        self._supervisor.start()
        # exit-time safety net (see repro.lifecycle): abandoned frontends
        # still stop their workers and reader before interpreter teardown
        register_for_shutdown(self)

    # ------------------------------------------------------------------
    # Startup / teardown
    # ------------------------------------------------------------------

    @property
    def _processes(self) -> List:
        """Current worker processes (tests assert on liveness here)."""
        with self._lock:
            return [
                slot.process
                for _, slot in sorted(self._workers.items())
                if slot.process is not None
            ]

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        conns = {
            slot.conn: worker_id
            for worker_id, slot in self._workers.items()
        }
        ready: Set[int] = set()
        while len(ready) < self.num_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"workers not ready within {timeout:.0f}s "
                    f"({len(ready)}/{self.num_workers})"
                )
            fired = multiprocessing.connection.wait(
                list(conns), timeout=remaining
            )
            for conn in fired:
                worker_id = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    raise ServeError(
                        f"worker {worker_id} died during startup"
                    ) from None
                tag = message[0]
                if tag == READY:
                    ready.add(worker_id)
                    slot = self._workers[worker_id]
                    slot.live = True
                    slot.starting = False
                    slot.last_seen = time.monotonic()
                elif tag == INIT_ERROR:
                    _, _, (type_name, text) = message
                    raise ServeError(
                        f"worker {worker_id} failed to attach: "
                        f"{type_name}: {text}"
                    )

    def _teardown_processes(self, timeout: float = 10.0) -> None:
        """Stop every worker, tolerating ones that already died.

        Escalates per process: STOP message → ``join`` → ``terminate`` →
        ``kill``.  Safe to call on slots whose process crashed (their
        queue still accepts the STOP put; the join returns immediately)
        and safe to call concurrently/repeatedly — every step is
        idempotent on an already-dead process.
        """
        with self._lock:
            slots = list(self._workers.values())
            for slot in slots:
                slot.stopping = True
        for slot in slots:
            try:
                slot.queue.put((STOP,))
            except _QUEUE_ERRORS:  # pragma: no cover - closed queue
                pass
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - unkillable worker
                process.kill()
                process.join(timeout=timeout)

    def close(self) -> None:
        """Stop supervision and workers, join the reader, fail futures.

        Idempotent and safe under concurrent callers (user thread racing
        the :mod:`repro.lifecycle` atexit hook): the first caller flips
        ``_closed`` under the lock and owns the teardown; later callers
        return immediately.  Outstanding futures resolve with
        :class:`ServeError` rather than hanging their waiters forever.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        supervisor = getattr(self, "_supervisor", None)
        if (
            supervisor is not None
            and supervisor is not threading.current_thread()
        ):
            supervisor.join(timeout=10.0)
        self._teardown_processes()
        try:
            self._reader_stop_send.send(_READER_STOP)
        except _QUEUE_ERRORS:  # pragma: no cover - closed pipe
            pass
        reader = getattr(self, "_reader", None)
        if reader is not None and reader is not threading.current_thread():
            reader.join(timeout=10.0)
        with self._lock:
            pending = list(self._batches.values())
            self._batches.clear()
            self._in_flight = 0
            epochs = list(self._epochs.values())
            self._epochs.clear()
        for batch in pending:
            if not batch.future.done():
                batch.future.set_exception(
                    ServeError("frontend closed with the batch in flight")
                )
        for wait in epochs:
            wait.errors.append("frontend closed mid-epoch")
            wait.event.set()
        with self._inline_lock:
            if self._inline_batcher is not None:
                self._inline_batcher.close()
                self._inline_batcher = None
            if self._inline_engine is not None:
                self._inline_engine.detach()
                self._inline_engine = None
        if self.wal is not None and self.engine.wal is self.wal:
            self.engine.detach_wal()
        with self._lock:
            queues = [slot.queue for slot in self._workers.values()]
            conns = [
                slot.conn
                for slot in self._workers.values()
                if slot.conn is not None
            ]
            for slot in self._workers.values():
                slot.conn = None
        for closable in [
            *queues,
            *conns,
            self._reader_stop_send,
            self._reader_stop_recv,
        ]:
            try:
                closable.close()
            except _QUEUE_ERRORS:  # pragma: no cover - already closed
                pass
        self._m_workers.set(0.0)
        self._m_in_flight.set(0.0)
        if self._owns_root:
            shutil.rmtree(self.publisher.root, ignore_errors=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "MultiProcessFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _live_ids_locked(self) -> List[int]:
        return sorted(
            worker_id
            for worker_id, slot in self._workers.items()
            if slot.live and not slot.tripped
        )

    def _refresh_worker_gauge_locked(self) -> None:
        self._m_workers.set(float(len(self._live_ids_locked())))

    def _supervise(self) -> None:
        """Sentinel + heartbeat + deadline sweep loop (supervisor thread)."""
        while not self._closed:
            with self._lock:
                watch = {
                    slot.process.sentinel: worker_id
                    for worker_id, slot in self._workers.items()
                    if slot.process is not None
                    and not slot.stopping
                    and (slot.live or slot.starting)
                }
            if watch:
                try:
                    fired = multiprocessing.connection.wait(
                        list(watch), timeout=self._sweep_interval
                    )
                except OSError:  # pragma: no cover - raced process reap
                    fired = []
            else:
                time.sleep(self._sweep_interval)
                fired = []
            if self._closed:
                return
            # a repair step must never kill the supervisor: an unhandled
            # exception here would silently end all future crash repair,
            # which is strictly worse than skipping one sweep
            try:
                for worker_id in sorted({watch[s] for s in fired}):
                    self._handle_worker_death(worker_id)
                self._sweep_deadlines()
                self._sweep_heartbeats()
            except Exception:  # noqa: BLE001 - keep supervising
                if self._closed:
                    return
                self._m_supervisor_errors.inc()

    def _handle_worker_death(self, worker_id: int) -> None:
        """Repair one dead worker: re-route its work, respawn or trip.

        Runs on the supervisor thread only.  Under the lock: mark the
        slot dead, orphan its pending batches, release it from any epoch
        barrier (the respawn re-syncs to the latest generation anyway).
        Outside the lock: spawn the replacement (slow) and re-dispatch the
        orphans to surviving workers (or inline).
        """
        with self._lock:
            if self._closed:
                return
            slot = self._workers.get(worker_id)
            if (
                slot is None
                or slot.stopping
                or slot.process is None
                or slot.process.is_alive()
            ):
                return
            slot.process.join(timeout=0)  # reap
            slot.live = False
            slot.starting = False
            orphans = [
                (batch_id, batch)
                for batch_id, batch in self._batches.items()
                if batch.worker_id == worker_id
            ]
            for batch_id, _ in orphans:
                del self._batches[batch_id]
            for wait in self._epochs.values():
                if worker_id in wait.pending:
                    wait.pending.discard(worker_id)
                    if not wait.pending:
                        wait.event.set()
            respawn = slot.restarts < self._max_worker_restarts
            if respawn:
                slot.restarts += 1
                slot.incarnation += 1
                slot.starting = True
                slot.last_seen = time.monotonic()
                old_queue = slot.queue
                old_conn = slot.conn
                slot.queue = self._context.Queue()
                recv_conn, send_conn = self._context.Pipe(duplex=False)
                slot.conn = recv_conn
                slot.process = None  # filled below; sweep skips meanwhile
                generation, snapshot = self._latest
            else:
                slot.tripped = True
                self._m_breaker.inc(worker=str(worker_id))
            self._refresh_worker_gauge_locked()
        if respawn:
            for stale in (old_queue, old_conn):
                if stale is None:
                    continue
                try:
                    stale.close()
                except _QUEUE_ERRORS:  # pragma: no cover
                    pass
            process = spawn_worker(
                self._context,
                worker_id,
                snapshot,
                generation,
                self.config,
                slot.queue,
                send_conn,
                incarnation=slot.incarnation,
            )
            send_conn.close()  # EOF tracks the new incarnation's life
            with self._lock:
                slot.process = process
                slot.generation = generation
            self._m_restarts.inc(worker=str(worker_id))
        for _, batch in orphans:
            self._retry_batch(batch)

    def _sweep_deadlines(self) -> None:
        """Terminate workers holding batches past their deadline.

        A worker that eats a request (dropped message, infinite loop) is
        indistinguishable from a hung one; termination funnels it into
        the death-repair path, which re-routes the batch.
        """
        now = time.monotonic()
        with self._lock:
            expired = sorted(
                {
                    batch.worker_id
                    for batch in self._batches.values()
                    if batch.deadline is not None and batch.deadline < now
                }
            )
            victims = [
                self._workers[worker_id].process
                for worker_id in expired
                if worker_id in self._workers
                and not self._workers[worker_id].stopping
                and self._workers[worker_id].process is not None
            ]
        for process in victims:
            if process.is_alive():
                process.terminate()

    def _sweep_heartbeats(self) -> None:
        now = time.monotonic()
        stale = []
        with self._lock:
            for worker_id, slot in self._workers.items():
                if not slot.live:
                    continue
                age = now - slot.last_seen
                self._m_heartbeat_age.set(age, worker=str(worker_id))
                if (
                    self._heartbeat_timeout is not None
                    and age > self._heartbeat_timeout
                    and slot.process is not None
                    and not slot.stopping
                ):
                    stale.append(slot.process)
        for process in stale:
            if process.is_alive():
                process.terminate()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def route(self, seed: int) -> int:
        """Seed-affine worker routing (Fibonacci hash, cache-friendly)."""
        return ((seed * _HASH_MULTIPLIER) & 0xFFFFFFFF) % self.num_workers

    def _pick_worker_locked(
        self, seed: int, preferred: Optional[int] = None
    ) -> Optional[int]:
        """Routing over the *live* worker set (affinity rebuilt on death).

        Returns ``None`` at zero live workers — the caller degrades to
        inline coordinator execution.
        """
        live = self._live_ids_locked()
        if not live:
            return None
        if preferred is not None and preferred in live:
            return preferred
        scrambled = (seed * _HASH_MULTIPLIER) & 0xFFFFFFFF
        return live[scrambled % len(live)]

    def _send_batch(self, slot, batch_id: int, batch: _PendingBatch) -> None:
        if self.fault_plan is not None:
            rule = self.fault_plan.fire(
                "frontend.dispatch", worker=slot.worker_id
            )
            if rule is not None:
                if rule.action == DROP:
                    return  # the deadline sweep re-routes it
                if rule.action == DELAY:
                    time.sleep(rule.seconds)
        try:
            slot.queue.put((BATCH, batch_id, batch.requests))
        except _QUEUE_ERRORS:
            # worker died mid-send; the death/deadline sweeps re-route
            pass

    def _dispatch(
        self, worker_id: int, requests: Sequence[QueryRequest]
    ) -> Future:
        """Enqueue one batch (preferring ``worker_id``); future resolves to
        the result list (or fails — shedding, retry exhaustion)."""
        future: Future = Future()
        count = len(requests)
        seed = requests[0].seed if requests else 0
        slot = None
        batch_id = -1
        with self._lock:
            if self._closed:
                future.set_exception(ServeError("frontend is closed"))
                return future
            if self._in_flight + count > self.max_in_flight:
                self._m_shed.inc(count)
                future.set_exception(
                    LoadShedError(self._in_flight, self.max_in_flight)
                )
                return future
            self._in_flight += count
            self._m_in_flight.set(float(self._in_flight))
            span = (
                self.tracer.start_leaf(
                    "serve.mp.batch", worker=worker_id, size=count
                )
                if self.tracer.enabled
                else None
            )
            batch = _PendingBatch(future, requests, span, time.perf_counter())
            target = self._pick_worker_locked(seed, preferred=worker_id)
            if target is not None:
                batch_id = self._next_batch_id
                self._next_batch_id += 1
                batch.worker_id = target
                if self._request_timeout is not None:
                    batch.deadline = time.monotonic() + self._request_timeout
                self._batches[batch_id] = batch
                slot = self._workers[target]
        for request in requests:
            self._m_requests.inc(kind=request.kind)
        self._m_batch_size.observe(float(count))
        if slot is None:
            self._run_inline(batch)
        else:
            self._m_batches.inc(worker=str(slot.worker_id))
            self._send_batch(slot, batch_id, batch)
        return future

    def _retry_batch(self, batch: _PendingBatch) -> None:
        """Re-dispatch an orphaned batch (new id, rebuilt affinity).

        The original future and admission charge are reused — a retry is
        the same request, not new traffic.  Bit-identity of the re-execution
        is the engine's RNG contract: answers derive from
        ``(rng_seed, seed, length)``, not from the worker or batch id.
        """
        batch.retries += 1
        self._m_retries.inc(float(batch.count))
        if self.tracer.enabled:
            span = self.tracer.start_leaf(
                "serve.retry", size=batch.count, attempt=batch.retries
            )
            self.tracer.finish_leaf(span)
        if batch.retries > self._max_retries:
            self._settle_failure(
                batch,
                ServeError(
                    f"batch failed after {batch.retries} attempts "
                    f"(max_retries={self._max_retries})"
                ),
            )
            return
        seed = batch.requests[0].seed if batch.requests else 0
        slot = None
        batch_id = -1
        with self._lock:
            if self._closed:
                self._settle_failure_locked(
                    batch, ServeError("frontend closed with the batch in flight")
                )
                return
            target = self._pick_worker_locked(seed)
            if target is not None:
                batch_id = self._next_batch_id
                self._next_batch_id += 1
                batch.worker_id = target
                if self._request_timeout is not None:
                    batch.deadline = time.monotonic() + self._request_timeout
                self._batches[batch_id] = batch
                slot = self._workers[target]
        if slot is None:
            self._run_inline(batch)
        else:
            self._m_batches.inc(worker=str(slot.worker_id))
            self._send_batch(slot, batch_id, batch)

    # ------------------------------------------------------------------
    # Inline (0-live-worker) execution
    # ------------------------------------------------------------------

    def _ensure_inline_locked(self) -> RequestBatcher:
        """Build/refresh the coordinator-side serving stack.

        Attaches the *latest published generation* — not the live write
        engine, which may already be ahead of what workers were serving —
        through the same QueryEngine + RequestBatcher stack a worker
        runs, so inline answers are bit-identical to worker answers.
        """
        generation, snapshot = self._latest
        if (
            self._inline_batcher is not None
            and self._inline_generation == generation
        ):
            return self._inline_batcher
        from repro.store.persistence import attach_engine

        if self._inline_batcher is not None:
            self._inline_batcher.close()
            self._inline_batcher = None
        if self._inline_engine is not None:
            self._inline_engine.detach()
            self._inline_engine = None
        attached = attach_engine(snapshot, validate=False)
        config = self.config
        self._inline_engine = QueryEngine(
            attached,
            rng_seed=config.rng_seed,
            result_capacity=config.result_capacity,
            cache_results=config.cache_results,
            share_fetches=config.share_fetches,
            use_kernel=config.use_kernel,
            alpha=config.alpha,
            c=config.c,
        )
        self._inline_batcher = RequestBatcher(
            self._inline_engine,
            max_workers=config.worker_threads,
            max_queue_depth=config.max_queue_depth,
            max_kernel_batch=config.max_kernel_batch,
        )
        self._inline_generation = generation
        return self._inline_batcher

    def _run_inline(self, batch: _PendingBatch) -> None:
        """Degraded mode: answer on the coordinator, synchronously."""
        self._m_inline.inc(float(batch.count))
        try:
            with self._inline_lock:
                batcher = self._ensure_inline_locked()
                results = batcher.run(list(batch.requests))
        except Exception as exc:  # noqa: BLE001
            self._settle_failure(
                batch, ServeError(f"inline execution failed: {exc}")
            )
            return
        self._m_latency.observe(time.perf_counter() - batch.started)
        self.tracer.finish_leaf(batch.span)
        with self._lock:
            self._in_flight -= batch.count
            self._m_in_flight.set(float(self._in_flight))
        if not batch.future.done():
            batch.future.set_result(results)

    def _settle_failure_locked(self, batch: _PendingBatch, exc) -> None:
        self._in_flight -= batch.count
        self._m_in_flight.set(float(self._in_flight))
        self.tracer.finish_leaf(batch.span)
        if not batch.future.done():
            batch.future.set_exception(exc)

    def _settle_failure(self, batch: _PendingBatch, exc) -> None:
        with self._lock:
            self._settle_failure_locked(batch, exc)

    # ------------------------------------------------------------------
    # Public request API
    # ------------------------------------------------------------------

    def submit(self, request: QueryRequest) -> Future:
        """Admit one request; the future resolves to its result.

        Sheds with :class:`LoadShedError` past ``max_in_flight``.  The
        worker-side batcher may *also* shed under its own window; that
        surfaces as a ``None`` result (the batcher's drain contract).
        """
        batch_future = self._dispatch(self.route(request.seed), [request])
        outer: Future = Future()

        def _unwrap(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                outer.set_exception(exc)
            else:
                outer.set_result(done.result()[0])

        batch_future.add_done_callback(_unwrap)
        return outer

    def run(
        self, requests: Sequence[QueryRequest]
    ) -> List[Optional[object]]:
        """Answer a wave of requests; results in request order.

        Requests are grouped seed-affine into one batch per worker —
        inside each worker the whole group is answered by the batcher's
        one-kernel-per-drain path.  Shed groups (frontend window) and
        shed requests (worker window) yield ``None``; unrecoverable
        worker failures propagate as :class:`ServeError`.
        """
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self.route(request.seed), []).append(index)
        futures = {
            worker_id: self._dispatch(
                worker_id, [requests[i] for i in indices]
            )
            for worker_id, indices in groups.items()
        }
        results: List[Optional[object]] = [None] * len(requests)
        for worker_id, indices in groups.items():
            try:
                values = futures[worker_id].result()
            except LoadShedError:
                continue
            for index, value in zip(indices, values):
                results[index] = value
        return results

    # ------------------------------------------------------------------
    # asyncio façade
    # ------------------------------------------------------------------

    async def asubmit(self, request: QueryRequest):
        """``await``-able :meth:`submit` (for event-loop servers)."""
        return await asyncio.wrap_future(self.submit(request))

    async def arun(self, requests: Sequence[QueryRequest]):
        """``await``-able :meth:`run`: same grouping, loop stays free."""
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(self.route(request.seed), []).append(index)
        results: List[Optional[object]] = [None] * len(requests)

        async def _gather(worker_id: int, indices: List[int]) -> None:
            future = self._dispatch(
                worker_id, [requests[i] for i in indices]
            )
            try:
                values = await asyncio.wrap_future(future)
            except LoadShedError:
                return
            for index, value in zip(indices, values):
                results[index] = value

        await asyncio.gather(
            *(_gather(w, idx) for w, idx in groups.items())
        )
        return results

    # ------------------------------------------------------------------
    # Epoch bump
    # ------------------------------------------------------------------

    def publish_epoch(self, timeout: float = 120.0) -> int:
        """Publish the engine's current state and swap every worker to it.

        Blocks until all live workers ack the swap (the FIFO queue
        guarantees batches enqueued before the bump were answered from
        the old generation).  Workers that die mid-barrier are released
        from it — their respawn attaches the new generation directly.
        Old generations beyond ``retain`` are pruned only after the acks,
        so no worker is still attaching to a pruned directory.  The
        registered barrier waiter is removed on *every* exit path
        (timeout, publish failure), so a late ack can never corrupt the
        next barrier.  Returns the new generation.
        """
        with self._lock:
            if self._closed:
                raise ServeError("frontend is closed")
            epoch_id = self._next_epoch_id = self._next_epoch_id + 1
            live = self._live_ids_locked()
            wait = _EpochWait(set(live))
            self._epochs[epoch_id] = wait
        try:
            generation, snapshot = self.publisher.publish(
                self.engine, prune=False
            )
            with self._lock:
                self._latest = (generation, snapshot)
                targets = [
                    self._workers[worker_id]
                    for worker_id in live
                    if worker_id in self._workers
                ]
            for slot in targets:
                try:
                    slot.queue.put((EPOCH, epoch_id, generation, str(snapshot)))
                except _QUEUE_ERRORS:
                    with self._lock:
                        wait.pending.discard(slot.worker_id)
                        if not wait.pending:
                            wait.event.set()
            if wait.pending and not wait.event.wait(timeout):
                raise ServeError(
                    f"epoch {generation} not acked within {timeout:.0f}s "
                    f"(workers pending: {sorted(wait.pending)})"
                )
        finally:
            # the waiter must never outlive this call: a leak here would
            # let a late ack for epoch N complete barrier N+1 early
            with self._lock:
                self._epochs.pop(epoch_id, None)
        if wait.errors:
            raise ServeError(
                f"epoch {generation} failed on some workers: "
                + "; ".join(wait.errors)
            )
        self.generation = generation
        self._m_generation.set(float(generation))
        self._m_epochs.inc()
        if self.wal is not None:
            # the snapshot durably contains everything the log described
            self.wal.truncate()
        # Prune only below the oldest generation any slot still references.
        # A slot mid-respawn keeps its pre-death generation (a lower bound
        # for the generation its replacement is attaching), so count-based
        # retention alone could delete a respawn's target when two
        # publishes land inside one slow spawn window — every attach then
        # dies with INIT_ERROR and the retry loop burns the worker's
        # breaker budget on a race it didn't cause.
        with self._lock:
            in_use = [
                slot.generation
                for slot in self._workers.values()
                if not slot.tripped
            ]
        oldest = min(in_use, default=generation)
        self.publisher.prune(
            keep=max(self.publisher.retain, generation - oldest + 1)
        )
        return generation

    # ------------------------------------------------------------------
    # Response reader
    # ------------------------------------------------------------------

    def _read_responses(self) -> None:
        """Multiplex every worker's private response pipe (reader thread).

        One pipe per worker — never one queue shared by all of them.  A
        shared ``mp.Queue`` serialises writers through one cross-process
        ``writelock``; a worker killed while its queue feeder holds that
        lock (SIGKILL mid-send, the deadline sweep's ``terminate``, an
        injected ``kill`` fault) leaves the lock held forever and wedges
        every surviving writer *and* the coordinator's own puts — the
        exact failure mode the chaos battery reproduces.  With private
        pipes a dying writer can only damage its own channel, which this
        loop observes as EOF/corruption on that one connection and
        handles by dropping it (the supervisor's sentinel watch owns the
        actual death repair).  The conn set is rebuilt every iteration so
        respawned workers' fresh pipes are picked up within
        ``sweep_interval``; the stop pipe makes :meth:`close` prompt.
        """
        stop = self._reader_stop_recv
        while True:
            with self._lock:
                conns = {
                    slot.conn: worker_id
                    for worker_id, slot in self._workers.items()
                    if slot.conn is not None
                }
            try:
                fired = multiprocessing.connection.wait(
                    [stop, *conns], timeout=self._sweep_interval
                )
            except (OSError, ValueError):
                # a conn was closed under us (respawn swap / close); the
                # next iteration rebuilds the set without it
                if self._closed:
                    return
                continue
            for conn in fired:
                if conn is stop:
                    return
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # sole writer died (possibly mid-send): retire the
                    # pipe; the supervisor repairs the worker itself
                    with self._lock:
                        worker_id = conns.get(conn)
                        slot = (
                            self._workers.get(worker_id)
                            if worker_id is not None
                            else None
                        )
                        if slot is not None and slot.conn is conn:
                            slot.conn = None
                    try:
                        conn.close()
                    except _QUEUE_ERRORS:  # pragma: no cover
                        pass
                    continue
                self._dispatch_message(message)

    def _dispatch_message(self, message) -> None:
        tag = message[0]
        if len(message) > 1 and isinstance(message[1], int):
            with self._lock:
                slot = self._workers.get(message[1])
                if slot is not None:
                    slot.last_seen = time.monotonic()
        if tag == RESULT:
            self._on_result(message)
        elif tag == ERROR:
            self._on_error(message)
        elif tag == EPOCH_OK:
            self._on_epoch_ok(message)
        elif tag == READY:
            self._on_ready(message)
        elif tag == STOPPED:
            self._on_stopped(message)
        # HEARTBEAT needs no handling beyond the last_seen stamp above;
        # unknown tags are ignored

    def _pop_batch(self, batch_id: int) -> Optional[_PendingBatch]:
        with self._lock:
            batch = self._batches.pop(batch_id, None)
            if batch is not None:
                self._in_flight -= batch.count
                self._m_in_flight.set(float(self._in_flight))
        return batch

    def _on_result(self, message) -> None:
        _, worker_id, batch_id, results, spans = message
        batch = self._pop_batch(batch_id)
        if batch is None:
            # late reply: the batch was re-routed after a presumed-dead
            # worker answered anyway, or the frontend closed — either
            # way the authoritative resolution happened elsewhere
            return
        self._m_latency.observe(time.perf_counter() - batch.started)
        if spans:
            grafted = self.tracer.graft(
                spans, parent=batch.span, origin=f"worker-{worker_id}"
            )
            self._m_grafted.inc(grafted)
        self.tracer.finish_leaf(batch.span)
        if not batch.future.done():
            batch.future.set_result(results)

    def _on_error(self, message) -> None:
        _, worker_id, batch_id, (type_name, text) = message
        self._m_errors.inc(worker=str(worker_id))
        if batch_id < 0:
            # an epoch swap failed on this worker (it keeps serving the
            # old generation); unblock the barrier with the error recorded
            with self._lock:
                wait = self._epochs.get(-batch_id)
                if wait is not None:
                    wait.errors.append(
                        f"worker {worker_id}: {type_name}: {text}"
                    )
                    wait.pending.discard(worker_id)
                    if not wait.pending:
                        wait.event.set()
            return
        batch = self._pop_batch(batch_id)
        if batch is None:  # pragma: no cover - late reply after re-route
            return
        self.tracer.finish_leaf(batch.span)
        if not batch.future.done():
            batch.future.set_exception(
                ServeError(f"worker {worker_id} failed: {type_name}: {text}")
            )

    def _on_epoch_ok(self, message) -> None:
        _, worker_id, epoch_id, generation = message
        resync = None
        with self._lock:
            slot = self._workers.get(worker_id)
            if slot is not None:
                slot.generation = generation
            if epoch_id == 0:  # supervisor re-sync bump, no barrier
                if slot is None or slot.stopping or slot.tripped:
                    return
                latest_generation, snapshot = self._latest
                if generation < latest_generation:
                    # another publish landed while the worker was
                    # swapping; it is still stale — bump it again and
                    # keep it out of rotation
                    resync = (slot.queue, latest_generation, snapshot)
                elif slot.starting:
                    slot.live = True
                    slot.starting = False
                    self._refresh_worker_gauge_locked()
            else:
                wait = self._epochs.get(epoch_id)
                if wait is None:  # timed-out/failed epoch: late ack
                    return
                wait.pending.discard(worker_id)
                if not wait.pending:
                    wait.event.set()
        if resync is not None:
            self._send_resync(resync)

    def _on_ready(self, message) -> None:
        """A respawned worker came up; re-sync it to the current epoch.

        If a publish landed between the respawn and this READY, the
        worker attached a generation older than the published one.  It
        must NOT serve yet — the FIFO queue would answer any batch
        dispatched before the bump from the stale arenas, breaking the
        answers-come-from-the-published-epoch contract — so it stays in
        ``starting`` (unpickable) until :meth:`_on_epoch_ok` sees its
        barrier-free swap ack land on the latest generation.
        """
        _, worker_id, generation = message
        resync = None
        with self._lock:
            slot = self._workers.get(worker_id)
            if slot is None or slot.stopping or slot.tripped:
                return
            slot.generation = generation
            latest_generation, snapshot = self._latest
            if generation < latest_generation:
                resync = (slot.queue, latest_generation, snapshot)
            else:
                slot.live = True
                slot.starting = False
            self._refresh_worker_gauge_locked()
        if resync is not None:
            self._send_resync(resync)

    def _send_resync(self, resync) -> None:
        queue, latest_generation, snapshot = resync
        try:
            queue.put((EPOCH, 0, latest_generation, str(snapshot)))
        except _QUEUE_ERRORS:  # pragma: no cover - raced death
            pass

    def _on_stopped(self, message) -> None:
        with self._lock:
            slot = self._workers.get(message[1])
            if slot is not None:
                slot.live = False
            self._refresh_worker_gauge_locked()

    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def live_workers(self) -> List[int]:
        """Ids of workers currently serving (live, breaker closed)."""
        with self._lock:
            return self._live_ids_locked()

    def worker_restarts(self, worker_id: int) -> int:
        with self._lock:
            slot = self._workers.get(worker_id)
            return 0 if slot is None else slot.restarts

    def __repr__(self) -> str:
        return (
            f"MultiProcessFrontend(workers={self.num_workers}, "
            f"live={len(self.live_workers)}, "
            f"generation={self.generation}, in_flight={self.in_flight}, "
            f"closed={self._closed})"
        )
