"""Hash-sharded walk-index engine — partition-parallel storage + repair.

Bahmani et al. store walk fragments in a distributed key-value store keyed
by the segment's start node and repair them independently per node; this
module brings that partitioning axis to the local storage engine.
:class:`ShardedWalkIndex` is an array of
:class:`~repro.core.columnar.ColumnarWalkStore` shards behind the same
:class:`~repro.core.walks.WalkIndex` protocol (DESIGN.md §6, §9):

* **Placement** — a segment lives on ``shard_of(source)`` (the same
  splittable Fibonacci hash :class:`~repro.store.sharded.ShardedGraphBackend`
  uses for adjacency rows), so a §3 *fetch* — "all R segments starting at
  u" — is a single-shard read.  Every shard spans the global node-id space:
  its visit index covers the nodes *its own* segments visit, and
  cross-shard aggregates (``X(v)``, ``W(v)``, side counters) are sums of
  per-shard columns.
* **Global segment ids** — ids are assigned in arrival order exactly as a
  single-shard store would assign them; per-shard local ids map back
  through monotone ``local → global`` tables.  Because the map is monotone,
  a shard's ascending local enumeration stays ascending after translation,
  and a k-way merge of per-shard rows reproduces the protocol's normative
  enumeration order bit-for-bit.  Results are therefore **identical for
  any shard count** under the same seeded RNG — the engines never draw
  randomness inside the store, and every enumeration they draw randomness
  *over* is shard-count-invariant.  ``tests/test_backend_fuzz.py`` pins
  this down for shards ∈ {1, 2, 4, 7}.
* **Parallel batch repair** — :meth:`apply_segment_updates` groups a batch
  by shard and fans the per-shard work (payload writes + the vectorized
  index rebuild) out over a worker pool.  Workers are plain threads: the
  rebuild is dominated by ``lexsort`` / ``take`` passes that release the
  GIL, so shards repair concurrently on multi-core hosts.  Parallelism
  never touches RNG (tails are simulated by the engine *before* the store
  call), so worker scheduling cannot perturb results.
* **Parallel cold build** — :meth:`bulk_add_segments` on an empty store
  partitions the flat segment block per shard and builds each shard's
  arena + index concurrently; with ``cold_build="process"`` the block is
  shipped through POSIX shared memory to a ``ProcessPoolExecutor`` so even
  GIL-bound portions scale (falling back to in-process build if the host
  forbids subprocesses).

Persistence: a sharded store snapshots as *per-shard arenas plus a
manifest* (format v3, DESIGN.md §8) via
:func:`repro.store.persistence.save_walk_store`; it can also export
global-order columns (:meth:`to_arrays`) and therefore downgrade-save to
v2/v1 losslessly.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.core.columnar import (
    ColumnarWalkStore,
    _flatten_block,
    _normalize_bulk_args,
)
from repro.core.walks import END_DANGLING, END_RESET, WalkSegment
from repro.errors import ConfigurationError, WalkStateError

__all__ = [
    "BACKEND_SHARDED",
    "DEFAULT_NUM_SHARDS",
    "ShardedWalkIndex",
    "parse_sharded_backend",
]

BACKEND_SHARDED = "sharded"
DEFAULT_NUM_SHARDS = 4

#: Below this many updates a parallel fan-out costs more than it saves.
_PARALLEL_UPDATE_THRESHOLD = 256
#: Below this many cold-build segments the per-shard fan-out runs inline.
_PARALLEL_BUILD_THRESHOLD = 1024

COLD_BUILD_THREAD = "thread"
COLD_BUILD_PROCESS = "process"


def parse_sharded_backend(backend: str) -> Optional[int]:
    """Shard count encoded in a backend name, or None if not sharded.

    ``"sharded"`` selects :data:`DEFAULT_NUM_SHARDS`; ``"sharded:K"``
    selects ``K`` shards.  Anything else returns ``None`` so callers fall
    through to the flat backends.
    """
    if backend == BACKEND_SHARDED:
        return DEFAULT_NUM_SHARDS
    if backend.startswith(BACKEND_SHARDED + ":"):
        spec = backend[len(BACKEND_SHARDED) + 1 :]
        try:
            num_shards = int(spec)
        except ValueError:
            raise ConfigurationError(
                f"sharded backend spec must be 'sharded' or 'sharded:<count>', "
                f"got {backend!r}"
            ) from None
        if num_shards <= 0:
            raise ConfigurationError(
                f"shard count must be positive, got {num_shards}"
            )
        return num_shards
    return None


def _grown(array: np.ndarray, capacity: int) -> np.ndarray:
    out = np.zeros(capacity, dtype=array.dtype)
    out[: array.size] = array
    return out


def _shard_ids(nodes, num_shards: int):
    """Fibonacci-hash shard routing (vectorized; scalar ints work too).

    The single definition all placement, bulk routing, and manifest
    validation share — persisted v3 snapshots bake this mapping in, so
    every caller must agree forever.  Mirrors
    :meth:`repro.store.sharded.ShardedGraphBackend.shard_of`.
    """
    return ((nodes * 0x9E3779B9) & 0xFFFFFFFF) % num_shards


def _build_shard_from_shm(args) -> ColumnarWalkStore:
    """Process-pool worker: build one shard from a shared-memory block."""
    from multiprocessing import shared_memory

    (shm_name, flat_size, lengths, reasons, parities, num_nodes, track_sides) = args
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        flat = np.ndarray((flat_size,), dtype=np.int64, buffer=shm.buf).copy()
    finally:
        shm.close()
    return ColumnarWalkStore.from_arrays(
        flat,
        lengths,
        reasons,
        parities,
        num_nodes=num_nodes,
        track_sides=track_sides,
    )


class ShardedWalkIndex:
    """Hash-partitioned array of columnar shards behind ``WalkIndex``."""

    def __init__(
        self,
        num_nodes: int = 0,
        *,
        track_sides: bool = False,
        num_shards: int = DEFAULT_NUM_SHARDS,
        max_workers: Optional[int] = None,
        cold_build: str = COLD_BUILD_THREAD,
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError(
                f"num_shards must be positive, got {num_shards}"
            )
        if max_workers is not None and max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        if cold_build not in (COLD_BUILD_THREAD, COLD_BUILD_PROCESS):
            raise ConfigurationError(
                f"cold_build must be '{COLD_BUILD_THREAD}' or "
                f"'{COLD_BUILD_PROCESS}', got {cold_build!r}"
            )
        self.track_sides = track_sides
        self.num_shards = num_shards
        #: None = auto (min(shards, cpus)); 1 = always serial.
        self.max_workers = max_workers
        self.cold_build = cold_build
        self.shards = [
            ColumnarWalkStore(num_nodes, track_sides=track_sides)
            for _ in range(num_shards)
        ]
        self._num_nodes = num_nodes
        # -- global-id maps --------------------------------------------
        self._seg_shard = np.zeros(64, dtype=np.int32)  # global -> shard
        self._seg_local = np.zeros(64, dtype=np.int64)  # global -> local
        self._globals = [np.zeros(16, dtype=np.int64) for _ in range(num_shards)]
        self._globals_used = [0] * num_shards  # local -> global fill level
        self._num_segments = 0
        self._executor: Optional[Executor] = None
        #: Optional StageProfiler billing per-shard repair time (obs plane).
        self._profiler = None
        #: True when the shards are read-only attaches over shared arenas.
        self._readonly = False

    def bind_profiler(self, profiler) -> None:
        """Attach a :class:`~repro.obs.StageProfiler` for repair fan-out.

        When profiling is enabled, each shard's share of a batched
        ``apply_segment_updates`` bills one ``shard_repair`` observation,
        so the fan-out's balance is visible as a histogram."""
        self._profiler = profiler

    @property
    def readonly(self) -> bool:
        """True when this index is a read-only attach over shared arenas."""
        return self._readonly

    def _check_writable(self) -> None:
        if self._readonly:
            raise WalkStateError(
                "store is attached read-only over a shared arena; mutations "
                "must go through the owning coordinator process"
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def shard_of(self, node: int) -> int:
        """Shard owning segments that *start* at ``node`` (Fibonacci hash)."""
        return int(_shard_ids(node, self.num_shards))

    def _pool(self) -> Optional[Executor]:
        """The lazily created repair worker pool (None = run serial).

        ``max_workers=None`` is "auto": min(shard count, CPU count) — a
        single-core host or single-shard store stays serial for free.
        """
        workers = (
            os.cpu_count() or 1 if self.max_workers is None else self.max_workers
        )
        workers = min(workers, self.num_shards)
        if workers <= 1:
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            )
            # the engines never tear stores down explicitly, so an
            # abandoned store must not strand its (idle, non-daemon)
            # worker threads until process exit
            weakref.finalize(self, self._executor.shutdown, wait=False)
        return self._executor

    def shutdown(self) -> None:
        """Stop the worker pool (safe to call repeatedly; pool is lazy)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_segments(self) -> int:
        return self._num_segments

    @property
    def total_visits(self) -> int:
        return sum(shard.total_visits for shard in self.shards)

    def ensure_node(self, node: int) -> None:
        if node < self._num_nodes:
            return
        # Broadcast so every shard's per-node columns stay aligned and
        # cross-shard aggregates are plain array sums.
        for shard in self.shards:
            shard.ensure_node(node)
        self._num_nodes = node + 1

    # ------------------------------------------------------------------
    # Global-id bookkeeping
    # ------------------------------------------------------------------

    def _check_id(self, segment_id: int) -> None:
        if not 0 <= segment_id < self._num_segments:
            raise WalkStateError(f"unknown segment id {segment_id}")

    def _route(self, segment_id: int) -> tuple[ColumnarWalkStore, int]:
        self._check_id(segment_id)
        shard_index = int(self._seg_shard[segment_id])
        return self.shards[shard_index], int(self._seg_local[segment_id])

    def _record_segment(self, shard_index: int, local_id: int) -> int:
        """Assign the next global id to (shard, local); returns it."""
        global_id = self._num_segments
        if global_id == self._seg_shard.size:
            capacity = 2 * self._seg_shard.size
            self._seg_shard = _grown(self._seg_shard, capacity)
            self._seg_local = _grown(self._seg_local, capacity)
        self._seg_shard[global_id] = shard_index
        self._seg_local[global_id] = local_id
        used = self._globals_used[shard_index]
        table = self._globals[shard_index]
        if used == table.size:
            self._globals[shard_index] = table = _grown(table, 2 * table.size)
        if local_id != used:
            raise WalkStateError(
                f"shard {shard_index} assigned local id {local_id}, "
                f"expected {used}"
            )
        table[used] = global_id
        self._globals_used[shard_index] = used + 1
        self._num_segments = global_id + 1
        return global_id

    def _to_global(self, shard_index: int, local_ids) -> np.ndarray:
        """Translate a shard's local ids (any sequence) to global ids."""
        table = self._globals[shard_index]
        index = np.asarray(local_ids, dtype=np.int64)
        return table[index]

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def add_segment(self, segment: WalkSegment) -> int:
        """Register a fresh segment on its source's shard; returns its id."""
        self._check_writable()
        self.ensure_node(max(segment.nodes))
        shard_index = self.shard_of(segment.source)
        local_id = self.shards[shard_index].add_segment(segment)
        return self._record_segment(shard_index, local_id)

    def bulk_add_segments(
        self,
        segments: Sequence[Sequence[int]],
        end_reasons: Sequence[int],
        parity_offset: Union[int, Sequence[int]] = 0,
    ) -> None:
        """Register many fresh segments at once (ids assigned in order).

        On an empty store the per-shard blocks are built with the columnar
        vectorized install, fanned out across the worker pool (threads, or
        subprocesses via shared memory when ``cold_build="process"``).
        """
        self._check_writable()
        count = len(segments)
        if count == 0:
            return
        reasons, parities = _normalize_bulk_args(
            segments, end_reasons, parity_offset
        )
        if self._num_segments:
            for nodes, reason, parity in zip(segments, reasons, parities):
                self.add_segment(
                    WalkSegment(list(nodes), int(reason), parity_offset=int(parity))
                )
            return
        flat, lengths = _flatten_block(segments, count)
        self._install_block(flat, lengths, reasons, parities)

    def _install_block(
        self,
        flat: np.ndarray,
        lengths: np.ndarray,
        reasons: np.ndarray,
        parities: np.ndarray,
    ) -> None:
        """Partition a global segment block by source shard and build.

        The whole block is validated *before* any map or shard state is
        written, so a rejected block leaves the store untouched (the
        per-shard ``_append_block`` re-checks, but by then the maps would
        already be populated).
        """
        if self._num_segments:
            raise WalkStateError("bulk install requires an empty store")
        count = int(lengths.size)
        total = int(flat.size)
        if int(lengths.sum()) != total:
            raise WalkStateError("corrupt block: arena length mismatch")
        if count and int(lengths.min()) < 1:
            raise WalkStateError("a walk segment must contain at least its source")
        if not np.isin(reasons, (END_RESET, END_DANGLING)).all():
            raise WalkStateError("corrupt block: unknown end reason")
        if total:
            if int(flat.min()) < 0:
                raise WalkStateError("corrupt block: negative node id")
            self.ensure_node(int(flat.max()))
        offsets = np.cumsum(lengths) - lengths
        sources = flat[offsets] if count else np.zeros(0, dtype=np.int64)
        shard_ids = _shard_ids(sources, self.num_shards)
        # Global ids are arrival order (0 … count−1); a shard's members
        # (ascending global ids) get locals 0, 1, 2, … in the same order,
        # so every local → global table is monotone by construction.
        shard_blocks: list[Optional[tuple]] = [None] * self.num_shards
        if count > self._seg_shard.size:
            self._seg_shard = _grown(self._seg_shard, count)
            self._seg_local = _grown(self._seg_local, count)
        self._seg_shard[:count] = shard_ids
        local_ids = np.zeros(count, dtype=np.int64)
        for shard_index in range(self.num_shards):
            members = np.flatnonzero(shard_ids == shard_index)
            local_ids[members] = np.arange(members.size, dtype=np.int64)
            table = self._globals[shard_index]
            if members.size > table.size:
                table = np.zeros(max(int(members.size), 16), dtype=np.int64)
            table[: members.size] = members
            self._globals[shard_index] = table
            self._globals_used[shard_index] = int(members.size)
            if members.size == 0:
                continue
            member_lengths = lengths[members]
            gather = np.repeat(
                offsets[members] - (np.cumsum(member_lengths) - member_lengths),
                member_lengths,
            ) + np.arange(int(member_lengths.sum()), dtype=np.int64)
            shard_blocks[shard_index] = (
                flat[gather],
                member_lengths,
                reasons[members],
                parities[members],
            )
        self._seg_local[:count] = local_ids
        self._num_segments = count
        self._build_shards(shard_blocks)

    def _build_shards(self, shard_blocks: list) -> None:
        """Install per-shard blocks, in parallel when configured."""
        populated = [i for i, block in enumerate(shard_blocks) if block is not None]
        total = sum(int(shard_blocks[i][1].sum()) for i in populated)
        pool = self._pool() if total >= _PARALLEL_BUILD_THRESHOLD else None
        if (
            pool is not None
            and self.cold_build == COLD_BUILD_PROCESS
            and len(populated) > 1
        ):
            if self._build_shards_process(shard_blocks, populated):
                return
        if pool is not None and len(populated) > 1:

            def build(shard_index: int) -> None:
                flat, lengths, reasons, parities = shard_blocks[shard_index]
                self.shards[shard_index]._append_block(
                    flat, lengths, reasons, parities
                )

            list(pool.map(build, populated))
            return
        for shard_index in populated:
            flat, lengths, reasons, parities = shard_blocks[shard_index]
            self.shards[shard_index]._append_block(flat, lengths, reasons, parities)

    def _build_shards_process(self, shard_blocks: list, populated: list) -> bool:
        """Cold build via subprocesses + shared memory; False on failure.

        Each shard's flat arena travels through one POSIX shared-memory
        block (no pickling of the payload); the built shard comes back
        pickled.  Hosts that forbid subprocesses (sandboxes, some CI
        runners) make this return False so the caller falls back to the
        in-process thread build — the result is identical either way.
        """
        from concurrent.futures.process import BrokenProcessPool

        blocks = []
        try:
            try:
                from multiprocessing import shared_memory

                args = []
                for shard_index in populated:
                    flat, lengths, reasons, parities = shard_blocks[shard_index]
                    shm = shared_memory.SharedMemory(
                        create=True, size=max(int(flat.nbytes), 1)
                    )
                    blocks.append(shm)
                    np.ndarray(flat.shape, dtype=np.int64, buffer=shm.buf)[:] = flat
                    args.append(
                        (
                            shm.name,
                            int(flat.size),
                            lengths,
                            reasons,
                            parities,
                            self._num_nodes,
                            self.track_sides,
                        )
                    )
                workers = min(
                    self.max_workers or (os.cpu_count() or 1),
                    len(populated),
                    os.cpu_count() or 1,
                )
                with ProcessPoolExecutor(max_workers=max(workers, 1)) as pool:
                    built = list(pool.map(_build_shard_from_shm, args))
            finally:
                for shm in blocks:
                    shm.close()
                    shm.unlink()
        except (ImportError, OSError, BrokenProcessPool):
            return False
        for shard_index, store in zip(populated, built):
            self.shards[shard_index] = store
        return True

    def get(self, segment_id: int) -> WalkSegment:
        """A *materialized copy* of the segment (mutations via the store)."""
        shard, local_id = self._route(segment_id)
        return shard.get(local_id)

    def replace_suffix(
        self,
        segment_id: int,
        keep_until: int,
        new_suffix: list[int],
        end_reason: int,
    ) -> None:
        if new_suffix:
            self.ensure_node(max(new_suffix))
        shard, local_id = self._route(segment_id)
        shard.replace_suffix(local_id, keep_until, new_suffix, end_reason)

    def rebuild_segment(
        self, segment_id: int, nodes: list[int], end_reason: int
    ) -> None:
        self.ensure_node(max(nodes))
        shard, local_id = self._route(segment_id)
        shard.rebuild_segment(local_id, nodes, end_reason)

    def apply_segment_updates(
        self, updates: Sequence[tuple[int, int, list[int], int]]
    ) -> None:
        """Apply many ``(segment_id, keep_until, tail, end_reason)`` rewrites.

        The batch is grouped by owning shard and each shard repairs its
        group independently — concurrently on the worker pool when the
        batch is large enough to amortize the fan-out.  Shards share no
        mutable state, and the tails were simulated by the caller before
        this call, so parallel scheduling cannot change any result.
        """
        self._check_writable()
        if not updates:
            return
        grouped: list[list[tuple[int, int, list[int], int]]] = [
            [] for _ in range(self.num_shards)
        ]
        highest = -1
        for segment_id, keep_until, tail, end_reason in updates:
            self._check_id(segment_id)
            if tail:
                tail_max = max(tail)
                if tail_max > highest:
                    highest = tail_max
            grouped[int(self._seg_shard[segment_id])].append(
                (
                    int(self._seg_local[segment_id]),
                    keep_until,
                    tail,
                    end_reason,
                )
            )
        if highest >= 0:
            self.ensure_node(highest)
        populated = [i for i, group in enumerate(grouped) if group]
        pool = (
            self._pool() if len(updates) >= _PARALLEL_UPDATE_THRESHOLD else None
        )
        profiler = self._profiler
        if profiler is not None and profiler.enabled:
            def repair_shard(i: int) -> None:
                start = perf_counter()
                self.shards[i].apply_segment_updates(grouped[i])
                profiler.record("shard_repair", perf_counter() - start)
        else:
            def repair_shard(i: int) -> None:
                self.shards[i].apply_segment_updates(grouped[i])
        if pool is not None and len(populated) > 1:
            list(pool.map(repair_shard, populated))
            return
        for shard_index in populated:
            repair_shard(shard_index)

    # ------------------------------------------------------------------
    # Per-segment columns
    # ------------------------------------------------------------------

    def segment_length(self, segment_id: int) -> int:
        shard, local_id = self._route(segment_id)
        return shard.segment_length(local_id)

    def segment_view(self, segment_id: int) -> np.ndarray:
        shard, local_id = self._route(segment_id)
        return shard.segment_view(local_id)

    def segment_nodes(self, segment_id: int) -> list[int]:
        shard, local_id = self._route(segment_id)
        return shard.segment_nodes(local_id)

    def end_reason_of(self, segment_id: int) -> int:
        shard, local_id = self._route(segment_id)
        return shard.end_reason_of(local_id)

    def parity_of(self, segment_id: int) -> int:
        shard, local_id = self._route(segment_id)
        return shard.parity_of(local_id)

    def source_of(self, segment_id: int) -> int:
        shard, local_id = self._route(segment_id)
        return shard.source_of(local_id)

    # ------------------------------------------------------------------
    # Queries (cross-shard merges preserve the normative orders)
    # ------------------------------------------------------------------

    def visits_of(self, node: int) -> dict[int, int]:
        """Mapping ``segment id -> visit count``; shards hold disjoint ids."""
        merged: dict[int, int] = {}
        for shard_index, shard in enumerate(self.shards):
            row = shard.visits_of(node)
            if not row:
                continue
            table = self._globals[shard_index]
            for local_id, visit_count in row.items():
                merged[int(table[local_id])] = visit_count
        return merged

    def segment_ids_visiting(self, node: int) -> list[int]:
        """Ids of segments visiting ``node``, ascending (normative order).

        Each shard's row is ascending in local ids; the monotone
        local → global table keeps it ascending after translation, so one
        k-way merge (here: concatenate + sort of already-sorted runs)
        restores the exact single-shard enumeration.
        """
        rows = []
        for shard_index, shard in enumerate(self.shards):
            local_row = shard.segment_ids_visiting(node)
            if local_row:
                rows.append(self._to_global(shard_index, local_row))
        if not rows:
            return []
        if len(rows) == 1:
            return rows[0].tolist()
        return np.sort(np.concatenate(rows), kind="stable").tolist()

    def segments_starting_at(self, node: int) -> list[int]:
        """Ids of segments whose source is ``node``, in insertion order.

        Single-shard read: every segment starting at ``node`` lives on
        ``shard_of(node)`` — the paper's per-node fetch locality.
        """
        shard_index = self.shard_of(node)
        local_row = self.shards[shard_index].segments_starting_at(node)
        if not local_row:
            return []
        return self._to_global(shard_index, local_row).tolist()

    def segment_views_starting_at(self, node: int) -> list[np.ndarray]:
        """Zero-copy node views of ``node``'s segments, in insertion order.

        Single-shard gather: every segment starting at ``node`` lives on
        ``shard_of(node)``, and the monotone local → global id tables make
        the shard-local insertion order the global one, so the owning
        shard's arena slices are returned directly — the paper's per-node
        fetch locality, with no id translation on the hot path.
        """
        return self.shards[self.shard_of(node)].segment_views_starting_at(node)

    def visit_count(self, node: int) -> int:
        return sum(shard.visit_count(node) for shard in self.shards)

    def distinct_segment_count(self, node: int) -> int:
        return sum(shard.distinct_segment_count(node) for shard in self.shards)

    def side_visit_count(self, node: int, side: int) -> int:
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        return sum(shard.side_visit_count(node, side) for shard in self.shards)

    def visit_count_array(self) -> np.ndarray:
        total = np.zeros(self._num_nodes, dtype=np.int64)
        for shard in self.shards:
            counts = shard.visit_count_array()
            total[: counts.size] += counts
        return total

    def side_visit_count_array(self, side: int) -> np.ndarray:
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        total = np.zeros(self._num_nodes, dtype=np.int64)
        for shard in self.shards:
            counts = shard.side_visit_count_array(side)
            total[: counts.size] += counts
        return total

    def iter_segments(self) -> Iterator[tuple[int, WalkSegment]]:
        for segment_id in range(self._num_segments):
            yield segment_id, self.get(segment_id)

    # ------------------------------------------------------------------
    # Interop (persistence, migration, compaction)
    # ------------------------------------------------------------------

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Global-order ``(flat, lengths, end_reasons, parities)`` columns.

        The export is indistinguishable from a single-shard store's — it
        is what lets a sharded store downgrade-save to the v2/v1 formats.
        """
        count = self._num_segments
        lengths = np.zeros(count, dtype=np.int64)
        reasons = np.zeros(count, dtype=np.int8)
        parities = np.zeros(count, dtype=np.int8)
        shard_arrays = [shard.to_arrays() for shard in self.shards]
        for shard_index, (_, s_lengths, s_reasons, s_parities) in enumerate(
            shard_arrays
        ):
            members = self._globals[shard_index][
                : self._globals_used[shard_index]
            ]
            lengths[members] = s_lengths
            reasons[members] = s_reasons
            parities[members] = s_parities
        offsets = np.cumsum(lengths) - lengths
        flat = np.empty(int(lengths.sum()), dtype=np.int64)
        for shard_index, (s_flat, s_lengths, _, _) in enumerate(shard_arrays):
            if s_flat.size == 0:
                continue
            members = self._globals[shard_index][
                : self._globals_used[shard_index]
            ]
            local_offsets = np.cumsum(s_lengths) - s_lengths
            scatter = np.repeat(
                offsets[members] - local_offsets, s_lengths
            ) + np.arange(s_flat.size, dtype=np.int64)
            flat[scatter] = s_flat
        return flat, lengths, reasons, parities

    @classmethod
    def from_arrays(
        cls,
        flat: np.ndarray,
        lengths: np.ndarray,
        end_reasons: np.ndarray,
        parity_offsets: np.ndarray,
        *,
        num_nodes: int = 0,
        track_sides: bool = False,
        num_shards: int = DEFAULT_NUM_SHARDS,
        max_workers: Optional[int] = None,
        cold_build: str = COLD_BUILD_THREAD,
    ) -> "ShardedWalkIndex":
        """Build a sharded store from global-order columnar arrays.

        This is both the v2 → sharded migration path and the cold-build
        entry: segments are routed to shards by source hash and each
        shard's arena + index is built with the vectorized block install.
        """
        store = cls(
            num_nodes,
            track_sides=track_sides,
            num_shards=num_shards,
            max_workers=max_workers,
            cold_build=cold_build,
        )
        store._install_block(
            np.ascontiguousarray(flat, dtype=np.int64),
            np.ascontiguousarray(lengths, dtype=np.int64),
            np.ascontiguousarray(end_reasons, dtype=np.int8),
            np.ascontiguousarray(parity_offsets, dtype=np.int8),
        )
        return store

    def shard_arrays(self) -> list[dict[str, np.ndarray]]:
        """Per-shard compacted columns + global-id tables (v3 manifest)."""
        out = []
        for shard_index, shard in enumerate(self.shards):
            flat, lengths, reasons, parities = shard.to_arrays()
            out.append(
                {
                    "segment_nodes": flat,
                    "segment_lengths": lengths,
                    "segment_end_reasons": reasons,
                    "segment_parities": parities,
                    "global_ids": self._globals[shard_index][
                        : self._globals_used[shard_index]
                    ].copy(),
                }
            )
        return out

    @classmethod
    def from_shard_arrays(
        cls,
        shard_arrays: Sequence[dict],
        *,
        num_nodes: int = 0,
        track_sides: bool = False,
        max_workers: Optional[int] = None,
        copy: bool = True,
    ) -> "ShardedWalkIndex":
        """Adopt per-shard arenas saved by :meth:`shard_arrays` (v3 load).

        Validates the manifest invariants a corrupt snapshot would break —
        global ids must partition ``0 … n−1`` with a monotone table per
        shard, and every segment must hash-route to the shard holding it —
        raising :class:`WalkStateError` instead of corrupting lookups.

        ``copy=False`` builds each shard via
        :meth:`ColumnarWalkStore.from_shared`: the per-shard node arenas
        (typically mmap views of a shared snapshot) are adopted without a
        copy and the resulting index is **read-only** — worker processes
        attach this way so one snapshot's pages back every worker.
        """
        num_shards = len(shard_arrays)
        if num_shards == 0:
            raise WalkStateError("corrupt snapshot: manifest lists no shards")
        store = cls(
            num_nodes,
            track_sides=track_sides,
            num_shards=num_shards,
            max_workers=max_workers,
        )
        counts = [int(block["segment_lengths"].size) for block in shard_arrays]
        total_segments = sum(counts)
        all_globals = []
        for shard_index, block in enumerate(shard_arrays):
            global_ids = np.asarray(block["global_ids"], dtype=np.int64)
            if global_ids.size != counts[shard_index]:
                raise WalkStateError(
                    "corrupt snapshot: shard global-id table length mismatch"
                )
            if global_ids.size and not np.all(global_ids[1:] > global_ids[:-1]):
                raise WalkStateError(
                    "corrupt snapshot: shard global-id table not ascending"
                )
            all_globals.append(global_ids)
        if total_segments:
            combined = np.concatenate(all_globals)
            if (
                combined.size != total_segments
                or np.unique(combined).size != total_segments
                or int(combined.min()) < 0
                or int(combined.max()) != total_segments - 1
            ):
                raise WalkStateError(
                    "corrupt snapshot: shard global ids do not partition "
                    "the segment-id space"
                )
        for shard_index, block in enumerate(shard_arrays):
            lengths = np.ascontiguousarray(
                block["segment_lengths"], dtype=np.int64
            )
            flat = np.ascontiguousarray(block["segment_nodes"], dtype=np.int64)
            if int(lengths.sum()) != int(flat.size):
                raise WalkStateError("corrupt snapshot: arena length mismatch")
            if lengths.size:
                offsets = np.cumsum(lengths) - lengths
                sources = flat[offsets]
                routed = _shard_ids(sources, num_shards)
                if not np.all(routed == shard_index):
                    raise WalkStateError(
                        f"corrupt snapshot: segment placed on shard "
                        f"{shard_index} but hashes elsewhere"
                    )
            reasons = np.ascontiguousarray(
                block["segment_end_reasons"], dtype=np.int8
            )
            shard_parities = np.ascontiguousarray(
                block["segment_parities"], dtype=np.int8
            )
            if copy:
                store.shards[shard_index]._append_block(
                    flat, lengths, reasons, shard_parities
                )
            else:
                store.shards[shard_index] = ColumnarWalkStore.from_shared(
                    flat,
                    lengths,
                    reasons,
                    shard_parities,
                    num_nodes=num_nodes,
                    track_sides=track_sides,
                )
            table = all_globals[shard_index]
            capacity = max(int(table.size), 16)
            store._globals[shard_index] = _grown(table.copy(), capacity)
            store._globals_used[shard_index] = int(table.size)
        if total_segments > store._seg_shard.size:
            store._seg_shard = _grown(store._seg_shard, total_segments)
            store._seg_local = _grown(store._seg_local, total_segments)
        for shard_index, table in enumerate(all_globals):
            store._seg_shard[table] = shard_index
            store._seg_local[table] = np.arange(table.size, dtype=np.int64)
        store._num_segments = total_segments
        highest = max((shard.num_nodes for shard in store.shards), default=0)
        if highest:
            store.ensure_node(highest - 1)
        if not copy:
            store._readonly = True
        return store

    def compact(self) -> None:
        """Squeeze relocation holes out of every shard (ids preserved)."""
        self._check_writable()
        for shard in self.shards:
            shard.compact()

    # ------------------------------------------------------------------
    # Accounting / observability
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        total = sum(shard.memory_bytes() for shard in self.shards)
        total += self._seg_shard.nbytes + self._seg_local.nbytes
        total += sum(table.nbytes for table in self._globals)
        return total

    def memory_stats(self) -> dict:
        per_shard = [shard.memory_stats() for shard in self.shards]
        used = sum(stats["arena_used"] for stats in per_shard)
        live = sum(stats["arena_live"] for stats in per_shard)
        index_used = sum(stats["index_used"] for stats in per_shard)
        index_live = sum(stats["index_live"] for stats in per_shard)
        return {
            "bytes": self.memory_bytes(),
            "num_shards": self.num_shards,
            "arena_capacity": sum(s["arena_capacity"] for s in per_shard),
            "arena_used": used,
            "arena_live": live,
            "arena_utilization": live / used if used else 1.0,
            "index_capacity": sum(s["index_capacity"] for s in per_shard),
            "index_used": index_used,
            "index_live": index_live,
            "index_utilization": index_live / index_used if index_used else 1.0,
            "shard_segments": [shard.num_segments for shard in self.shards],
            "shard_visits": [shard.total_visits for shard in self.shards],
        }

    def shard_load(self) -> list[int]:
        """Stored visits per shard (the hot-shard observable)."""
        return [shard.total_visits for shard in self.shards]

    def load_imbalance(self) -> float:
        """max/mean shard visits (1.0 = perfectly balanced; 0.0 if empty)."""
        loads = self.shard_load()
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return max(loads) / mean

    # ------------------------------------------------------------------
    # Invariant checking
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Check every shard plus the global-id maps (tests run this)."""
        for shard in self.shards:
            shard.check_invariants()
            if shard.num_nodes != self._num_nodes:
                raise WalkStateError("shard node space diverged from store")
        if sum(self._globals_used) != self._num_segments:
            raise WalkStateError("global-id tables diverged from segment count")
        seen = np.zeros(self._num_segments, dtype=bool)
        for shard_index, shard in enumerate(self.shards):
            used = self._globals_used[shard_index]
            if used != shard.num_segments:
                raise WalkStateError(
                    f"shard {shard_index} holds {shard.num_segments} segments "
                    f"but its table lists {used}"
                )
            table = self._globals[shard_index][:used]
            if table.size and not np.all(table[1:] > table[:-1]):
                raise WalkStateError(
                    f"shard {shard_index} global-id table not monotone"
                )
            for local_id, global_id in enumerate(table.tolist()):
                if seen[global_id]:
                    raise WalkStateError(
                        f"global id {global_id} owned by two shards"
                    )
                seen[global_id] = True
                if int(self._seg_shard[global_id]) != shard_index:
                    raise WalkStateError(
                        f"global id {global_id} routed to the wrong shard"
                    )
                if int(self._seg_local[global_id]) != local_id:
                    raise WalkStateError(
                        f"global id {global_id} has a stale local id"
                    )
                if self.shard_of(shard.source_of(local_id)) != shard_index:
                    raise WalkStateError(
                        f"segment {global_id} stored off its source's shard"
                    )
        if not bool(seen.all()):
            raise WalkStateError("global-id space has unowned ids")

    def __repr__(self) -> str:
        return (
            f"ShardedWalkIndex(shards={self.num_shards}, "
            f"nodes={self._num_nodes}, segments={self._num_segments}, "
            f"visits={self.total_visits}, "
            f"imbalance={self.load_imbalance():.2f})"
        )
