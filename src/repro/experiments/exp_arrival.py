"""E-MX and E-F1: validating the random-order arrival assumption (§4.2).

The paper validates its random-permutation model on Twitter two ways:

1. (§4.2 item 1) the statistic ``m·E[π_u / outdeg_u]`` over arriving edges
   ``(u, w)`` should be ≈ 1 — Lemma 3's only real requirement.  Twitter
   measured 0.81 over 4.63M arrivals (edges from brand-new nodes removed).
2. (Figure 1) the *arrival degree cdf* ``a(d)`` (fraction of new edges
   whose source has out-degree ≤ d) should coincide with the *existing
   degree cdf* ``e(d)`` (fraction of degree mass on nodes of degree ≤ d).

Both are run here on the synthetic stream — plus an adversarial control
(the same edges ordered by source degree) to show the statistics actually
discriminate: under the hostile order ``mX`` blows up and the CDFs split.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.power_law import cdf_at, empirical_cdf, weighted_degree_cdf
from repro.baselines.power_iteration import exact_pagerank
from repro.experiments.common import ExperimentResult, register
from repro.graph.arrival import slice_events
from repro.graph.digraph import DynamicDiGraph
from repro.rng import ensure_rng
from repro.workloads.twitter_like import twitter_like_stream

__all__ = ["run_mx_validation", "run_fig1"]


def _snapshot_and_window(stream, split: float):
    cut = int(len(stream) * split)
    graph = stream.snapshot_at(cut)
    window = stream.suffix(cut)
    return graph, window


def _mx_statistic(
    graph: DynamicDiGraph, window, scores: np.ndarray
) -> tuple[float, int]:
    """Average of m·π_u/outdeg_u over window arrivals with existing sources."""
    total = 0.0
    used = 0
    m = graph.num_edges
    for event in window:
        source = event.source
        degree = graph.out_degree(source) if source < graph.num_nodes else 0
        if degree == 0:
            continue  # paper: "we removed edges originating from new nodes"
        total += m * scores[source] / degree
        used += 1
    return (total / used if used else float("nan")), used


@register("E-MX")
def run_mx_validation(
    num_nodes: int = 5000,
    num_edges: int = 60_000,
    split: float = 0.66,
    rng=42,
) -> ExperimentResult:
    """§4.2 item 1: measure mX on random-order and adversarial streams."""
    generator = ensure_rng(rng)
    stream = twitter_like_stream(num_nodes, num_edges, rng=generator)
    graph, window = _snapshot_and_window(stream, split)
    scores = exact_pagerank(graph, reset_probability=0.2)

    random_mx, used = _mx_statistic(graph, window, scores)

    # Adversarial control: the same window's edges ordered by π_u/outdeg_u
    # descending — the order an adversary maximizing update cost would
    # present (each arrival hits the most walk-trafficked low-degree
    # source available).  An online system sees the early prefix first.
    existing = [
        e
        for e in window
        if e.source < graph.num_nodes and graph.out_degree(e.source) > 0
    ]
    hostile = sorted(
        existing,
        key=lambda e: -(scores[e.source] / graph.out_degree(e.source)),
    )
    prefix = hostile[: max(len(hostile) // 5, 1)]
    hostile_mx, hostile_used = _mx_statistic(graph, prefix, scores)

    result = ExperimentResult(
        experiment_id="E-MX",
        title="Random-order validation: m·E[pi_u/outdeg_u] (paper: 0.81)",
        params={
            "n": num_nodes,
            "m": num_edges,
            "split": split,
            "window_arrivals": used,
        },
        rows=[
            {"arrival order": "stream (random-ish)", "mX": random_mx, "arrivals": used},
            {
                "arrival order": "adversarial (hot sources first)",
                "mX": hostile_mx,
                "arrivals": hostile_used,
            },
            {"arrival order": "paper (Twitter)", "mX": 0.81, "arrivals": 4_630_000},
        ],
    )
    # Per-slice view: the batched ingestion path consumes the stream in
    # slices (apply_batch), and Lemma 3's requirement must hold for every
    # slice a batch engine would ingest, not just the window in aggregate.
    slice_size = max(len(window) // 4, 1)
    for index, chunk in enumerate(slice_events(window, slice_size)):
        slice_mx, slice_used = _mx_statistic(graph, chunk, scores)
        result.rows.append(
            {
                "arrival order": f"stream slice {index + 1}",
                "mX": slice_mx,
                "arrivals": slice_used,
            }
        )
    result.notes.append(
        "mX ≈ 1 is the only assumption Theorem 4 needs (Lemma 3); values "
        "≤ 1 only make the bound better.  The per-slice rows show the "
        "statistic is stable across the batch-ingestion slices too."
    )
    return result


@register("E-F1")
def run_fig1(
    num_nodes: int = 5000,
    num_edges: int = 60_000,
    split: float = 0.66,
    rng=42,
) -> ExperimentResult:
    """Figure 1: arrival degree cdf vs existing degree cdf."""
    generator = ensure_rng(rng)
    stream = twitter_like_stream(num_nodes, num_edges, rng=generator)
    graph, window = _snapshot_and_window(stream, split)

    degrees = graph.out_degree_array()
    existing_values, existing_cdf = weighted_degree_cdf(degrees)

    arrival_degrees = [
        graph.out_degree(e.source)
        for e in window
        if e.source < graph.num_nodes and graph.out_degree(e.source) > 0
    ]
    arrival_values, arrival_cdf = empirical_cdf(arrival_degrees)

    # Evaluate both CDFs on a common grid for the table and the gap stat.
    grid = np.unique(np.concatenate([existing_values, arrival_values]))
    existing_on_grid = cdf_at(existing_values, existing_cdf, grid)
    arrival_on_grid = cdf_at(arrival_values, arrival_cdf, grid)
    max_gap = float(np.abs(existing_on_grid - arrival_on_grid).max())

    # Adversarial control: arrivals drawn uniformly over *nodes* rather
    # than proportionally to degree — the proportionality assumption fails.
    uniform_sources = generator.choice(
        [v for v in graph.nodes() if graph.out_degree(v) > 0], size=len(arrival_degrees)
    )
    uniform_degrees = [graph.out_degree(int(v)) for v in uniform_sources]
    uniform_values, uniform_cdf = empirical_cdf(uniform_degrees)
    uniform_on_grid = cdf_at(uniform_values, uniform_cdf, grid)
    uniform_gap = float(np.abs(existing_on_grid - uniform_on_grid).max())

    sample_points = [1, 2, 5, 10, 20, 50, 100, 200]
    rows = []
    for d in sample_points:
        rows.append(
            {
                "degree d": d,
                "existing e(d)": float(cdf_at(existing_values, existing_cdf, [d])[0]),
                "arrival a(d)": float(cdf_at(arrival_values, arrival_cdf, [d])[0]),
                "uniform control": float(cdf_at(uniform_values, uniform_cdf, [d])[0]),
            }
        )
    rows.append(
        {
            "degree d": "max |gap|",
            "existing e(d)": 0.0,
            "arrival a(d)": max_gap,
            "uniform control": uniform_gap,
        }
    )

    figure = ascii_plot(
        {
            "existing e(d)": (grid.tolist(), existing_on_grid.tolist()),
            "arrival a(d)": (grid.tolist(), arrival_on_grid.tolist()),
        },
        log_x=True,
        title="Figure 1: arrival vs existing degree CDFs",
    )

    result = ExperimentResult(
        experiment_id="E-F1",
        title="Figure 1: arrival degree cdf tracks existing degree cdf",
        params={"n": num_nodes, "m": num_edges, "split": split},
        rows=rows,
        figures={"fig1": figure},
    )
    result.notes.append(
        "Paper's Figure 1 shows the two CDFs nearly coinciding on Twitter; "
        "the uniform control shows what a violated proportionality "
        "assumption looks like."
    )
    return result
