"""Power-iteration and exact PageRank (the paper's Equation 1).

Equation (1), verbatim:

    π_{i+1}(v) = ε/n + Σ_{(w,v)∈E} π_i(w)·(1−ε)/outdeg(w)

Note what it does *not* do: redistribute the mass parked at dangling nodes.
A walk that reaches a node with no out-edges simply stops contributing, so
the fixed point sums to ≤ 1.  This matters because the Monte Carlo
estimator with the paper's ``X_v/(nR/ε)`` normalization is an unbiased
estimate of exactly this fixed point — the two halves of the library agree
by construction, and the tests exploit that.

``exact_pagerank`` solves the fixed point directly,
``π = jump + (1−ε)·Pᵀ_sub·π  ⇔  (I − (1−ε)·Pᵀ_sub)·π = jump``,
with a sparse LU solve — the ground truth for every accuracy experiment.

Work accounting: each iteration touches every edge once, which is the
``Ω(x)``-per-recompute term in the paper's naive-update cost comparison;
:attr:`PowerIterationResult.edge_touches` records it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse
import scipy.sparse.linalg

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph

__all__ = [
    "PowerIterationResult",
    "transition_matrix",
    "power_iteration_pagerank",
    "exact_pagerank",
    "exact_personalized_pagerank",
]


@dataclass
class PowerIterationResult:
    """Scores plus convergence/work metadata."""

    scores: np.ndarray
    iterations: int
    edge_touches: int
    converged: bool
    residual: float


def transition_matrix(graph: DynamicDiGraph) -> scipy.sparse.csr_matrix:
    """``Pᵀ_sub`` as a CSR matrix: entry ``(v, w) = 1/outdeg(w)`` for each
    edge ``(w, v)``; rows of dangling nodes in ``P`` are zero columns here
    (mass is absorbed, matching Equation 1)."""
    n = graph.num_nodes
    edges = graph.edge_list()
    if not edges:
        return scipy.sparse.csr_matrix((n, n))
    sources = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
    targets = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))
    out_degrees = graph.out_degree_array().astype(np.float64)
    weights = 1.0 / out_degrees[sources]
    return scipy.sparse.csr_matrix(
        (weights, (targets, sources)), shape=(n, n)
    )


def _jump_vector(
    n: int, reset_probability: float, personalize: Optional[int]
) -> np.ndarray:
    jump = np.zeros(n, dtype=np.float64)
    if personalize is None:
        jump[:] = reset_probability / n
    else:
        if not 0 <= personalize < n:
            raise ConfigurationError(f"seed {personalize} outside [0, {n})")
        jump[personalize] = reset_probability
    return jump


def power_iteration_pagerank(
    graph: DynamicDiGraph,
    *,
    reset_probability: float = 0.2,
    personalize: Optional[int] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
    matrix: Optional[scipy.sparse.csr_matrix] = None,
) -> PowerIterationResult:
    """Iterate Equation (1) to (near) convergence.

    ``personalize`` replaces the uniform ε/n jump with an ε jump to the
    seed (personalized PageRank).  Pass a prebuilt ``matrix`` when scoring
    many seeds on one graph.
    """
    if not 0.0 < reset_probability < 1.0:
        raise ConfigurationError(
            f"reset_probability must be in (0, 1), got {reset_probability}"
        )
    n = graph.num_nodes
    if n == 0:
        return PowerIterationResult(np.zeros(0), 0, 0, True, 0.0)
    transition = matrix if matrix is not None else transition_matrix(graph)
    jump = _jump_vector(n, reset_probability, personalize)
    decay = 1.0 - reset_probability
    scores = np.full(n, 1.0 / n)
    residual = float("inf")
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        updated = jump + decay * (transition @ scores)
        residual = float(np.abs(updated - scores).sum())
        scores = updated
        if residual < tolerance:
            break
    return PowerIterationResult(
        scores=scores,
        iterations=iterations,
        edge_touches=iterations * graph.num_edges,
        converged=residual < tolerance,
        residual=residual,
    )


def exact_pagerank(
    graph: DynamicDiGraph,
    *,
    reset_probability: float = 0.2,
    personalize: Optional[int] = None,
    matrix: Optional[scipy.sparse.csr_matrix] = None,
) -> np.ndarray:
    """Solve Equation (1)'s fixed point exactly (sparse LU)."""
    if not 0.0 < reset_probability < 1.0:
        raise ConfigurationError(
            f"reset_probability must be in (0, 1), got {reset_probability}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0)
    transition = matrix if matrix is not None else transition_matrix(graph)
    jump = _jump_vector(n, reset_probability, personalize)
    system = scipy.sparse.identity(n, format="csc") - (
        1.0 - reset_probability
    ) * transition.tocsc()
    return scipy.sparse.linalg.spsolve(system, jump)


def exact_personalized_pagerank(
    graph: DynamicDiGraph,
    seeds: list[int],
    *,
    reset_probability: float = 0.2,
) -> np.ndarray:
    """Exact personalized PageRank for several seeds (rows of the result).

    Factorizes the system once and back-substitutes per seed — the sane way
    to ground-truth 100 users (Figures 3–5).
    """
    n = graph.num_nodes
    transition = transition_matrix(graph)
    system = scipy.sparse.identity(n, format="csc") - (
        1.0 - reset_probability
    ) * transition.tocsc()
    solver = scipy.sparse.linalg.factorized(system)
    rows = np.zeros((len(seeds), n), dtype=np.float64)
    for row, seed in enumerate(seeds):
        jump = np.zeros(n)
        if not 0 <= seed < n:
            raise ConfigurationError(f"seed {seed} outside [0, {n})")
        jump[seed] = reset_probability
        rows[row] = solver(jump)
    return rows
