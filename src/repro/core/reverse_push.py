"""Reverse local-push PPR and the FAST-PPR bidirectional estimator.

Forward walks (Algorithm 1) answer "where does mass from seed ``s`` go";
they cannot efficiently answer the transpose question "how much mass
reaches target ``t``" because a seed-centric walk almost never visits an
unpopular target.  Reverse local push (Andersen et al. 2007, transposed;
Lofgren & Goel 2013) works backwards from the target over the
*in*-neighbor CSR, maintaining per-node estimates ``p`` and residuals
``r`` with the invariant

    pi_s(t) = p[s] + sum_v pi_s(v) * r[v]        for every seed s,

derived from the target-side recurrence

    pi_s(v) = eps * [v == s] + (1 - eps) * sum_{u -> v} pi_s(u) / outdeg(u).

Initially ``r[t] = 1`` and ``p = 0``.  Pushing a node ``v`` moves
``eps * r[v]`` into ``p[v]`` and spreads ``(1 - eps) * r[v] / outdeg(u)``
onto each in-neighbor ``u`` of ``v``; the invariant is preserved at every
step.  Once every residual is below ``r_max`` the additive error is

    |pi_s(t) - p[s]| = sum_v pi_s(v) * r[v] <= r_max * ||pi_s||_1 <= r_max

because the engine uses the same *absorbing* dangling semantics as
:mod:`repro.baselines.power_iteration` (Equation 1 of the paper): a
dangling node has no out-edges, hence never appears in any in-neighbor
list, and the mass parked on it is simply lost rather than redistributed
(so ``||pi_s||_1 <= 1``).

:class:`BidirectionalKernel` then closes the gap below ``r_max`` with the
stored forward walks.  A stitched walk of length ``L`` from seed ``s``
decomposes into ``resets`` completed excursions, each an independent
eps-killed walk from ``s``; renewal theory gives
``E[visits to v per excursion] = pi_s(v) / eps``, so

    pi_hat_s(t) = p[s] + (eps / resets) * sum_v X_v * r[v]

where ``X_v`` are the walk's visit counts.  This is FAST-PPR's estimator:
reverse work ~ edges touched above ``r_max``, forward work ~ walk length,
meeting in the middle at sqrt cost instead of either side paying the full
Theta(n) alone.

The module deliberately depends only on numpy and the duck-typed graph
(``to_csr("in")``, ``out_degree_array()``, ``num_nodes``) so it can be
used by :mod:`repro.core.query_kernel` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, NodeNotFoundError

__all__ = [
    "ReversePushEngine",
    "ReversePushResult",
    "PprToTargetResult",
    "BidirectionalKernel",
    "default_r_max",
    "default_walk_length",
]


def default_r_max(delta: float) -> float:
    """Residual tolerance used when the caller does not pick one.

    Splitting the additive error budget evenly between the reverse and
    forward halves (FAST-PPR's balanced choice) makes ``delta``-threshold
    decisions reliable once the forward side concentrates.
    """
    return float(delta) / 2.0


def default_walk_length(delta: float, r_max: float, reset_probability: float,
                        *, c: float = 8.0, floor: int = 64) -> int:
    """Forward walk length pairing with ``r_max`` for a ``delta`` threshold.

    The forward side must resolve contributions of size ``delta / r_max``
    relative to the residual mass; ``c * r_max / (delta * eps)`` steps give
    ~``c * r_max / delta`` excursions.  The floor keeps tiny thresholds
    from degenerating into single-excursion estimates.
    """
    if delta <= 0.0 or r_max <= 0.0:
        raise ConfigurationError("delta and r_max must be positive")
    length = int(np.ceil(c * r_max / (float(delta) * float(reset_probability))))
    return max(int(floor), length)


@dataclass(frozen=True)
class ReversePushResult:
    """Frontier-complete state of one reverse push from ``target``.

    ``estimates[s]`` approximates ``pi_s(target)`` with additive error at
    most ``r_max`` (every ``residuals`` entry is ``< r_max`` on return,
    or ``== 0`` when the push drained completely).
    """

    target: int
    reset_probability: float
    r_max: float
    estimates: np.ndarray
    residuals: np.ndarray
    pushes: int
    rounds: int
    residual_mass: float
    #: Every node whose estimate or residual became nonzero (plus the
    #: target itself) — the sound invalidation footprint for caching.
    touched: frozenset = field(repr=False)


@dataclass(frozen=True)
class PprToTargetResult:
    """One seed's bidirectional PPR-to-target estimate."""

    seed: int
    target: int
    delta: float
    #: ``reverse_estimate + forward_contribution``.
    estimate: float
    #: Threshold decision ``estimate >= delta`` (FAST-PPR's query form).
    above_delta: bool
    reverse_estimate: float
    forward_contribution: float
    walk_length: int
    resets: int
    r_max: float
    pushes: int
    #: True when no forward walk was needed: either the caller asked for
    #: the reverse-only mode (``walk_length=0``) or the push drained every
    #: residual, making ``estimate`` exact up to ``r_max``.
    exact: bool
    #: Every node this estimate read: the push's touched set, the forward
    #: walk's visited nodes, and the (seed, target) endpoints.  Any edge
    #: update outside this set cannot change the estimate, so it is the
    #: sound invalidation footprint for result caching.
    footprint: frozenset = field(repr=False, default=frozenset())


class ReversePushEngine:
    """Vectorized reverse local push over a static snapshot of the graph.

    One engine instance corresponds to one graph version: it freezes the
    in-neighbor CSR and out-degree array at construction.  The serving
    layer rebuilds it per query under the store read lock, which keeps
    the push consistent with the walks it is later combined with.
    """

    def __init__(self, graph, *, reset_probability: float = 0.2):
        if not 0.0 < reset_probability < 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1), got {reset_probability}"
            )
        self.reset_probability = float(reset_probability)
        self.num_nodes = int(graph.num_nodes)
        csr = graph.to_csr("in")
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._out_degree = np.asarray(graph.out_degree_array(), dtype=np.float64)
        # Receivers always have outdeg >= 1 (they own the pushed edge), so
        # the substituted 1.0 for dangling nodes is never actually used —
        # it only keeps the vectorized divide clean of warnings.
        self._inv_out_degree = np.divide(
            1.0,
            self._out_degree,
            out=np.ones(self.num_nodes, dtype=np.float64),
            where=self._out_degree > 0,
        )

    def push(self, target: int, *, r_max: float) -> ReversePushResult:
        """Run reverse push from ``target`` until all residuals < ``r_max``.

        Pushes happen in synchronous rounds over the frontier
        ``np.flatnonzero(residuals >= r_max)`` — ascending node order, so
        the result is a deterministic function of (graph, target, r_max).
        Residuals are zeroed *before* the scatter so a self-loop correctly
        re-deposits onto its own node.  Each push absorbs at least
        ``eps * r_max`` into the estimates, bounding total pushes by
        ``1 / (eps * r_max)``.
        """
        if not 0 <= target < self.num_nodes:
            raise NodeNotFoundError(f"target {target} not in graph")
        if not r_max > 0.0:
            raise ConfigurationError(f"r_max must be positive, got {r_max}")
        eps = self.reset_probability
        n = self.num_nodes
        estimates = np.zeros(n, dtype=np.float64)
        residuals = np.zeros(n, dtype=np.float64)
        residuals[target] = 1.0
        touched = np.zeros(n, dtype=bool)
        touched[target] = True

        indptr, indices = self._indptr, self._indices
        inv_deg = self._inv_out_degree
        pushes = 0
        rounds = 0
        while True:
            frontier = np.flatnonzero(residuals >= r_max)
            if frontier.size == 0:
                break
            rounds += 1
            pushes += int(frontier.size)
            value = residuals[frontier]
            estimates[frontier] += eps * value
            residuals[frontier] = 0.0
            counts = indptr[frontier + 1] - indptr[frontier]
            has_in = counts > 0
            if np.any(has_in):
                src = frontier[has_in]
                src_counts = counts[has_in]
                gather = np.concatenate(
                    [indices[indptr[v] : indptr[v + 1]] for v in src]
                )
                amounts = (1.0 - eps) * np.repeat(value[has_in], src_counts)
                amounts *= inv_deg[gather]
                residuals += np.bincount(gather, weights=amounts, minlength=n)
                touched[gather] = True
        residuals[residuals < 0.0] = 0.0  # guard fp round-off
        return ReversePushResult(
            target=int(target),
            reset_probability=eps,
            r_max=float(r_max),
            estimates=estimates,
            residuals=residuals,
            pushes=pushes,
            rounds=rounds,
            residual_mass=float(residuals.sum()),
            touched=frozenset(np.flatnonzero(touched).tolist()),
        )


class BidirectionalKernel:
    """Combine a reverse push with forward walk statistics (FAST-PPR).

    The kernel is walk-agnostic: callers hand it the visit counts and
    reset count of any eps-killed forward walk (stitched or plain), and
    it folds them into the push's residual gap.  ``resets`` of zero means
    no excursion completed — the forward term is then undefined and
    reported as 0.0, leaving the (conservative) reverse estimate.
    """

    def __init__(self, graph, *, reset_probability: float = 0.2):
        self.reverse = ReversePushEngine(
            graph, reset_probability=reset_probability
        )
        self.reset_probability = self.reverse.reset_probability

    def prepare_target(self, target: int, *, r_max: float) -> ReversePushResult:
        return self.reverse.push(target, r_max=r_max)

    def forward_contribution(
        self, push: ReversePushResult, visit_counts, resets: int
    ) -> float:
        """``(eps / resets) * sum_v X_v * r[v]`` from one forward walk."""
        if resets <= 0:
            return 0.0
        residuals = push.residuals
        total = 0.0
        # summed in sorted node order so the float result is bit-identical
        # no matter which backend's walk produced the (equal) counts
        for node in sorted(visit_counts):
            value = residuals[node]
            if value != 0.0:
                total += visit_counts[node] * value
        return self.reset_probability * total / resets

    def estimate(
        self,
        push: ReversePushResult,
        seed: int,
        *,
        delta: float,
        visit_counts=None,
        resets: int = 0,
        walk_length: int = 0,
        exact: Optional[bool] = None,
    ) -> PprToTargetResult:
        reverse_estimate = float(push.estimates[seed])
        if visit_counts is None:
            forward = 0.0
            footprint = push.touched | {int(seed), push.target}
        else:
            forward = self.forward_contribution(push, visit_counts, resets)
            footprint = (
                push.touched | set(visit_counts) | {int(seed), push.target}
            )
        estimate = reverse_estimate + forward
        if exact is None:
            exact = push.residual_mass == 0.0 or walk_length == 0
        return PprToTargetResult(
            seed=int(seed),
            target=push.target,
            delta=float(delta),
            estimate=estimate,
            above_delta=bool(estimate >= delta),
            reverse_estimate=reverse_estimate,
            forward_contribution=forward,
            walk_length=int(walk_length),
            resets=int(resets),
            r_max=push.r_max,
            pushes=push.pushes,
            exact=bool(exact),
            footprint=frozenset(footprint),
        )
