"""Power-law fitting and degree CDFs (§3.1, §4.2, §4.3).

The paper works with *rank-size* power laws: if ``π_j`` is the j-th largest
entry, ``π_j ∝ j^(−α)`` with ``0 < α < 1``.  The exponent is fitted, as in
the paper's log-log plots, by least squares on ``log j`` vs ``log π_j``
over a rank window.  For personalized vectors the paper fits only the
window ``[2f, 20f]`` (``f`` = the seed's friend count) to skip the
friends-dominated head (Remark 4) — :func:`fit_personalized_exponent`
implements exactly that protocol.

The degree-CDF helpers back Figure 1: ``a(d)`` is the fraction of arriving
edges whose source had out-degree ≤ d (arrival cdf); ``e(d)`` is the
degree-mass cdf of the existing graph (existing cdf).  Under random-order
arrivals the two nearly coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "PowerLawFit",
    "fit_rank_exponent",
    "fit_personalized_exponent",
    "empirical_cdf",
    "weighted_degree_cdf",
    "cdf_at",
]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a rank-size fit ``value ≈ C · rank^(−alpha)``."""

    alpha: float
    intercept: float
    r_squared: float
    rank_range: tuple[int, int]
    points: int

    def predict(self, ranks: np.ndarray) -> np.ndarray:
        return np.exp(self.intercept) * np.asarray(ranks, dtype=float) ** (-self.alpha)


def fit_rank_exponent(
    values: Sequence[float] | np.ndarray,
    *,
    min_rank: int = 1,
    max_rank: Optional[int] = None,
    presorted: bool = False,
) -> PowerLawFit:
    """OLS fit of ``log(value)`` on ``log(rank)`` over ``[min_rank, max_rank]``.

    ``values`` need not be sorted (``presorted=True`` skips the sort).
    Zero/negative entries are excluded (they have no log); ranks refer to
    the positive, descending-sorted vector, matching the paper's plots.
    """
    array = np.asarray(values, dtype=np.float64)
    array = array[array > 0]
    if array.size < 3:
        raise ConfigurationError(
            f"need at least 3 positive values to fit, got {array.size}"
        )
    if not presorted:
        array = np.sort(array)[::-1]
    if max_rank is None or max_rank > array.size:
        max_rank = array.size
    if not 1 <= min_rank < max_rank:
        raise ConfigurationError(
            f"invalid rank window [{min_rank}, {max_rank}] for {array.size} values"
        )
    window = array[min_rank - 1 : max_rank]
    ranks = np.arange(min_rank, min_rank + window.size, dtype=np.float64)
    log_ranks = np.log(ranks)
    log_values = np.log(window)
    slope, intercept = np.polyfit(log_ranks, log_values, 1)
    predicted = slope * log_ranks + intercept
    residual = np.sum((log_values - predicted) ** 2)
    total = np.sum((log_values - log_values.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        alpha=-float(slope),
        intercept=float(intercept),
        r_squared=float(r_squared),
        rank_range=(min_rank, min_rank + window.size - 1),
        points=int(window.size),
    )


def fit_personalized_exponent(
    scores: np.ndarray, friend_count: int, *, window: tuple[int, int] = (2, 20)
) -> PowerLawFit:
    """The paper's Remark-4 protocol: fit ranks ``[2f, 20f]`` only.

    ``friend_count`` is the seed's number of friends ``f``; the head of the
    personalized vector (dominated by direct friends) is skipped because
    recommendation systems never surface existing friends anyway.
    """
    if friend_count <= 0:
        raise ConfigurationError(f"friend_count must be positive, got {friend_count}")
    low, high = window
    return fit_rank_exponent(
        scores, min_rank=low * friend_count, max_rank=high * friend_count
    )


def empirical_cdf(samples: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Plain CDF: returns ``(sorted unique values, P(X ≤ value))``."""
    array = np.asarray(samples, dtype=np.float64)
    if array.size == 0:
        return np.zeros(0), np.zeros(0)
    values, counts = np.unique(array, return_counts=True)
    return values, np.cumsum(counts) / array.size


def weighted_degree_cdf(degrees: Sequence[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1's *existing degree cdf* ``e(d)``: the fraction of total
    degree mass held by nodes of degree ≤ d (``s(d)/m``)."""
    array = np.asarray(degrees, dtype=np.float64)
    array = array[array > 0]
    if array.size == 0:
        return np.zeros(0), np.zeros(0)
    values, counts = np.unique(array, return_counts=True)
    mass = values * counts
    return values, np.cumsum(mass) / mass.sum()


def cdf_at(
    values: np.ndarray, cdf: np.ndarray, query: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Evaluate a step CDF at arbitrary points (right-continuous)."""
    indices = np.searchsorted(values, np.asarray(query, dtype=np.float64), side="right")
    padded = np.concatenate([[0.0], cdf])
    return padded[indices]
