"""Integration tests: every experiment driver runs end-to-end at toy scale
and produces structurally sane results.  (Scientific assertions — who wins,
bounds hold — live in benchmarks/, which run at meaningful sizes.)"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import ExperimentResult, register
from repro.experiments.exp_arrival import run_fig1, run_mx_validation
from repro.experiments.exp_concentration import run_thm1
from repro.experiments.exp_fetches import run_fig6
from repro.experiments.exp_linkpred import run_table1
from repro.experiments.exp_powerlaw import run_fig2, run_fig3, run_fig4
from repro.experiments.exp_precision import run_fig5
from repro.experiments.exp_faults import run_faults
from repro.experiments.exp_serve import run_serve
from repro.experiments.exp_serve_mp import run_serve_mp
from repro.experiments.exp_update_cost import (
    run_adversarial,
    run_batch_ingest,
    run_dirichlet,
    run_prop5,
    run_thm4,
    run_thm6,
)

TINY = {"num_nodes": 600, "num_edges": 7200, "rng": 9}


class TestRegistry:
    def test_all_registered(self):
        ids = set(list_experiments())
        assert {
            "E-MX",
            "E-F1",
            "E-F2",
            "E-F3",
            "E-F4",
            "E-F5",
            "E-F6",
            "E-T1",
            "E-THM1",
            "E-THM4",
            "E-PROP5",
            "E-DIR",
            "E-ADV",
            "E-THM6",
            "E-BATCH",
            "E-SERVE",
            "E-SERVE-MP",
            "E-FAULTS",
        } <= ids

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            get_experiment("E-NOPE")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register("E-F1")(lambda: None)

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="X",
            title="t",
            params={"a": 1},
            rows=[{"col": 1.23456, "big": 12345.6, "s": "x"}],
            notes=["hello"],
        )
        table = result.table()
        assert "| col | big | s |" in table
        assert "1.235" in table
        rendered = result.render()
        assert "== X: t ==" in rendered
        assert "note: hello" in rendered
        assert ExperimentResult("Y", "t").table() == "(no rows)"


class TestArrivalDrivers:
    def test_mx(self):
        result = run_mx_validation(**TINY)
        rows = {r["arrival order"]: r for r in result.rows}
        assert 0.2 < rows["stream (random-ish)"]["mX"] < 2.0
        assert rows["paper (Twitter)"]["mX"] == 0.81

    def test_fig1(self):
        result = run_fig1(**TINY)
        gap = next(r for r in result.rows if r["degree d"] == "max |gap|")
        assert 0 <= gap["arrival a(d)"] <= 1
        assert "fig1" in result.figures


class TestPowerLawDrivers:
    def test_fig2(self):
        result = run_fig2(**TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            assert 0 < row["alpha"] < 2

    def test_fig3(self):
        result = run_fig3(num_users=2, **TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["r^2"] > 0.5

    def test_fig4(self):
        result = run_fig4(num_users=10, **TINY)
        stats = {r["statistic"]: r["measured"] for r in result.rows}
        assert "mean per-user alpha" in stats
        assert stats["std per-user alpha"] >= 0


class TestQueryDrivers:
    def test_fig5(self):
        result = run_fig5(
            num_users=3, true_length=5000, query_length=1000, **TINY
        )
        curve = [r["interpolated avg precision"] for r in result.rows]
        assert len(curve) == 11
        assert all(0 <= p <= 1 for p in curve)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_fig6(self):
        result = run_fig6(
            num_users=2, walk_counts=(5, 10), lengths=(100, 1000), **TINY
        )
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["measured fetches"] >= 1

    def test_table1(self):
        result = run_table1(
            num_nodes=2000,
            num_edges=24_000,
            max_users=5,
            include_monte_carlo=False,
            rng=9,
        )
        methods = {row["method"] for row in result.rows}
        assert methods == {"HITS", "COSINE", "PageRank", "SALSA"}
        for row in result.rows:
            assert row["top 100"] <= row["top 1000"]
            assert row["long-tail top 100"] <= row["top 100"] + 1e-9


class TestCostDrivers:
    def test_thm1(self):
        result = run_thm1(walk_counts=(1, 4), **TINY)
        rows = {r["R"]: r for r in result.rows}
        assert rows[4]["store visits"] > rows[1]["store visits"]

    def test_thm4(self):
        result = run_thm4(**TINY)
        total = next(r for r in result.rows if r["arrival t"] == "TOTAL measured")
        bound = total["thm4 bound nR/(t eps^2)"]
        assert total["measured mean work"] <= bound

    def test_prop5(self):
        result = run_prop5(deletions=100, **TINY)
        row = next(
            r for r in result.rows if r["quantity"].startswith("mean resimulated")
        )
        assert row["measured"] >= 0

    def test_dirichlet(self):
        result = run_dirichlet(**TINY)
        values = {r["quantity"]: r["value"] for r in result.rows}
        assert values["total measured work"] <= values["dirichlet bound"]

    def test_adversarial(self):
        result = run_adversarial(sizes=(8, 16), repetitions=2, rng=9)
        rows = {r["gadget N"]: r for r in result.rows}
        assert rows[16]["killer-edge reroutes"] > rows[8]["killer-edge reroutes"]

    def test_thm6(self):
        result = run_thm6(num_nodes=200, num_edges=2000, rng=9)
        values = {r["quantity"]: r["value"] for r in result.rows}
        assert values["measured SALSA/PageRank ratio"] > 1.0
        assert values["SALSA within bound"]

    def test_batch_ingest(self):
        result = run_batch_ingest(batch_sizes=(50, 0), **TINY)
        rows = {r["ingestion mode"]: r for r in result.rows}
        assert "sequential (per edge)" in rows
        batched = [r for mode, r in rows.items() if mode.startswith("batched")]
        assert len(batched) == 2
        for row in batched:
            assert row["wall seconds"] > 0
            assert row["touched steps"] <= rows["sequential (per edge)"]["touched steps"]
        assert "batch_speedup" in result.figures


class TestServeDriver:
    def test_serve(self):
        result = run_serve(
            num_nodes=400,
            num_edges=4800,
            num_queries=120,
            sustained_queries=120,
            walk_length=300,
            query_burst=60,
            event_batch_size=200,
            rng=9,
        )
        rows = {r["mode"]: r for r in result.rows}
        assert set(rows) == {"uncached", "cached", "cached + batcher"}
        for row in rows.values():
            assert row["sustained qps"] > 0
        assert rows["cached"]["hit rate"] > 0
        # every mode's differential check must be n/n
        checks = [n for n in result.notes if "differential check" in n]
        assert len(checks) == 3
        for note in checks:
            assert "5/5" in note, note


@pytest.mark.slow
class TestServeMpDriver:
    def test_serve_mp(self):
        result = run_serve_mp(
            num_nodes=300,
            num_edges=3600,
            num_queries=60,
            sustained_queries=100,
            seed_pool_size=30,
            walk_length=150,
            walks_per_node=3,
            worker_counts=(1,),
            wave_size=50,
            rng=9,
        )
        rows = {r["mode"]: r for r in result.rows}
        assert set(rows) == {"in-process", "mp x1"}
        for row in rows.values():
            assert row["sustained qps"] > 0
        tally = result.extras["differential"]
        assert tally["total"] > 0
        assert tally["matched"] == tally["total"], result.notes
        assert result.extras["qps_by_workers"] == {
            "1": pytest.approx(rows["mp x1"]["sustained qps"], rel=0.01)
        }


@pytest.mark.slow
@pytest.mark.chaos
class TestFaultsDriver:
    def test_faults(self):
        result = run_faults(
            num_nodes=300,
            num_edges=3600,
            walks_per_node=3,
            num_workers=2,
            num_waves=9,
            wave_size=6,
            walk_length=120,
            seed_pool_size=24,
            wal_batches=4,
            wal_batch_size=80,
            rng=9,
        )
        extras = result.extras
        tally = extras["differential"]
        assert tally["answered"] == tally["total"] > 0
        assert tally["matched"] == tally["answered"], result.notes
        assert extras["live_workers"] == [0, 1]
        assert extras["restarts_total"] >= 2
        assert extras["recovery"]["bit_identical"], extras["recovery"]
        assert extras["wal"]["base_eps"] > 0
        assert len(result.rows) == 7
