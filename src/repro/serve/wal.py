"""Write-ahead log for edge events: coordinator durability between publishes.

The multi-process tier's durability story before this module: worker
state is disposable (re-attach a published generation), but the
*coordinator's* engine — every ``apply_batch`` since the last
:meth:`~repro.serve.epochs.ArenaPublisher.publish` — lived only in
process memory.  A coordinator crash lost those updates.

:class:`WriteAheadLog` closes that window with the classic discipline:

* **Write-ahead**: each mutation appends one checksummed record — the
  edge events *plus the engine RNG state before the mutation* — and
  fsyncs it **before** the engine mutates (the hook in
  :meth:`repro.core.incremental.IncrementalPageRank.attach_wal`).
* **Truncate at publish**: a published snapshot durably contains
  everything the log described, so the frontend truncates the WAL right
  after each successful epoch publish.  The log is always exactly the
  tail since the last snapshot.
* **Recover** with :func:`recover_engine`: load the snapshot (writable),
  then replay each record through the *same* engine entry point that
  produced it (``apply_batch`` / ``add_edge`` / ``remove_edge``) with the
  recorded RNG state restored first.  Replay therefore consumes the
  identical random draws the pre-crash engine consumed — the recovered
  walk arenas are **bit-identical**, not merely distributionally correct
  (``tests/test_serve_recovery.py`` proves it differentially on every
  backend).

Record layout (little-endian)::

    +------+----------+---------+------------------+
    | WREC | len: u32 | crc: u32| payload (len B)  |
    +------+----------+---------+------------------+

The payload is UTF-8 JSON ``{"op", "events", "rng"}``.  A crash mid-append
leaves a *torn tail* — a final record that is short or fails its CRC.
Because records are fsync'd in order, everything before the first bad
record is intact; :func:`read_wal` stops there and reports the torn
bytes, and recovery replays the intact prefix.  The torn record's
mutation never returned to its caller (append happens first), so the
replayed prefix *is* the pre-crash acknowledged state.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InjectedFault, WalError
from repro.obs import MetricsRegistry, Tracer

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "WalReadResult",
    "RecoveryReport",
    "read_wal",
    "recover_engine",
]

_MAGIC = b"WREC"
_HEADER = struct.Struct("<4sII")  # magic, payload length, crc32(payload)

#: Known record operations → the engine method replay drives them through.
#: Replaying a batch as per-edge calls (or vice versa) would be
#: distributionally fine but not bit-identical — the op pins the code path.
_OPS = ("batch", "add", "remove")


def _encode_state(obj):
    """JSON-sanitize a numpy BitGenerator state dict (PCG64 is plain ints;
    Philox/SFC64 carry uint arrays — round-trip those explicitly)."""
    if isinstance(obj, dict):
        return {key: _encode_state(value) for key, value in obj.items()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, np.integer):
        return int(obj)
    return obj


def _decode_state(obj):
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return np.asarray(obj["__ndarray__"], dtype=obj["dtype"])
        return {key: _decode_state(value) for key, value in obj.items()}
    return obj


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record: an attempted mutation and its RNG preimage."""

    op: str
    events: Tuple[Tuple[str, int, int], ...]
    rng_state: dict


@dataclass(frozen=True)
class WalReadResult:
    """Everything :func:`read_wal` learned about a log file."""

    records: Tuple[WalRecord, ...]
    valid_bytes: int
    torn_bytes: int

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover_engine` replayed (for logs and assertions)."""

    records_replayed: int
    events_replayed: int
    torn_bytes: int


def read_wal(path) -> WalReadResult:
    """Decode ``path``, stopping cleanly at the first damaged record.

    A missing file reads as an empty log (a coordinator can crash before
    its first append).  Damage — short header, wrong magic, short
    payload, CRC mismatch, unparsable JSON — ends the scan: the fsync
    ordering guarantees every record *before* it is trustworthy and
    nothing after it is.  The damaged span is reported as ``torn_bytes``.
    """
    path = Path(path)
    if not path.exists():
        return WalReadResult(records=(), valid_bytes=0, torn_bytes=0)
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise WalError(f"unreadable WAL {path}: {error}") from error
    records: List[WalRecord] = []
    offset = 0
    while offset < len(blob):
        header = blob[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            break
        magic, length, crc = _HEADER.unpack(header)
        if magic != _MAGIC:
            break
        payload = blob[offset + _HEADER.size : offset + _HEADER.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break
        try:
            data = json.loads(payload.decode("utf-8"))
            op = data["op"]
            if op not in _OPS:
                raise ValueError(f"unknown op {op!r}")
            events = tuple(
                (str(kind), int(source), int(target))
                for kind, source, target in data["events"]
            )
            state = _decode_state(data["rng"])
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            # checksum passed but content is garbage: the writer was not
            # this module — stop trusting the file here, same as a tear
            break
        records.append(WalRecord(op=op, events=events, rng_state=state))
        offset += _HEADER.size + length
    return WalReadResult(
        records=tuple(records),
        valid_bytes=offset,
        torn_bytes=len(blob) - offset,
    )


class WriteAheadLog:
    """Append-only, checksummed, fsync'd log of engine edge events.

    Attach to a coordinator engine with
    :meth:`~repro.core.incremental.IncrementalPageRank.attach_wal`; the
    engine then calls :meth:`append` before every mutation.  Re-opening
    an existing log truncates any torn tail first, so appends always
    extend an intact prefix.  ``fsync=False`` trades the durability
    guarantee for speed (benchmarks only).  Thread-safe; idempotent
    :meth:`close`.
    """

    def __init__(
        self,
        path,
        *,
        fsync: bool = True,
        registry: Optional[MetricsRegistry] = None,
        fault_plan=None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.fault_plan = fault_plan
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._closed = False

        existing = read_wal(self.path)
        self._records = len(existing.records)
        if existing.torn:
            with open(self.path, "r+b") as fh:
                fh.truncate(existing.valid_bytes)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(self.path, "ab")
        except OSError as error:
            raise WalError(f"cannot open WAL {self.path}: {error}") from error

        reg = self.registry
        self._m_records = reg.counter(
            "repro_wal_records_total", "Records appended to the WAL"
        )
        self._m_bytes = reg.counter(
            "repro_wal_bytes_total", "Bytes appended to the WAL"
        )
        self._m_truncations = reg.counter(
            "repro_wal_truncations_total",
            "WAL truncations (one per published snapshot)",
        )
        self._m_size = reg.gauge(
            "repro_wal_size_bytes", "Current WAL file size"
        )
        self._m_size.set(float(existing.valid_bytes))

    @property
    def records(self) -> int:
        """Records in the log since the last truncation."""
        with self._lock:
            return self._records

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._fh.tell() if not self._closed else 0

    def append(
        self,
        op: str,
        events: Sequence[Tuple[str, int, int]],
        rng_state: dict,
    ) -> int:
        """Durably append one record; returns the record's index.

        The caller (the engine hook) invokes this **before** mutating, so
        a crash after return replays the mutation and a crash before
        return never acknowledged it — either way recovery converges on
        the acknowledged state.
        """
        if op not in _OPS:
            raise WalError(f"unknown WAL op {op!r}")
        payload = json.dumps(
            {
                "op": op,
                "events": [
                    [str(kind), int(source), int(target)]
                    for kind, source, target in events
                ],
                "rng": _encode_state(rng_state),
            }
        ).encode("utf-8")
        header = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload))
        with self._lock:
            if self._closed:
                raise WalError(f"WAL {self.path} is closed")
            rule = (
                self.fault_plan.fire("wal.append")
                if self.fault_plan is not None
                else None
            )
            if rule is not None and rule.action == "torn":
                # simulate a crash mid-append: half the payload reaches
                # the disk, then the "process" dies
                self._fh.write(header + payload[: len(payload) // 2])
                self._fh.flush()
                os.fsync(self._fh.fileno())
                raise InjectedFault(
                    f"torn WAL append at record {self._records}"
                )
            self._fh.write(header + payload)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            index = self._records
            self._records += 1
            self._m_records.inc()
            self._m_bytes.inc(float(len(header) + len(payload)))
            self._m_size.set(float(self._fh.tell()))
            return index

    def truncate(self) -> None:
        """Drop every record (the snapshot published above them is durable)."""
        with self._lock:
            if self._closed:
                return
            self._fh.seek(0)
            self._fh.truncate()
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._records = 0
            self._m_truncations.inc()
            self._m_size.set(0.0)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.flush()
            finally:
                self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, "
            f"records={self.records}, fsync={self.fsync})"
        )


def recover_engine(
    snapshot,
    wal_path,
    *,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    validate: bool = True,
):
    """Rebuild the coordinator engine: snapshot + WAL tail, bit-identical.

    ``snapshot`` is a shared snapshot *directory* (an
    :class:`~repro.serve.epochs.ArenaPublisher` generation — loaded
    writable via :func:`~repro.store.persistence.load_shared_engine`) or
    a ``.npz`` engine file (:func:`~repro.store.persistence.load_engine`,
    which covers the object backend).  Each intact WAL record is replayed
    through the engine method that wrote it, with the recorded RNG state
    restored first, so the recovered engine's walk arenas, graph, and RNG
    position all equal the pre-crash engine's.  A torn tail is skipped
    (see module docstring for why that is the correct state).

    The bit-identity is **relative to the checkpoint image**: snapshot
    formats deliberately compact the walk layout, so a store carrying
    mutation history serializes to a canonical-order image.  Replay is
    therefore bit-identical to a pre-crash engine whose layout matched
    its last checkpoint — which the serve tier guarantees by truncating
    the WAL at every publish (the snapshot that opens each WAL window is
    the recovery base for that window).  The recovered graph and RNG
    cursor are always exact; the walk state is the deterministic replay
    of the logged mutations onto the checkpoint image — a valid
    Algorithm 1 state regardless of the crashed process's layout
    history (``tests/test_backend_fuzz.py``'s ``crash_recover`` op
    exercises exactly this checkpoint-adoption contract).

    Returns ``(engine, RecoveryReport)``.
    """
    from repro.graph.arrival import ArrivalEvent
    from repro.store.persistence import load_engine, load_shared_engine

    registry = registry if registry is not None else MetricsRegistry()
    tracer = tracer if tracer is not None else Tracer()
    snapshot = Path(snapshot)
    if snapshot.is_dir():
        engine = load_shared_engine(snapshot, validate=validate)
    else:
        engine = load_engine(snapshot)

    result = read_wal(wal_path)
    span = (
        tracer.start_leaf(
            "wal.replay",
            records=len(result.records),
            torn_bytes=result.torn_bytes,
        )
        if tracer.enabled
        else None
    )
    m_replayed = registry.counter(
        "repro_wal_replayed_records_total", "WAL records replayed on recovery"
    )
    m_torn = registry.counter(
        "repro_wal_torn_tails_total", "Torn WAL tails dropped on recovery"
    )
    events_replayed = 0
    for record in result.records:
        engine.set_rng_state(record.rng_state)
        if record.op == "batch":
            engine.apply_batch(
                ArrivalEvent(kind, source, target)
                for kind, source, target in record.events
            )
        elif record.op == "add":
            ((_, source, target),) = record.events
            engine.add_edge(source, target)
        else:
            ((_, source, target),) = record.events
            engine.remove_edge(source, target)
        events_replayed += len(record.events)
        m_replayed.inc()
    if result.torn:
        m_torn.inc()
    tracer.finish_leaf(span)
    return engine, RecoveryReport(
        records_replayed=len(result.records),
        events_replayed=events_replayed,
        torn_bytes=result.torn_bytes,
    )
