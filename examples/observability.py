#!/usr/bin/env python
"""The observability plane: one registry, spans, and stage timings live.

Every layer of the stack — serve caches, kernel batches, store fetch
accounting, the staleness scheduler — bills into a single
:class:`~repro.obs.MetricsRegistry`, and (at ``REPRO_OBS=2``) emits
structured spans through a shared :class:`~repro.obs.Tracer`.  This demo
drives a bounded-freshness serving stack under Zipf query traffic
interleaved with edge-arrival slices, then shows what the plane captured:

1. a live ASCII dashboard (per-round throughput and cache hit rate) plus
   the serve-layer scoreboard;
2. the Prometheus text exposition — the exact payload a scrape of this
   process would return, covering serve/store/scheduler/kernel series;
3. the span log exported as JSONL, with one request path reconstructed
   as a tree: drain -> chunk -> kernel.batch -> store.fetch.

Run:  python examples/observability.py [--nodes 1200] [--edges 14400]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from collections import defaultdict
from pathlib import Path

from repro.analysis.asciiplot import ascii_plot
from repro.core.incremental import IncrementalPageRank
from repro.obs import LEVEL_TRACE, MetricsRegistry, Tracer, set_level
from repro.serve import (
    QueryEngine,
    QueryRequest,
    RequestBatcher,
    zipf_seed_sequence,
)
from repro.workloads.twitter_like import twitter_like_stream


def render_trace_tree(spans, max_children: int = 4) -> str:
    """One drain's span tree, store.fetch fan-out summarized."""
    children = defaultdict(list)
    for span in spans:
        children[span.parent_id].append(span)
    drains = [s for s in spans if s.name == "serve.drain"]
    if not drains:
        return "(no serve.drain spans captured)"

    def has_kernel_work(span) -> bool:
        stack = [span]
        while stack:
            node = stack.pop()
            if node.name == "kernel.batch":
                return True
            stack.extend(children.get(node.span_id, []))
        return False

    # Prefer a drain that did kernel work (an all-cache-hit drain has
    # nothing below its chunks).
    interesting = [d for d in drains if has_kernel_work(d)]
    root = (interesting or drains)[-1]
    lines: list[str] = []

    def walk(span, depth: int) -> None:
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        lines.append(
            f"{'  ' * depth}{span.name}"
            f"{f' [{attrs}]' if attrs else ''}"
            f"  ({span.duration * 1e3:.2f} ms, {span.thread})"
        )
        kids = children.get(span.span_id, [])
        fetches = [k for k in kids if k.name == "store.fetch"]
        rest = [k for k in kids if k.name != "store.fetch"]
        for kid in rest:
            walk(kid, depth + 1)
        for kid in fetches[:max_children]:
            walk(kid, depth + 1)
        if len(fetches) > max_children:
            lines.append(
                f"{'  ' * (depth + 1)}... {len(fetches) - max_children} "
                f"more store.fetch spans"
            )

    walk(root, 0)
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=1200)
    parser.add_argument("--edges", type=int, default=14_400)
    parser.add_argument("--walks", type=int, default=5)
    parser.add_argument("--eps", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--length", type=int, default=800, help="walk length")
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--queries", type=int, default=200, help="per round")
    parser.add_argument("--pool", type=int, default=100, help="active users")
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="JSONL span export path (default: a temp file)",
    )
    args = parser.parse_args()

    # Full observability: stage profiling AND span collection.  In
    # production you'd set REPRO_OBS=2 in the environment instead.
    previous_level = set_level(LEVEL_TRACE)

    # ONE registry end to end: the engine threads it through both stores
    # and the update path; handing the same object to the QueryEngine
    # unifies serve/kernel/scheduler series into the same exposition.
    registry = MetricsRegistry()
    tracer = Tracer(capacity=65_536)

    stream = twitter_like_stream(args.nodes, args.edges, rng=args.seed)
    cut = int(len(stream) * 0.7)
    engine = IncrementalPageRank.from_graph(
        stream.snapshot_at(cut),
        reset_probability=args.eps,
        walks_per_node=args.walks,
        rng=args.seed,
        registry=registry,
    )
    service = QueryEngine(
        engine,
        rng_seed=7,
        registry=registry,
        tracer=tracer,
        freshness="bounded",
        staleness_budget=0.05,
    )
    window = stream.suffix(cut)
    slice_size = max(len(window) // max(args.rounds, 1), 1)
    print(f"store: {engine!r}\n")

    # -- 1. Zipf traffic interleaved with deferred ingestion -----------
    rounds_x, qps_series, hit_series = [], [], []
    with RequestBatcher(
        service, max_workers=4, max_queue_depth=4096
    ) as batcher:
        for round_index in range(args.rounds):
            requests = [
                QueryRequest(seed=s, k=10, length=args.length)
                for s in zipf_seed_sequence(
                    args.queries, args.pool, rng=round_index
                )
            ]
            started = time.perf_counter()
            # Two drains of the same traffic: the first pays for walks
            # (duplicates coalesce), the second is served from cache.
            results = batcher.run(requests)
            results += batcher.run(requests)
            seconds = time.perf_counter() - started
            answered = sum(1 for r in results if r is not None)
            rounds_x.append(round_index + 1)
            qps_series.append(answered / max(seconds, 1e-9))
            hit_series.append(service.stats.hit_rate * 100.0)
            # Mutations go through the scheduler: deferred inside the
            # staleness budget, repaired lazily / on read.
            chunk = window[
                round_index * slice_size : (round_index + 1) * slice_size
            ]
            if chunk:
                service.scheduler.apply_batch(chunk)
            print(
                f"round {round_index + 1}: {answered}/{len(results)} "
                f"answered, {qps_series[-1]:,.0f} qps, "
                f"hit rate {hit_series[-1]:.0f}%, "
                f"pending repairs {service.scheduler.pending_events}"
            )

    print()
    print(
        ascii_plot(
            {
                "qps/100": (rounds_x, [q / 100.0 for q in qps_series]),
                "hit %": (rounds_x, hit_series),
            },
            width=64,
            height=12,
            title="serve dashboard (per round)",
        )
    )
    print()
    print(service.stats.render())

    # -- 2. the Prometheus scrape payload ------------------------------
    exposition = registry.render_prometheus()
    print("\n--- Prometheus exposition (one registry, every layer) ---")
    # The real scrape payload includes every histogram bucket; elide
    # them here so the example output stays readable.
    kept = [
        line
        for line in exposition.splitlines()
        if "_bucket{" not in line and not line.startswith("# TYPE")
    ]
    elided = len(exposition.splitlines()) - len(kept)
    print("\n".join(kept))
    print(f"... ({elided} # TYPE / histogram-bucket lines elided)")
    for layer in ("serve", "store", "scheduler", "kernel"):
        assert f"repro_{layer}_" in exposition, f"missing {layer} series"
    print(
        "layers exposed: serve + store + scheduler + kernel "
        f"({len(registry.names())} metric families)"
    )

    # -- 3. spans: export, then reconstruct one request path -----------
    trace_path = args.trace_out
    if trace_path is None:
        trace_path = Path(tempfile.gettempdir()) / "repro_spans.jsonl"
    count = tracer.export_jsonl(trace_path)
    with open(trace_path) as handle:
        first = json.loads(handle.readline())
    print(f"\nexported {count} spans to {trace_path} (first: {first['name']})")
    print("\n--- one drain reconstructed from spans ---")
    print(render_trace_tree(tracer.spans()))

    service.detach()
    set_level(previous_level)


if __name__ == "__main__":
    main()
