"""Edge-arrival processes (the paper's network evolution models).

Theorem 4 is proved under the *random permutation* model: ``m`` adversarially
chosen edges arrive in uniformly random order.  §2.2 also analyzes the
*Dirichlet* model (``Pr[u_t = u] = (d_u(t−1)+1)/(t−1+n)``) and Example 1
shows the *adversarial* model admits no comparable bound.  All three are
implemented here as iterables of :class:`ArrivalEvent`, so the incremental
engines and the experiment drivers consume a single interface.

:class:`TimestampedStream` additionally supports snapshot prefixes, which the
link-prediction workload (Appendix A: "two dates, 5 weeks apart") uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "ArrivalEvent",
    "ArrivalProcess",
    "RandomPermutationArrival",
    "DirichletArrival",
    "AdversarialArrival",
    "TimestampedStream",
    "apply_events",
    "slice_events",
]

ADD = "add"
REMOVE = "remove"


@dataclass(frozen=True)
class ArrivalEvent:
    """One network mutation: ``kind`` is ``'add'`` or ``'remove'``."""

    kind: str
    source: int
    target: int
    time: int = -1

    def __post_init__(self) -> None:
        if self.kind not in (ADD, REMOVE):
            raise ConfigurationError(f"kind must be 'add' or 'remove', got {self.kind!r}")

    @property
    def edge(self) -> tuple[int, int]:
        return (self.source, self.target)


class ArrivalProcess:
    """Base class: an iterable of :class:`ArrivalEvent` over a node universe."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes

    def events(self) -> Iterator[ArrivalEvent]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return self.events()


class RandomPermutationArrival(ArrivalProcess):
    """The paper's main model: a fixed edge set in uniformly random order."""

    def __init__(
        self,
        edges: Sequence[tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        edge_list = list(edges)
        if num_nodes is None:
            num_nodes = 1 + max((max(u, v) for u, v in edge_list), default=0)
        super().__init__(num_nodes)
        self._edges = edge_list
        self._rng = ensure_rng(rng)

    @classmethod
    def of_graph(
        cls, graph: DynamicDiGraph, rng: RngLike = None
    ) -> "RandomPermutationArrival":
        """Present an existing graph's edge set in random arrival order."""
        return cls(graph.edge_list(), num_nodes=graph.num_nodes, rng=rng)

    @property
    def num_events(self) -> int:
        return len(self._edges)

    def events(self) -> Iterator[ArrivalEvent]:
        order = self._rng.permutation(len(self._edges))
        for time, index in enumerate(order, start=1):
            source, target = self._edges[int(index)]
            yield ArrivalEvent(ADD, source, target, time=time)


class DirichletArrival(ArrivalProcess):
    """The Dirichlet model of §2.2.

    At step ``t`` the source is drawn with
    ``Pr[u_t = u] = (outdeg_u(t−1) + 1) / (t − 1 + n)`` — i.e. uniformly from
    an arena that contains every node once plus every previously generated
    edge's source once.  The paper leaves targets unspecified; we draw them
    uniformly (duplicates/self-loops redrawn, bounded retries).
    """

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        *,
        rng: RngLike = None,
        max_retries: int = 64,
    ) -> None:
        super().__init__(num_nodes)
        if num_edges < 0:
            raise ConfigurationError(f"num_edges must be >= 0, got {num_edges}")
        self.num_edges = num_edges
        self._rng = ensure_rng(rng)
        self._max_retries = max_retries

    def events(self) -> Iterator[ArrivalEvent]:
        rng = self._rng
        source_arena = list(range(self.num_nodes))
        existing: set[tuple[int, int]] = set()
        produced = 0
        while produced < self.num_edges:
            edge = None
            for _ in range(self._max_retries):
                source = source_arena[int(rng.integers(len(source_arena)))]
                target = int(rng.integers(self.num_nodes))
                if target != source and (source, target) not in existing:
                    edge = (source, target)
                    break
            if edge is None:  # universe saturated around popular sources
                break
            existing.add(edge)
            source_arena.append(edge[0])
            produced += 1
            yield ArrivalEvent(ADD, edge[0], edge[1], time=produced)


class AdversarialArrival(ArrivalProcess):
    """A fixed, adversary-chosen arrival order (Example 1 workloads)."""

    def __init__(
        self,
        events: Sequence[ArrivalEvent | tuple[int, int]],
        *,
        num_nodes: Optional[int] = None,
    ) -> None:
        normalized = [
            event
            if isinstance(event, ArrivalEvent)
            else ArrivalEvent(ADD, event[0], event[1])
            for event in events
        ]
        if num_nodes is None:
            num_nodes = 1 + max(
                (max(e.source, e.target) for e in normalized), default=0
            )
        super().__init__(num_nodes)
        self._events = [
            ArrivalEvent(e.kind, e.source, e.target, time=t)
            for t, e in enumerate(normalized, start=1)
        ]

    @classmethod
    def gadget_then_killer(
        cls, graph: DynamicDiGraph, killer_edge: tuple[int, int], rng: RngLike = None
    ) -> "AdversarialArrival":
        """All of ``graph``'s edges (shuffled), then ``killer_edge`` last."""
        generator = ensure_rng(rng)
        edges = graph.edge_list()
        order = generator.permutation(len(edges))
        sequence: list[tuple[int, int]] = [edges[int(i)] for i in order]
        sequence.append(killer_edge)
        return cls(sequence, num_nodes=graph.num_nodes)

    @property
    def num_events(self) -> int:
        return len(self._events)

    def events(self) -> Iterator[ArrivalEvent]:
        return iter(self._events)


class TimestampedStream:
    """A replayable, timestamped mutation log with snapshot prefixes.

    The link-prediction experiment needs "the network as of date A" and
    "as of date B"; :meth:`snapshot_at` materializes the graph after the
    first ``t`` events without replaying the whole stream by hand.
    """

    def __init__(self, num_nodes: int, events: Iterable[ArrivalEvent]) -> None:
        self.num_nodes = num_nodes
        self._events: list[ArrivalEvent] = []
        for index, event in enumerate(events, start=1):
            time = event.time if event.time >= 0 else index
            self._events.append(
                ArrivalEvent(event.kind, event.source, event.target, time=time)
            )

    @classmethod
    def from_process(cls, process: ArrivalProcess) -> "TimestampedStream":
        return cls(process.num_nodes, process.events())

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ArrivalEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> ArrivalEvent:
        return self._events[index]

    def prefix(self, count: int) -> list[ArrivalEvent]:
        """The first ``count`` events (a "snapshot date")."""
        return self._events[:count]

    def suffix(self, start: int) -> list[ArrivalEvent]:
        """Events from position ``start`` onwards (arrivals *between* dates)."""
        return self._events[start:]

    def snapshot_at(self, count: int) -> DynamicDiGraph:
        """Materialize the graph after the first ``count`` events."""
        graph = DynamicDiGraph(self.num_nodes, allow_self_loops=False)
        apply_events(graph, self.prefix(count))
        return graph

    def iter_slices(
        self, batch_size: int, *, start: int = 0
    ) -> Iterator[list[ArrivalEvent]]:
        """Consecutive event slices of ``batch_size`` (last may be short).

        This is the ingestion unit of the batched maintenance path
        (:meth:`repro.core.incremental.IncrementalPageRank.apply_batch`):
        a deployed system drains its arrival queue in slices, not one edge
        at a time.
        """
        return slice_events(self._events[start:], batch_size)


def slice_events(
    events: Iterable[ArrivalEvent], batch_size: int
) -> Iterator[list[ArrivalEvent]]:
    """Yield consecutive slices of ``events`` with at most ``batch_size`` each.

    Order within and across slices is preserved, so replaying the slices in
    sequence is equivalent to replaying the original stream.
    """
    if batch_size <= 0:
        raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
    batch: list[ArrivalEvent] = []
    for event in events:
        batch.append(event)
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def apply_events(graph: DynamicDiGraph, events: Iterable[ArrivalEvent]) -> None:
    """Apply a mutation log to ``graph`` in order."""
    for event in events:
        graph.ensure_node(max(event.source, event.target))
        if event.kind == ADD:
            graph.add_edge(event.source, event.target)
        else:
            graph.remove_edge(event.source, event.target)
