"""Bounded-staleness scheduling vs eager per-event repair under load.

The ISSUE-6 acceptance: under interleaved Zipf query traffic and edge
arrivals, a bounded-freshness serving stack — mutations deferred through
a :class:`~repro.core.scheduler.StalenessScheduler` (coalesce mode) with
budget-aware repair-on-read — sustains **≥2× the combined update+query
throughput** of the eager stack that repairs synchronously on every
mutation, while the measured staleness error (the worst any single
node's score deviates from a fully-repaired twin, the per-node SLO the
budget caps) never exceeds the configured ``staleness_budget``
(verified untimed on the same stream).

The win has two sources, both measured here at once: deferred events
drain through one vectorized ``apply_batch`` per flush instead of one
index scan per event (the PR-1 batching result), and the result cache
stops being stormed by per-event invalidations between query bursts.

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (the CI workflow does).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.core.scheduler import StalenessScheduler
from repro.graph.arrival import ADD, REMOVE, ArrivalEvent
from repro.serve.engine import QueryEngine
from repro.serve.traffic import interleaved_traffic
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 800,
        "num_edges": 8_000,
        "num_events": 2_000,
        "num_queries": 120,
        "walk_length": 300,
        "event_batch": 400,
        "query_burst": 30,
        "budget": 0.05,
        "repeats": 3,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 2_000,
        "num_edges": 20_000,
        "num_events": 5_000,
        "num_queries": 240,
        "walk_length": 500,
        "event_batch": 500,
        "query_burst": 40,
        "budget": 0.05,
        "repeats": 3,
        "rng": 42,
    }
)


def _best_of_interleaved(candidates, repeats):
    """Best wall time per candidate, rounds interleaved (see bench_query_kernel)."""
    best = {name: float("inf") for name in candidates}
    for round_index in range(repeats):
        for name, function in candidates.items():
            started = time.perf_counter()
            function(round_index)
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def _toggle_stream(graph, num_events, rng):
    """A valid add/remove stream against ``graph``'s starting edge set."""
    present = set(graph.edge_list())
    num_nodes = graph.num_nodes
    events = []
    while len(events) < num_events:
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if u == v:
            continue
        if (u, v) in present:
            events.append(ArrivalEvent(REMOVE, u, v))
            present.discard((u, v))
        else:
            events.append(ArrivalEvent(ADD, u, v))
            present.add((u, v))
    return events


def run_scheduler_bench(
    *,
    num_nodes,
    num_edges,
    num_events,
    num_queries,
    walk_length,
    event_batch,
    query_burst,
    budget,
    repeats,
    rng,
):
    def build():
        graph = twitter_like_graph(num_nodes, num_edges, rng=0)
        return IncrementalPageRank.from_graph(graph, walks_per_node=4, rng=1)

    base = build()
    driver = np.random.default_rng(rng)
    events = _toggle_stream(base.graph, num_events, driver)
    phases = interleaved_traffic(
        events,
        num_nodes,
        num_queries=num_queries,
        k=10,
        length=walk_length,
        event_batch_size=event_batch,
        query_burst=query_burst,
        rng=rng,
    )

    # engines are prebuilt so the timed region is pure serve+ingest work
    eager_engines = [build() for _ in range(repeats)]
    bounded_engines = [build() for _ in range(repeats)]

    def eager_pass(round_index):
        engine = eager_engines[round_index]
        service = QueryEngine(engine, rng_seed=3)
        for phase in phases:
            if phase.events:
                for event in phase.events:
                    engine.apply(event)
            else:
                service.run_batch(phase.queries)
        service.detach()

    def bounded_pass(round_index):
        # Per-node budget, budget-aware reads: a query whose seed sits
        # inside the SLO is served from the (bounded-stale) store, so
        # the queue drains in a few large coalesced batches instead of
        # flushing at every burst.  close() is inside the timed region:
        # the pass ends fully repaired, like the eager one.
        engine = bounded_engines[round_index]
        scheduler = StalenessScheduler(
            engine,
            staleness_budget=budget,
            repair="coalesce",
            read_repair="budget",
        )
        service = QueryEngine(engine, rng_seed=3, scheduler=scheduler)
        for phase in phases:
            if phase.events:
                for event in phase.events:
                    scheduler.apply(event)
            else:
                service.run_batch(phase.queries)
        scheduler.close()
        service.detach()

    timings = _best_of_interleaved(
        {"eager": eager_pass, "bounded": bounded_pass}, repeats
    )

    # -- differential guard: both stacks end on the same graph ----------
    assert (
        eager_engines[0].graph.edge_list() == bounded_engines[0].graph.edge_list()
    )
    for engine in (eager_engines[0], bounded_engines[0]):
        engine.walks.check_invariants()

    # -- untimed budget verification on the same stream -----------------
    # Same budget config as the timed pass, but repair="replay" so the
    # stale engine is bit-identical to the fresh twin at every flush
    # point (coalesce would leave Monte Carlo resampling noise in the
    # comparison); flush cadence is driven by the estimates, which do
    # not depend on the repair mode.  No repair-on-read here — this
    # measurement is at least as stale as anything the serving stack
    # exposes.  The budget is per-node (the personalized SLO), so the
    # measured quantity is the worst single-node score deviation from
    # the fully-repaired twin, checked at every deferral depth.
    stale = build()
    fresh = build()
    verifier = StalenessScheduler(
        stale, staleness_budget=budget, repair="replay", read_repair="budget"
    )
    worst = 0.0
    for event in events:
        verifier.apply(event)
        fresh.apply(event)
        if verifier.pending_events:
            measured = float(
                np.abs(stale.pagerank() - fresh.pagerank()).max()
            )
            worst = max(worst, measured)
    assert worst <= budget, f"measured stale error {worst:.4f} > {budget}"
    verifier.close()

    total_ops = num_events + num_queries
    return {
        "eager ops/s": total_ops / timings["eager"],
        "bounded ops/s": total_ops / timings["bounded"],
        "speedup": timings["eager"] / timings["bounded"],
        "worst stale error": worst,
        "budget": budget,
    }


def test_scheduler_throughput(benchmark, once):
    result = once(benchmark, run_scheduler_bench, **PARAMS)

    print()
    print(
        "  ".join(
            f"{name} {value:,.3f}" for name, value in result.items()
        )
    )

    # The ISSUE-6 acceptance: >=2x sustained update+query throughput for
    # the bounded stack, with measured staleness error inside the budget.
    assert result["speedup"] >= 2.0
    assert result["worst stale error"] <= result["budget"]
