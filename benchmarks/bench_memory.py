"""E-MEM: storage-engine footprint — object vs columnar walk stores.

The ISSUE-3 acceptance bar: the columnar engine must hold the same
walk set in ≥2× fewer bytes per stored walk (measured via each backend's
``memory_bytes()``), with arena utilization reported honestly after
update churn and after ``compact()``.

Set ``REPRO_BENCH_FAST=1`` to shrink to smoke-test scale (CI).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.graph.arrival import ArrivalEvent
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

NUM_NODES = 800 if FAST_MODE else 4000
NUM_EDGES = 9_600 if FAST_MODE else 48_000
CHURN_EVENTS = 1_000 if FAST_MODE else 8_000
WALKS_PER_NODE = 10


def _churn_events(engine: IncrementalPageRank, count: int) -> list[ArrivalEvent]:
    rng = np.random.default_rng(9)
    events: list[ArrivalEvent] = []
    present = set(engine.graph.edge_list())
    while len(events) < count:
        u = int(rng.integers(NUM_NODES))
        v = int(rng.integers(NUM_NODES))
        if u == v:
            continue
        if (u, v) in present:
            events.append(ArrivalEvent("remove", u, v))
            present.discard((u, v))
        else:
            events.append(ArrivalEvent("add", u, v))
            present.add((u, v))
    return events


def run_memory_comparison() -> dict[str, dict[str, float]]:
    """Build the identical walk set on both backends; measure footprint."""
    report: dict[str, dict[str, float]] = {}
    for backend in ("object", "columnar"):
        graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=42)
        started = time.perf_counter()
        engine = IncrementalPageRank.from_graph(
            graph,
            walks_per_node=WALKS_PER_NODE,
            rng=7,
            store_backend=backend,
        )
        build_seconds = time.perf_counter() - started
        walks = engine.walks
        row = {
            "build_seconds": build_seconds,
            "segments": float(walks.num_segments),
            "visits": float(walks.total_visits),
            "bytes": float(walks.memory_bytes()),
            "bytes_per_walk": walks.memory_bytes() / walks.num_segments,
            "bytes_per_visit": walks.memory_bytes() / walks.total_visits,
        }
        engine.apply_batch(_churn_events(engine, CHURN_EVENTS))
        row["bytes_per_walk_after_churn"] = (
            walks.memory_bytes() / walks.num_segments
        )
        if backend == "columnar":
            stats = walks.memory_stats()
            row["arena_utilization_after_churn"] = stats["arena_utilization"]
            row["index_utilization_after_churn"] = stats["index_utilization"]
            walks.compact()
            walks.check_invariants()
            row["bytes_per_walk_after_compact"] = (
                walks.memory_bytes() / walks.num_segments
            )
            row["arena_utilization_after_compact"] = walks.memory_stats()[
                "arena_utilization"
            ]
        report[backend] = row
    return report


def _render(report: dict[str, dict[str, float]]) -> str:
    def fmt(value) -> str:
        return f"{value:14.3f}" if value is not None else " " * 14

    lines = [f"{'metric':38s} {'object':>14s} {'columnar':>14s}"]
    keys = sorted(set(report["object"]) | set(report["columnar"]))
    for key in keys:
        lines.append(
            f"{key:38s} {fmt(report['object'].get(key))} "
            f"{fmt(report['columnar'].get(key))}"
        )
    ratio = report["object"]["bytes_per_walk"] / report["columnar"]["bytes_per_walk"]
    lines.append(f"{'bytes/walk ratio (object/columnar)':38s} {ratio:14.2f}x")
    return "\n".join(lines)


def test_e_mem_bytes_per_walk(benchmark, once):
    report = once(benchmark, run_memory_comparison)
    obj = report["object"]
    col = report["columnar"]
    # identical walk sets: same segment ids, same visit totals
    assert obj["segments"] == col["segments"]
    assert obj["visits"] == col["visits"]
    # the headline acceptance: >=2x lower bytes per stored walk
    assert obj["bytes_per_walk"] >= 2.0 * col["bytes_per_walk"]
    # churn slack must never be runaway: utilization stays visible and
    # compaction restores a tight arena
    assert 0.0 < col["arena_utilization_after_churn"] <= 1.0
    assert col["arena_utilization_after_compact"] > 0.99
    assert col["bytes_per_walk_after_compact"] <= col["bytes_per_walk_after_churn"]
    print()
    print(_render(report))
