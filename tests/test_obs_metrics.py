"""The metrics registry: primitives, exposition, and stack-wide coverage.

Covers the ISSUE-7 observability plane at the metrics layer: counter /
gauge / histogram semantics (labels, thread safety, snapshot deltas),
interpolated percentiles on known distributions, both exposition formats
(the Prometheus text checker lives in conftest), and the integration
claim — one registry threaded through an engine + QueryEngine exposes
serve, store, scheduler, and kernel series together.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.incremental import IncrementalPageRank
from repro.errors import ConfigurationError
from repro.graph.generators import directed_preferential_attachment
from repro.obs import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.serve import QueryEngine, QueryRequest, RequestBatcher
from repro.serve.stats import ServeStats


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        hits = registry.counter("repro_serve_test_total", "t", labels=("result",))
        hits.inc(result="hit")
        hits.inc(2, result="miss")
        assert hits.value(result="hit") == 1
        assert hits.value(result="miss") == 2
        assert hits.total() == 3

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_core_x_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_unknown_labels_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_core_y_total", labels=("kind",))
        with pytest.raises(ConfigurationError):
            counter.inc(wrong="x")
        with pytest.raises(ConfigurationError):
            counter.inc()  # missing the declared label

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("0bad")
        with pytest.raises(ConfigurationError):
            registry.counter("repro_ok_total", labels=("bad-label",))


class TestGauge:
    def test_set_inc_dec_set_max(self):
        registry = MetricsRegistry()
        depth = registry.gauge("repro_scheduler_depth")
        depth.set(5)
        depth.inc(3)
        depth.dec()
        assert depth.value() == 7
        high = registry.gauge("repro_scheduler_depth_max")
        high.set_max(4)
        high.set_max(2)
        assert high.value() == 4


class TestHistogram:
    def test_observe_and_moments(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_serve_lat_seconds")
        for value in (0.001, 0.002, 0.004):
            latency.observe(value)
        assert latency.count() == 3
        assert latency.sum_value() == pytest.approx(0.007)
        assert latency.max_value() == pytest.approx(0.004)
        assert latency.mean() == pytest.approx(0.007 / 3)

    def test_overflow_bucket(self):
        registry = MetricsRegistry()
        sizes = registry.histogram("repro_serve_sizes", buckets=(1.0, 2.0, 4.0))
        sizes.observe(100.0)
        assert sizes.overflow_count() == 1
        assert sizes.bucket_counts() == {}

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_x_seconds", buckets=())
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_y_seconds", buckets=(2.0, 1.0))

    def test_percentile_empty_is_zero(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_serve_lat_seconds")
        assert latency.percentile(0.5) == 0.0
        assert latency.percentile(0.99) == 0.0

    def test_percentile_out_of_range_rejected(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_serve_lat_seconds")
        with pytest.raises(ConfigurationError):
            latency.percentile(1.5)
        with pytest.raises(ConfigurationError):
            latency.percentile(-0.1)

    def test_percentile_interpolates_within_bucket(self):
        """A uniform grid lands near the true percentile, not the bucket top."""
        registry = MetricsRegistry()
        latency = registry.histogram(
            "repro_serve_lat_seconds", buckets=LATENCY_BUCKETS
        )
        # 1..1000 ms uniformly: true p50 = 0.5005 s
        for i in range(1, 1001):
            latency.observe(i / 1000.0)
        p50 = latency.percentile(0.5)
        assert abs(p50 - 0.5005) < 0.05  # within the bucket, not at 0.524
        # p99 is clamped to the observed max
        assert latency.percentile(1.0) == pytest.approx(1.0)
        assert latency.percentile(0.99) <= 1.0

    def test_percentile_single_observation(self):
        registry = MetricsRegistry()
        latency = registry.histogram("repro_serve_lat_seconds")
        latency.observe(0.004)
        # interpolation never exceeds the observed max, and p=1.0 is exact
        assert 0.0 < latency.percentile(0.5) <= 0.004
        assert latency.percentile(1.0) == pytest.approx(0.004)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_serve_q_total", "queries", labels=("result",))
        b = registry.counter("repro_serve_q_total", labels=("result",))
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_serve_q_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_serve_q_total")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_serve_q_total", labels=("result",))
        with pytest.raises(ConfigurationError):
            registry.counter("repro_serve_q_total", labels=("outcome",))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_serve_b", buckets=BATCH_SIZE_BUCKETS)
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_serve_b", buckets=LATENCY_BUCKETS)

    def test_snapshot_and_delta(self):
        registry = MetricsRegistry()
        queries = registry.counter("repro_serve_q_total", labels=("result",))
        latency = registry.histogram("repro_serve_lat_seconds")
        queries.inc(result="hit")
        latency.observe(0.001)
        before = registry.snapshot()
        assert before['repro_serve_q_total{result="hit"}'] == 1
        assert before["repro_serve_lat_seconds_count"] == 1
        queries.inc(result="hit")
        queries.inc(result="miss")
        latency.observe(0.002)
        delta = registry.delta_since(before)
        assert delta['repro_serve_q_total{result="hit"}'] == 1
        assert delta['repro_serve_q_total{result="miss"}'] == 1
        assert delta["repro_serve_lat_seconds_count"] == 1
        assert delta["repro_serve_lat_seconds_sum"] == pytest.approx(0.002)

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        queries = registry.counter("repro_serve_q_total", labels=("result",))
        queries.inc(result="hit")
        registry.reset()
        assert queries.value(result="hit") == 0
        assert registry.get("repro_serve_q_total") is queries

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_core_ops_total")
        latency = registry.histogram("repro_core_lat_seconds")

        def hammer():
            for _ in range(5000):
                counter.inc()
                latency.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 20_000
        assert latency.count() == 20_000


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        queries = registry.counter(
            "repro_serve_queries_total", "Answered queries", labels=("result",)
        )
        queries.inc(result="hit")
        queries.inc(3, result="miss")
        depth = registry.gauge("repro_scheduler_stale_depth", "Queue depth")
        depth.set(17)
        latency = registry.histogram(
            "repro_serve_latency_seconds", "Serve latency"
        )
        latency.observe(0.0005)
        latency.observe(0.003)
        latency.observe(1e7)  # above the last latency bound: overflow
        return registry

    def test_prometheus_format_is_valid(self, prometheus_checker):
        prometheus_checker(self._populated().render_prometheus())

    def test_prometheus_content(self):
        text = self._populated().render_prometheus()
        assert "# HELP repro_serve_queries_total Answered queries" in text
        assert "# TYPE repro_serve_queries_total counter" in text
        assert 'repro_serve_queries_total{result="miss"} 3' in text
        assert "repro_scheduler_stale_depth 17" in text
        assert 'le="+Inf"} 3' in text
        assert "repro_serve_latency_seconds_count 3" in text

    def test_label_escaping(self, prometheus_checker):
        registry = MetricsRegistry()
        counter = registry.counter("repro_serve_odd_total", labels=("tag",))
        counter.inc(tag='quote " backslash \\ newline \n done')
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        prometheus_checker(text)

    def test_to_dict_round_trips_through_json(self):
        payload = json.loads(json.dumps(self._populated().to_dict()))
        queries = payload["repro_serve_queries_total"]
        assert queries["type"] == "counter"
        assert {"labels": {"result": "miss"}, "value": 3.0} in queries["series"]
        latency = payload["repro_serve_latency_seconds"]
        assert latency["series"][0]["count"] == 3
        assert latency["series"][0]["overflow"] == 1


# ----------------------------------------------------------------------
# Integration: one registry across the whole stack
# ----------------------------------------------------------------------


class TestStackExposition:
    def test_unified_registry_covers_every_layer(self, prometheus_checker):
        graph = directed_preferential_attachment(120, edges_per_node=3, rng=3)
        registry = MetricsRegistry()
        engine = IncrementalPageRank.from_graph(
            graph, walks_per_node=4, rng=1, registry=registry
        )
        service = QueryEngine(
            engine, rng_seed=7, registry=registry, freshness="bounded"
        )
        try:
            with RequestBatcher(service, max_workers=2) as batcher:
                batcher.run(
                    [
                        QueryRequest(seed=s % 40, k=5, length=300)
                        for s in range(30)
                    ]
                )
                service.scheduler.add_edge(0, 119)
                service.scheduler.flush()
                batcher.run([QueryRequest(seed=0, k=5, length=300)])
        finally:
            service.detach()

        text = registry.render_prometheus()
        prometheus_checker(text)
        # the acceptance: serve + store + scheduler + kernel series in
        # ONE exposition
        for needle in (
            'repro_serve_queries_total{result="miss"}',
            'repro_store_operations_total{store="pagerank",operation="fetch"}',
            "repro_scheduler_repairs_total",
            "repro_kernel_batches_total",
            "repro_core_mutations_total",
        ):
            assert needle in text, f"exposition missing {needle}"
        # snapshot agrees with the objects the layers already expose
        snapshot = registry.snapshot()
        assert (
            snapshot['repro_serve_queries_total{result="miss"}']
            + snapshot.get('repro_serve_queries_total{result="hit"}', 0.0)
            == service.stats.queries
        )
        assert (
            snapshot[
                'repro_store_operations_total{store="pagerank",operation="fetch"}'
            ]
            == engine.pagerank_store.stats.count("fetch")
        )

    def test_default_serve_stats_registries_are_private(self):
        """Two QueryEngines without an explicit registry stay independent."""
        graph = directed_preferential_attachment(60, edges_per_node=3, rng=3)
        engine = IncrementalPageRank.from_graph(graph, walks_per_node=4, rng=1)
        a = QueryEngine(engine, rng_seed=1)
        b = QueryEngine(engine, rng_seed=2)
        try:
            a.ppr(3, 200)
            assert a.stats.queries == 1
            assert b.stats.queries == 0
            assert a.registry is not b.registry
        finally:
            a.detach()
            b.detach()

    def test_serve_stats_shared_registry_merges_exposition(self):
        registry = MetricsRegistry()
        stats = ServeStats(registry=registry)
        stats.record_query(hit=False, latency=0.001)
        assert (
            registry.snapshot()['repro_serve_queries_total{result="miss"}'] == 1
        )
