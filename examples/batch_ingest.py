#!/usr/bin/env python
"""Batched stream ingestion: draining the arrival queue in slices.

A deployed system does not learn about one follow edge at a time — it
drains a queue.  This demo feeds the same arrival slice through the
per-edge maintenance path and through ``apply_batch`` at several batch
sizes, then reports wall-clock, repair work, per-batch store traffic, and
estimate quality against an exact solve.  The batched path repairs every
affected segment against the post-batch graph in one vectorized pass, so
it is both faster *and* does less walk work (a segment touched by several
arrivals is repaired once).

Run:  python examples/batch_ingest.py [--nodes 2000] [--edges 24000]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.baselines.power_iteration import exact_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.graph.arrival import RandomPermutationArrival, apply_events, slice_events
from repro.graph.digraph import DynamicDiGraph
from repro.workloads.twitter_like import twitter_like_graph


def build_engine(prefix_graph: DynamicDiGraph, args) -> IncrementalPageRank:
    # identical seed -> every mode starts from an identical walk store
    return IncrementalPageRank.from_graph(
        prefix_graph.copy(),
        reset_probability=args.eps,
        walks_per_node=args.walks,
        rng=np.random.default_rng(args.seed),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=2000)
    parser.add_argument("--edges", type=int, default=24_000)
    parser.add_argument("--walks", type=int, default=5)
    parser.add_argument("--eps", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--prebuild", type=float, default=0.2)
    args = parser.parse_args()

    final_graph = twitter_like_graph(args.nodes, args.edges, rng=args.seed)
    events = list(RandomPermutationArrival.of_graph(final_graph, rng=args.seed))
    cut = int(len(events) * args.prebuild)
    prefix_graph = DynamicDiGraph(args.nodes, allow_self_loops=False)
    apply_events(prefix_graph, events[:cut])
    window = events[cut:]
    exact = exact_pagerank(final_graph, reset_probability=args.eps)
    print(
        f"stream: {len(events)} arrivals, {cut} prebuilt, "
        f"{len(window)} ingested below (n={args.nodes}, R={args.walks})\n"
    )

    print("   mode            |  seconds | speedup | repaired segs | L1 vs exact")
    engine = build_engine(prefix_graph, args)
    started = time.perf_counter()
    for event in window:
        engine.apply(event)
    sequential_seconds = time.perf_counter() - started
    error = np.abs(engine.pagerank() - exact).sum()
    print(
        f"   per-edge        | {sequential_seconds:>8.2f} | {1.0:>7.1f} "
        f"| {engine.total_segments_rerouted:>13,} | {error:.4f}"
    )

    for batch_size in (100, 1000, max(len(window), 1)):
        engine = build_engine(prefix_graph, args)
        started = time.perf_counter()
        for chunk in slice_events(window, batch_size):
            engine.apply_batch(chunk)
        seconds = time.perf_counter() - started
        engine.walks.check_invariants()
        error = np.abs(engine.pagerank() - exact).sum()
        print(
            f"   batch {batch_size:>9,} | {seconds:>8.2f} "
            f"| {sequential_seconds / seconds:>7.1f} "
            f"| {engine.total_segments_rerouted:>13,} | {error:.4f}"
        )

    # per-batch store traffic, read straight off the stores' counters
    engine = build_engine(prefix_graph, args)
    social_before = engine.social_store.stats.snapshot()
    pagerank_before = engine.pagerank_store.stats.snapshot()
    report = engine.apply_batch(window)
    social_traffic = engine.social_store.stats.delta_since(social_before)
    pagerank_traffic = engine.pagerank_store.stats.delta_since(pagerank_before)
    print("\none whole-slice batch:")
    print(f"  events {report.num_events}: {report.num_adds} adds, {report.num_removes} removes")
    print(f"  segments rerouted {report.segments_rerouted}, examined {report.segments_examined}")
    print(f"  steps resimulated {report.steps_resimulated}, discarded {report.steps_discarded}")
    print(f"  mean activation probability {report.mean_activation_probability:.3f}")
    print(f"  social-store traffic:   {social_traffic}")
    print(f"  pagerank-store traffic: {pagerank_traffic}")


if __name__ == "__main__":
    main()
