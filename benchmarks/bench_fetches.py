"""E-F6: fetch-count benchmark against the Theorem-8 bound (Figure 6).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workload,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os


from repro.experiments.exp_fetches import run_fig6

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 1000,
        "num_edges": 12_000,
        "num_users": 3,
        "walk_counts": (5, 10),
        "lengths": (100, 1000, 5000),
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 4000,
        "num_edges": 48_000,
        "num_users": 6,
        "walk_counts": (5, 10, 20),
        "lengths": (100, 1000, 5000, 15_000),
        "rng": 42,
    }
)


def test_e_f6(benchmark, once):
    result = once(benchmark, run_fig6, **PARAMS)
    rows = result.rows
    if not FAST_MODE:
        # fetches grow sub-linearly in s …
        for walks in (5, 10, 20):
            series = [r for r in rows if r["R"] == walks]
            series.sort(key=lambda r: r["walk length s"])
            longest = series[-1]
            assert longest["measured fetches"] < longest["walk length s"] / 3
        # … stay within the Theorem-8 bound everywhere …
        assert all(row["within bound"] for row in rows)
        # … and are largely insensitive to R in the long-walk regime (the
        # paper's observation; at s≈100 the absolute counts are single
        # digits and relative spread is meaningless)
        by_length = {}
        for row in rows:
            if row["walk length s"] >= 1000:
                by_length.setdefault(row["walk length s"], []).append(
                    row["measured fetches"]
                )
        for length, values in by_length.items():
            spread = (max(values) - min(values)) / max(max(values), 1)
            assert spread < 0.6, f"fetches too sensitive to R at s={length}"
    print()
    print(result.render())
