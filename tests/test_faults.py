"""Deterministic fault injection: plan semantics + the chaos batteries.

Unit tests pin the :mod:`repro.faults` grammar (threshold arming, scoping,
pickle-resets-counters, the seeded kill schedule).  The ``chaos``-marked
tests drive real worker processes through seeded fault plans and assert
the supervision contract of DESIGN.md §15:

* every non-shed request is answered **bit-identically** to a fault-free
  run, no matter which workers died mid-drain (availability >= 99% on the
  standard kill schedule, and 100% here because nothing sheds);
* dead workers respawn (restart counters move, the frontend ends with all
  workers live) until the per-worker circuit breaker trips, after which
  traffic degrades to the survivors — or to inline coordinator execution
  at zero live workers;
* lost messages surface as deadline expiries and funnel into the same
  retry path; injected worker clock skew changes nothing, because
  liveness is judged by coordinator-clock receipt times.

Every chaos test prints/embeds its plan seed, so a failure is a one-line
reproduction: build the same plan, rerun the same schedule.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.errors import ConfigurationError, InjectedFault, ServeError
from repro.faults import (
    DELAY,
    DROP,
    KILL,
    PARTIAL,
    SKEW,
    TORN,
    FaultPlan,
    FaultRule,
    kill_each_worker_plan,
)
from repro.serve import (
    ArenaPublisher,
    MultiProcessFrontend,
    QueryRequest,
    WorkerConfig,
    WriteAheadLog,
    read_current,
    read_wal,
)
from repro.serve.worker import (
    HEARTBEAT,
    READY,
    STOP,
    STOPPED,
    worker_main,
)
from repro.store.persistence import save_shared_snapshot
from repro.workloads.twitter_like import twitter_like_graph

NUM_NODES = 36
NUM_EDGES = 180
CHAOS_SEED = 1234


def _fresh_engine():
    return IncrementalPageRank.from_graph(
        twitter_like_graph(NUM_NODES, NUM_EDGES, rng=5),
        walks_per_node=3,
        rng=np.random.default_rng(0),
    )


def _wave(count: int = 40):
    return [
        QueryRequest(kind="topk", seed=s % NUM_NODES, k=5) for s in range(count)
    ] + [
        QueryRequest(kind="ppr", seed=s % NUM_NODES, length=48)
        for s in range(count // 4)
    ]


def _identical(answer, reference) -> bool:
    if answer is None or reference is None:
        return answer is reference
    if hasattr(reference, "ranking"):
        return answer.ranking == reference.ranking
    return answer.visit_counts == reference.visit_counts


def _reference_answers(requests, **frontend_kwargs):
    frontend = MultiProcessFrontend(
        _fresh_engine(),
        config=WorkerConfig(rng_seed=11),
        **frontend_kwargs,
    )
    try:
        return frontend.run(requests)
    finally:
        frontend.close()


def _await_live(frontend, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(frontend.live_workers) >= count:
            return
        time.sleep(0.1)
    raise AssertionError(
        f"only {frontend.live_workers} workers live after {timeout}s"
    )


# ----------------------------------------------------------------------
# Plan semantics (pure unit tests)
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultRule(site="worker.batch", action="explode")
        with pytest.raises(ConfigurationError, match="after"):
            FaultRule(site="worker.batch", action=KILL, after=-1)
        with pytest.raises(ConfigurationError, match="seconds"):
            FaultRule(site="worker.batch", action=DELAY, seconds=-0.5)

    def test_fire_threshold_and_once_semantics(self):
        plan = FaultPlan([FaultRule(site="s", action=DROP, after=2)])
        assert plan.fire("s") is None
        assert plan.fire("s") is None
        rule = plan.fire("s")
        assert rule is not None and rule.action == DROP
        assert plan.fire("s") is None  # fired once, stays quiet
        assert plan.fired_count == 1

    def test_repeat_rule_keeps_firing(self):
        plan = FaultPlan([FaultRule(site="s", action=DROP, repeat=True)])
        assert plan.fire("s") is not None
        assert plan.fire("s") is not None

    def test_worker_and_incarnation_scoping(self):
        plan = FaultPlan(
            [FaultRule(site="s", action=KILL, worker=1, incarnation=0)]
        )
        assert plan.fire("s", worker=0) is None
        assert plan.fire("s", worker=1, incarnation=2) is None
        assert plan.fire("s", worker=1) is not None

    def test_wildcard_incarnation_matches_respawns(self):
        plan = FaultPlan(
            [FaultRule(site="s", action=KILL, incarnation=None, repeat=True)]
        )
        assert plan.fire("s", incarnation=0) is not None
        assert plan.fire("s", incarnation=3) is not None

    def test_two_rules_one_site_both_see_every_event(self):
        plan = FaultPlan(
            [
                FaultRule(site="s", action=DROP, after=1),
                FaultRule(site="s", action=DELAY, after=2, seconds=0.1),
            ]
        )
        assert plan.fire("s") is None
        assert plan.fire("s").action == DROP
        # the delay rule counted both earlier events too
        assert plan.fire("s").action == DELAY

    def test_pickle_resets_counters(self):
        plan = FaultPlan([FaultRule(site="s", action=DROP)], seed=9)
        assert plan.fire("s") is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 9 and clone.rules == plan.rules
        assert clone.fired_count == 0
        assert clone.fire("s") is not None  # counts its own events afresh

    def test_clock_skew_sums_without_advancing(self):
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.clock", action=SKEW, worker=0, seconds=100.0
                ),
                FaultRule(site="worker.clock", action=SKEW, seconds=5.0),
            ]
        )
        assert plan.clock_skew(worker=0) == 105.0
        assert plan.clock_skew(worker=1) == 5.0
        assert plan.fired_count == 0

    def test_kill_each_worker_plan_is_seeded(self):
        plan_a = kill_each_worker_plan(seed=7, num_workers=3)
        plan_b = kill_each_worker_plan(seed=7, num_workers=3)
        assert plan_a.rules == plan_b.rules
        assert sorted(rule.worker for rule in plan_a.rules) == [0, 1, 2]
        assert all(rule.action == KILL for rule in plan_a.rules)
        assert (
            kill_each_worker_plan(seed=8, num_workers=3).rules != plan_a.rules
        )


# ----------------------------------------------------------------------
# Worker-level hooks (in-process, no spawn)
# ----------------------------------------------------------------------


def _run_worker_inline(tmp_path, config, script, idle=0.0):
    """Drive worker_main in a thread over real queues; return responses."""
    snapshot = tmp_path / "snap"
    if not snapshot.exists():
        save_shared_snapshot(_fresh_engine(), snapshot)
    requests: queue.Queue = queue.Queue()
    responses: queue.Queue = queue.Queue()
    thread = threading.Thread(
        target=worker_main,
        args=(0, str(snapshot), 1, config, requests, responses),
        daemon=True,
    )
    thread.start()
    assert responses.get(timeout=30)[0] == READY
    for message in script:
        requests.put(message)
    if idle:
        time.sleep(idle)
    requests.put((STOP,))
    thread.join(timeout=30)
    drained = []
    while not responses.empty():
        drained.append(responses.get_nowait())
    return drained


def test_idle_worker_emits_heartbeats(tmp_path):
    config = WorkerConfig(rng_seed=11, heartbeat_interval=0.05)
    drained = _run_worker_inline(tmp_path, config, [], idle=0.3)
    tags = [message[0] for message in drained]
    assert HEARTBEAT in tags
    assert tags[-1] == STOPPED


def test_heartbeat_drop_fault_suppresses_heartbeats(tmp_path):
    plan = FaultPlan(
        [FaultRule(site="worker.heartbeat", action=DROP, repeat=True)]
    )
    config = WorkerConfig(
        rng_seed=11, heartbeat_interval=0.05, fault_plan=plan
    )
    drained = _run_worker_inline(tmp_path, config, [], idle=0.3)
    assert HEARTBEAT not in [message[0] for message in drained]


# ----------------------------------------------------------------------
# WAL + publisher fault hooks (no worker processes)
# ----------------------------------------------------------------------


def test_torn_wal_append_fault(tmp_path):
    engine = _fresh_engine()
    plan = FaultPlan([FaultRule(site="wal.append", action=TORN, after=1)])
    path = tmp_path / "updates.wal"
    wal = WriteAheadLog(path, fault_plan=plan)
    engine.attach_wal(wal)
    free = [
        (u, v)
        for u in range(NUM_NODES)
        for v in range(NUM_NODES)
        if u != v and not engine.graph.has_edge(u, v)
    ]
    engine.add_edge(*free[0])
    before = engine.pagerank().tobytes()
    with pytest.raises(InjectedFault):
        engine.add_edge(*free[1])
    # write-ahead means the failed append aborted *before* the mutation
    assert engine.pagerank().tobytes() == before
    assert not engine.graph.has_edge(*free[1])
    wal.close()
    result = read_wal(path)
    assert len(result.records) == 1 and result.torn
    with WriteAheadLog(path) as reopened:  # reopen repairs the torn tail
        assert reopened.records == 1
    assert not read_wal(path).torn


def test_partial_publish_leaves_old_generation_live(tmp_path):
    plan = FaultPlan(
        [FaultRule(site="publisher.publish", action=PARTIAL, after=1)]
    )
    publisher = ArenaPublisher(tmp_path, fault_plan=plan)
    engine = _fresh_engine()
    generation, directory = publisher.publish(engine)
    assert read_current(tmp_path) == (generation, directory)
    with pytest.raises(InjectedFault):
        publisher.publish(engine)
    # the pointer never flipped: readers still resolve the old generation
    assert read_current(tmp_path) == (generation, directory)
    generation2, directory2 = publisher.publish(engine)
    assert generation2 == generation + 1
    assert read_current(tmp_path) == (generation2, directory2)


# ----------------------------------------------------------------------
# Chaos batteries (worker processes + seeded fault plans)
# ----------------------------------------------------------------------


@pytest.mark.chaos
class TestChaosSupervision:
    def test_kill_each_worker_mid_drain_differential(self):
        """The ISSUE acceptance: a seeded plan kills every worker at least
        once mid-drain; every answer must be bit-identical to a fault-free
        run, availability >= 99%, all workers live again at the end, and
        the restarts are counted."""
        requests = _wave(48)
        plan = kill_each_worker_plan(seed=CHAOS_SEED, num_workers=2, lo=2, hi=6)
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=2,
            config=WorkerConfig(
                rng_seed=11, fault_plan=plan, heartbeat_interval=0.2
            ),
            request_timeout=20.0,
            max_retries=3,
            sweep_interval=0.1,
        )
        try:
            answers = [
                frontend.submit(request).result(timeout=120)
                for request in requests
            ]
            _await_live(frontend, 2)
            restarts = [frontend.worker_restarts(w) for w in (0, 1)]
            restarts_metric = frontend.registry.counter(
                "repro_serve_mp_worker_restarts_total", labels=("worker",)
            ).total()
            snapshot = frontend.registry.snapshot()
        finally:
            frontend.close()
        reference = _reference_answers(requests, num_workers=2)
        answered = sum(1 for answer in answers if answer is not None)
        availability = answered / len(requests)
        assert availability >= 0.99, (
            f"availability {availability:.3f} (chaos seed {CHAOS_SEED})"
        )
        for index, (answer, expected) in enumerate(zip(answers, reference)):
            assert _identical(answer, expected), (
                f"answer {index} diverged under chaos seed {CHAOS_SEED}"
            )
        assert all(count >= 1 for count in restarts), restarts
        assert restarts_metric == sum(restarts)
        assert snapshot.get("repro_serve_retries_total", 0.0) > 0

    def test_dropped_dispatch_hits_deadline_and_retries(self):
        """A coordinator-side dropped message is invisible until the batch
        deadline expires; the sweep terminates the (innocent) owner and
        the death path re-executes the batch."""
        requests = _wave(8)
        plan = FaultPlan(
            [FaultRule(site="frontend.dispatch", action=DROP, after=0)],
            seed=CHAOS_SEED,
        )
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=2,
            config=WorkerConfig(rng_seed=11),
            fault_plan=plan,
            request_timeout=1.0,
            max_retries=3,
            sweep_interval=0.1,
        )
        try:
            answers = frontend.run(requests)
            snapshot = frontend.registry.snapshot()
        finally:
            frontend.close()
        reference = _reference_answers(requests, num_workers=2)
        assert all(
            _identical(answer, expected)
            for answer, expected in zip(answers, reference)
        )
        assert snapshot.get("repro_serve_retries_total", 0.0) > 0

    def test_circuit_breaker_degrades_to_survivors(self):
        """A worker that dies in every incarnation trips its breaker after
        max_worker_restarts and traffic continues on the other worker."""
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.batch",
                    action=KILL,
                    worker=0,
                    incarnation=None,
                    repeat=True,
                )
            ],
            seed=CHAOS_SEED,
        )
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=2,
            config=WorkerConfig(rng_seed=11, fault_plan=plan),
            request_timeout=20.0,
            max_retries=5,
            max_worker_restarts=1,
            sweep_interval=0.1,
        )
        requests = _wave(16)
        try:
            answers = []
            tripped = False
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and not tripped:
                # keep offering traffic so every incarnation of worker 0
                # receives a batch (and dies) until the breaker trips
                answers = [
                    frontend.submit(request).result(timeout=60)
                    for request in requests
                ]
                with frontend._lock:
                    tripped = frontend._workers[0].tripped
                if not tripped:
                    time.sleep(0.3)
            assert tripped, "breaker never tripped within 60s"
            assert frontend.live_workers == [1]
            assert frontend.worker_restarts(0) == 1
            breaker_metric = frontend.registry.counter(
                "repro_serve_mp_breaker_trips_total", labels=("worker",)
            ).total()
        finally:
            frontend.close()
        assert breaker_metric == 1.0
        reference = _reference_answers(requests, num_workers=2)
        assert all(
            _identical(answer, expected)
            for answer, expected in zip(answers, reference)
        )

    def test_inline_fallback_at_zero_live_workers(self):
        """With every breaker tripped the coordinator serves inline from
        the published snapshot — still bit-identical."""
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.batch",
                    action=KILL,
                    incarnation=None,
                    repeat=True,
                )
            ],
            seed=CHAOS_SEED,
        )
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=1,
            config=WorkerConfig(rng_seed=11, fault_plan=plan),
            request_timeout=20.0,
            max_retries=3,
            max_worker_restarts=0,
            sweep_interval=0.1,
        )
        requests = _wave(12)
        try:
            answers = frontend.run(requests)
            assert frontend.live_workers == []
            snapshot = frontend.registry.snapshot()
        finally:
            frontend.close()
        assert snapshot.get("repro_serve_mp_inline_total", 0.0) > 0
        reference = _reference_answers(requests, num_workers=1)
        assert all(
            _identical(answer, expected)
            for answer, expected in zip(answers, reference)
        )

    def test_injected_clock_skew_changes_nothing(self):
        """Supervision judges liveness by coordinator-clock receipt times,
        so a worker whose clock is an hour off neither gets restarted nor
        answers differently."""
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.clock", action=SKEW, worker=0, seconds=3600.0
                )
            ],
            seed=CHAOS_SEED,
        )
        requests = _wave(16)
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=2,
            config=WorkerConfig(
                rng_seed=11, fault_plan=plan, heartbeat_interval=0.1
            ),
            sweep_interval=0.1,
        )
        try:
            answers = frontend.run(requests)
            time.sleep(0.5)  # several sweeps worth of heartbeat judging
            assert [frontend.worker_restarts(w) for w in (0, 1)] == [0, 0]
            assert frontend.live_workers == [0, 1]
        finally:
            frontend.close()
        reference = _reference_answers(requests, num_workers=2)
        assert all(
            _identical(answer, expected)
            for answer, expected in zip(answers, reference)
        )


@pytest.mark.chaos
class TestEpochBarrierRegressions:
    def test_publish_epoch_clears_waiter_when_publish_raises(self, tmp_path):
        """Regression: a publish failure used to leak the registered epoch
        waiter, so the *next* barrier could be completed by a stale ack."""
        plan = FaultPlan(
            [FaultRule(site="publisher.publish", action=PARTIAL, after=1)],
            seed=CHAOS_SEED,
        )
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=1,
            root=tmp_path / "arenas",
            config=WorkerConfig(rng_seed=11),
            fault_plan=plan,
        )
        try:
            with pytest.raises(InjectedFault):
                frontend.publish_epoch()
            assert frontend._epochs == {}
            generation = frontend.publish_epoch()  # rule fired once; clean
            assert generation == frontend.generation
            answers = frontend.run(_wave(4))
            assert all(answer is not None for answer in answers)
        finally:
            frontend.close()

    def test_publish_epoch_clears_waiter_on_timeout(self):
        """Regression: the timeout path pops the waiter, and the late ack
        that eventually arrives must not complete a later barrier."""
        plan = FaultPlan(
            [
                FaultRule(
                    site="worker.epoch",
                    action=DELAY,
                    worker=0,
                    seconds=1.5,
                )
            ],
            seed=CHAOS_SEED,
        )
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=1,
            config=WorkerConfig(rng_seed=11, fault_plan=plan),
        )
        try:
            with pytest.raises(ServeError, match="not acked"):
                frontend.publish_epoch(timeout=0.2)
            assert frontend._epochs == {}
            time.sleep(2.0)  # the delayed ack for the failed epoch lands
            generation = frontend.publish_epoch(timeout=60.0)
            assert generation == frontend.generation
            assert frontend._epochs == {}
        finally:
            frontend.close()

    def test_prune_spares_generations_workers_still_reference(self, tmp_path):
        """Regression: count-based retention could delete the generation a
        slow respawn was attaching when two publishes landed inside one
        spawn window — every attach then died with INIT_ERROR and the
        retries burned the breaker budget.  Prune must keep everything any
        non-tripped slot still references."""
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=2,
            root=tmp_path / "arenas",
            config=WorkerConfig(rng_seed=11),
        )
        try:
            with frontend._lock:
                slot = frontend._workers[0]
                slot.live = False  # dead, respawn not yet installed
                slot.starting = True
                pinned = slot.generation
            for _ in range(3):  # retain=2 alone would drop ``pinned``
                frontend.publish_epoch(timeout=60.0)
            names = {path.name for path in (tmp_path / "arenas").glob("gen-*")}
            assert f"gen-{pinned:06d}" in names, sorted(names)
            with frontend._lock:
                slot.live = True
                slot.starting = False
            frontend.publish_epoch(timeout=60.0)  # worker 0 rejoins the barrier
            answers = frontend.run(_wave(4))
            assert all(answer is not None for answer in answers)
            # nothing pinned anymore: the next publish prunes back to retain
            frontend.publish_epoch(timeout=60.0)
            remaining = sorted((tmp_path / "arenas").glob("gen-*"))
            assert len(remaining) <= frontend.publisher.retain
        finally:
            frontend.close()


@pytest.mark.chaos
class TestLifecycleHardening:
    def test_close_tolerates_already_dead_workers(self):
        frontend = MultiProcessFrontend(
            _fresh_engine(), num_workers=2, config=WorkerConfig(rng_seed=11)
        )
        processes = list(frontend._processes)
        processes[0].terminate()
        processes[0].join(timeout=10)
        frontend.close()  # must not raise
        assert all(not process.is_alive() for process in processes)

    def test_concurrent_close_is_idempotent(self):
        """User-thread close racing the atexit hook (and itself)."""
        frontend = MultiProcessFrontend(
            _fresh_engine(), num_workers=2, config=WorkerConfig(rng_seed=11)
        )
        errors: list = []

        def close_loop():
            try:
                frontend.close()
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        threads = [threading.Thread(target=close_loop) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert frontend.closed
        assert all(not process.is_alive() for process in frontend._processes)

    def test_close_during_in_flight_requests_fails_futures(self):
        frontend = MultiProcessFrontend(
            _fresh_engine(),
            num_workers=1,
            config=WorkerConfig(
                rng_seed=11,
                fault_plan=FaultPlan(
                    [
                        FaultRule(
                            site="worker.batch",
                            action=DELAY,
                            seconds=5.0,
                            repeat=True,
                        )
                    ]
                ),
            ),
        )
        future = frontend.submit(QueryRequest(kind="topk", seed=1, k=5))
        frontend.close()
        # the future must be settled either way — a graceful close waits
        # out the in-flight batch (result), a forced one fails it — but a
        # waiter may never hang on a closed frontend
        try:
            assert future.result(timeout=10) is not None
        except ServeError:
            pass
