"""ShardedGraphBackend under concurrent read traffic (ISSUE 2 satellite).

The serving layer's worker pool drives adjacency reads against the same
sharded backend the maintenance path writes.  Two properties must hold:

* **no lost operations** — per-shard ``CallStats`` are lock-protected, so
  a threaded query storm bills exactly the same per-shard totals as the
  identical serial storm (queries are deterministic: each walk's RNG is
  derived from the query, never from execution order);
* **correct attribution** — every operation lands on the shard owning the
  touched adjacency row (out-ops on the source's shard, in-ops on the
  target's), including when ``apply_batch`` slices interleave with query
  bursts.
"""

from __future__ import annotations

import threading
from collections import Counter

import pytest

from repro.core.incremental import IncrementalPageRank
from repro.graph.arrival import RandomPermutationArrival
from repro.serve import QueryEngine, QueryRequest, RequestBatcher
from repro.serve.traffic import zipf_seed_sequence
from repro.store.sharded import ShardedGraphBackend
from repro.store.social_store import SocialStore
from repro.store.stats import CallStats
from repro.workloads.twitter_like import twitter_like_graph

NUM_SHARDS = 4
NODES = 200


def _sharded_setup(prebuild_events):
    backend = ShardedGraphBackend(num_shards=NUM_SHARDS)
    engine = IncrementalPageRank(
        SocialStore(backend), walks_per_node=3, rng=5, reset_probability=0.3
    )
    for _ in range(NODES):
        engine.add_node()
    engine.apply_batch(prebuild_events)
    return backend, engine


@pytest.fixture(scope="module")
def workload():
    graph = twitter_like_graph(NODES, 2400, rng=1)
    events = list(RandomPermutationArrival.of_graph(graph, rng=2))
    return events


def _shard_snapshots(backend):
    return [stats.snapshot() for stats in backend.shard_stats]


def _delta(after, before):
    return [
        {
            op: shard_after.get(op, 0) - shard_before.get(op, 0)
            for op in set(shard_after) | set(shard_before)
        }
        for shard_after, shard_before in zip(after, before)
    ]


class TestConcurrentReadAttribution:
    def test_callstats_record_is_thread_safe(self):
        stats = CallStats()
        per_thread = 20_000

        def hammer():
            for _ in range(per_thread):
                stats.record("op")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.count("op") == 8 * per_thread

    def test_threaded_queries_bill_same_per_shard_totals_as_serial(
        self, workload
    ):
        requests = [
            QueryRequest(seed=seed, k=5, length=400)
            for seed in zipf_seed_sequence(60, NODES, rng=3)
        ]

        def drive(threaded: bool):
            backend, engine = _sharded_setup(workload[: len(workload) // 2])
            # shared fetch cache off: with it on, which thread fetches a
            # node first is racy (the walks stay identical, but the store
            # op counts would not be reproducible).  Kernel batching off:
            # this test compares the worker pool against the serial
            # single-query path op for op, so every request must run as
            # its own walk (a kernel drain would share node loads across
            # the chunk — deliberately fewer reads; see the test below).
            service = QueryEngine(engine, rng_seed=9, share_fetches=False)
            before = _shard_snapshots(backend)
            if threaded:
                with RequestBatcher(
                    service,
                    max_workers=4,
                    max_queue_depth=4096,
                    kernel_batching=False,
                ) as batcher:
                    results = batcher.run(requests)
            else:
                results = [
                    service.top_k(r.seed, r.k, length=r.length)
                    for r in requests
                ]
            return results, _delta(_shard_snapshots(backend), before)

        serial_results, serial_delta = drive(threaded=False)
        threaded_results, threaded_delta = drive(threaded=True)
        # identical answers …
        for serial_result, threaded_result in zip(
            serial_results, threaded_results
        ):
            assert serial_result.ranking == threaded_result.ranking
        # … and identical per-shard read-op billing, shard by shard
        assert threaded_delta == serial_delta
        read_ops = sum(
            shard.get("out_neighbors", 0) for shard in threaded_delta
        )
        assert read_ops > 0

    def test_kernel_batched_drain_bills_deterministically(self, workload):
        """A kernel-batched threaded drain is still reproducible: chunking
        is a pure function of the request list, node loads are per chunk,
        and per-shard billing never depends on which worker ran a chunk —
        two identical storms on identical stores bill identically (and
        read strictly fewer adjacency rows than one-walk-per-request)."""
        requests = [
            QueryRequest(seed=seed, k=5, length=400)
            for seed in zipf_seed_sequence(60, NODES, rng=3)
        ]

        def drive():
            backend, engine = _sharded_setup(workload[: len(workload) // 2])
            service = QueryEngine(engine, rng_seed=9, share_fetches=False)
            before = _shard_snapshots(backend)
            with RequestBatcher(
                service, max_workers=4, max_queue_depth=4096
            ) as batcher:
                results = batcher.run(requests)
            return results, _delta(_shard_snapshots(backend), before)

        first_results, first_delta = drive()
        second_results, second_delta = drive()
        for one, other in zip(first_results, second_results):
            assert one.ranking == other.ranking
        assert first_delta == second_delta
        reads = sum(s.get("out_neighbors", 0) for s in first_delta)
        assert reads > 0

    def test_apply_batch_interleaved_with_queries_attributes_writes(
        self, workload
    ):
        half = len(workload) // 2
        backend, engine = _sharded_setup(workload[:half])
        service = QueryEngine(engine, rng_seed=9)
        slices = [workload[half : half + 60], workload[half + 60 : half + 120]]
        before = _shard_snapshots(backend)
        expected_out = Counter()
        expected_in = Counter()
        with RequestBatcher(
            service, max_workers=4, max_queue_depth=4096
        ) as batcher:
            for ingestion_slice in slices:
                batcher.run(
                    [
                        QueryRequest(seed=seed, k=5, length=300)
                        for seed in zipf_seed_sequence(
                            20, NODES, rng=len(ingestion_slice)
                        )
                    ]
                )
                engine.apply_batch(ingestion_slice)
                for event in ingestion_slice:
                    expected_out[backend.shard_of(event.source)] += 1
                    expected_in[backend.shard_of(event.target)] += 1
        delta = _delta(_shard_snapshots(backend), before)
        for shard in range(NUM_SHARDS):
            assert delta[shard].get("add_edge_out", 0) == expected_out[shard]
            assert delta[shard].get("add_edge_in", 0) == expected_in[shard]
        # reads happened on every shard that owns queried adjacency rows
        assert sum(s.get("out_neighbors", 0) for s in delta) > 0
        # the serving answers stayed consistent through the interleaving
        ranking = service.top_k(0, 5, length=300).ranking
        assert ranking == service.top_k(0, 5, length=300).ranking

    def test_shard_load_accounting_still_consistent(self, workload):
        backend, engine = _sharded_setup(workload)
        service = QueryEngine(engine, rng_seed=4)
        with RequestBatcher(service, max_workers=4) as batcher:
            batcher.run(
                [QueryRequest(seed=s, k=5, length=300) for s in range(32)]
            )
        loads = backend.shard_load()
        assert len(loads) == NUM_SHARDS
        assert sum(loads) == sum(
            stats.total() for stats in backend.shard_stats
        )
        assert backend.load_imbalance() >= 1.0
