"""Snapshot/restore for walk stores and engines.

A production PageRank Store is expensive to initialize (``nR/ε`` walk
steps) and must survive process restarts; §2.2's whole point is never
recomputing it.  This module serializes any
:class:`~repro.core.walks.WalkIndex` (and a whole
:class:`~repro.core.incremental.IncrementalPageRank` engine: graph +
parameters + store) to a single ``.npz`` file.

Two on-disk formats exist (DESIGN.md §8); :func:`load_walk_store` and
:func:`load_engine` auto-detect the version from the snapshot metadata:

* **Version 1** (legacy): segments flattened into one int64 arena plus a
  lengths vector.  Loading replays ``add_segment`` per segment into an
  object-backed :class:`~repro.core.walks.WalkStore`, so the inverted
  visit index is rebuilt and validated by construction.
* **Version 2** (current default): the same columnar arrays, but loading
  adopts the arena directly into a
  :class:`~repro.core.columnar.ColumnarWalkStore` and rebuilds the visit
  index with one vectorized pass — no per-segment interpreter replay.
  Saving from a columnar store exports its (compacted) arena without
  materializing a single Python segment object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.core.columnar import ColumnarWalkStore
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    WalkIndex,
    WalkSegment,
    WalkStore,
)
from repro.errors import ConfigurationError, WalkStateError
from repro.graph.digraph import DynamicDiGraph
from repro.store.social_store import SocialStore

if TYPE_CHECKING:  # engine import is deferred at runtime (circular import)
    from repro.core.incremental import IncrementalPageRank

__all__ = [
    "save_walk_store",
    "load_walk_store",
    "save_engine",
    "load_engine",
]

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
PathLike = Union[str, Path]


def _store_arrays(store: WalkIndex) -> dict[str, np.ndarray]:
    """Columnar export of ``store``: one flat arena + per-segment columns.

    A :class:`ColumnarWalkStore` hands its (compacted) columns over
    directly; any other :class:`WalkIndex` is flattened segment by
    segment.  The array layout is identical for v1 and v2 snapshots —
    only the load path differs.
    """
    if isinstance(store, ColumnarWalkStore):
        flat, lengths, reasons, parities = store.to_arrays()
    else:
        length_list = []
        reason_list = []
        parity_list = []
        flat_list: list[int] = []
        for _, segment in store.iter_segments():
            length_list.append(len(segment.nodes))
            reason_list.append(segment.end_reason)
            parity_list.append(segment.parity_offset)
            flat_list.extend(segment.nodes)
        flat = np.asarray(flat_list, dtype=np.int64)
        lengths = np.asarray(length_list, dtype=np.int64)
        reasons = np.asarray(reason_list, dtype=np.int8)
        parities = np.asarray(parity_list, dtype=np.int8)
    return {
        "segment_lengths": lengths,
        "segment_end_reasons": reasons,
        "segment_parities": parities,
        "segment_nodes": flat,
    }


def _check_version(version: int) -> None:
    if version not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"snapshot format version must be one of {SUPPORTED_VERSIONS}, "
            f"got {version!r}"
        )


def save_walk_store(
    store: WalkIndex, path: PathLike, *, version: int = FORMAT_VERSION
) -> None:
    """Serialize ``store`` to ``path`` (``.npz``).

    ``version=1`` writes the legacy format (loadable by older readers);
    the default v2 format loads zero-copy into a columnar store.
    """
    _check_version(version)
    meta = {
        "format_version": version,
        "kind": "walk_store",
        "num_nodes": store.num_nodes,
        "track_sides": store.track_sides,
    }
    np.savez_compressed(
        Path(path),
        meta=json.dumps(meta),
        **_store_arrays(store),
    )


def _load_segments_into(store: WalkStore, data) -> None:
    """v1 load path: replay ``add_segment``, rebuilding the index as we go."""
    lengths = data["segment_lengths"]
    reasons = data["segment_end_reasons"]
    parities = data["segment_parities"]
    flat = data["segment_nodes"]
    if lengths.sum() != len(flat):
        raise WalkStateError("corrupt snapshot: arena length mismatch")
    offset = 0
    for length, reason, parity in zip(lengths, reasons, parities):
        nodes = flat[offset : offset + int(length)].tolist()
        offset += int(length)
        if reason not in (END_RESET, END_DANGLING):
            raise WalkStateError(f"corrupt snapshot: end reason {reason}")
        store.add_segment(
            WalkSegment([int(n) for n in nodes], int(reason), parity_offset=int(parity))
        )


def _columnar_from_data(data, meta) -> ColumnarWalkStore:
    """v2 load path: adopt the arena, rebuild the index vectorized."""
    lengths = data["segment_lengths"]
    flat = data["segment_nodes"]
    if lengths.sum() != len(flat):
        raise WalkStateError("corrupt snapshot: arena length mismatch")
    try:
        return ColumnarWalkStore.from_arrays(
            flat,
            lengths,
            data["segment_end_reasons"],
            data["segment_parities"],
            num_nodes=int(meta["num_nodes"]),
            track_sides=bool(meta["track_sides"]),
        )
    except WalkStateError as error:
        raise WalkStateError(f"corrupt snapshot: {error}") from error


def _read_meta(data, expected_kind: str) -> dict:
    meta = json.loads(str(data["meta"]))
    if meta.get("format_version") not in SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported snapshot version {meta.get('format_version')!r}"
        )
    if meta.get("kind") != expected_kind:
        raise ConfigurationError(
            f"snapshot holds a {meta.get('kind')!r}, expected {expected_kind!r}"
        )
    return meta


def load_walk_store(path: PathLike) -> WalkIndex:
    """Load a store saved by :func:`save_walk_store` (version auto-detected).

    v1 snapshots replay into an object-backed :class:`WalkStore`; v2
    snapshots load zero-copy into a :class:`ColumnarWalkStore`.  Either
    way the visit index is rebuilt from the segments, never trusted from
    disk.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        meta = _read_meta(data, "walk_store")
        if int(meta["format_version"]) >= 2:
            return _columnar_from_data(data, meta)
        store = WalkStore(
            int(meta["num_nodes"]), track_sides=bool(meta["track_sides"])
        )
        _load_segments_into(store, data)
    return store


def save_engine(
    engine: "IncrementalPageRank", path: PathLike, *, version: int = FORMAT_VERSION
) -> None:
    """Serialize an engine: parameters, graph edges, and walk store."""
    _check_version(version)
    graph = engine.graph
    edges = graph.edge_list()
    sources = np.asarray([u for u, _ in edges], dtype=np.int64)
    targets = np.asarray([v for _, v in edges], dtype=np.int64)
    meta = {
        "format_version": version,
        "kind": "incremental_pagerank",
        "num_nodes": graph.num_nodes,
        "track_sides": engine.walks.track_sides,
        "reset_probability": engine.reset_probability,
        "walks_per_node": engine.walks_per_node,
        "reroute_policy": engine.reroute_policy,
        "allow_self_loops": graph.allow_self_loops,
    }
    np.savez_compressed(
        Path(path),
        meta=json.dumps(meta),
        edge_sources=sources,
        edge_targets=targets,
        **_store_arrays(engine.walks),
    )


def load_engine(path: PathLike, *, rng=None) -> "IncrementalPageRank":
    """Restore an engine saved by :func:`save_engine` (version auto-detected).

    The walk store is revalidated against the restored graph: every stored
    step must traverse an existing edge, and dangling ends must sit at
    out-degree-zero nodes — a corrupt or mismatched snapshot fails loudly
    instead of silently skewing estimates.
    """
    from repro.core.incremental import IncrementalPageRank

    with np.load(Path(path), allow_pickle=False) as data:
        meta = _read_meta(data, "incremental_pagerank")
        graph = DynamicDiGraph(
            int(meta["num_nodes"]), allow_self_loops=bool(meta["allow_self_loops"])
        )
        for source, target in zip(data["edge_sources"], data["edge_targets"]):
            graph.add_edge(int(source), int(target))
        engine = IncrementalPageRank(
            SocialStore.of_graph(graph),
            reset_probability=float(meta["reset_probability"]),
            walks_per_node=int(meta["walks_per_node"]),
            reroute_policy=str(meta["reroute_policy"]),
            rng=rng,
        )
        if int(meta["format_version"]) >= 2:
            store: WalkIndex = _columnar_from_data(data, meta)
        else:
            store = WalkStore(
                graph.num_nodes, track_sides=bool(meta["track_sides"])
            )
            _load_segments_into(store, data)
        engine.pagerank_store.walks = store

    _validate_against_graph(engine)
    return engine


def _validate_against_graph(engine: "IncrementalPageRank") -> None:
    """Vectorized snapshot-vs-graph consistency check (O(total visits))."""
    graph = engine.graph
    walks = engine.walks
    if walks.num_segments == 0:
        return
    segment_ids = range(walks.num_segments)
    views = [walks.segment_view(sid) for sid in segment_ids]
    lengths = np.fromiter((v.size for v in views), dtype=np.int64, count=len(views))
    flat = np.concatenate(views)
    ends = np.cumsum(lengths)
    # node ids must be in range *before* the integer edge-key encoding
    # below — an out-of-range id would alias onto a legitimate key
    if flat.size and (int(flat.min()) < 0 or int(flat.max()) >= graph.num_nodes):
        bad = int(flat[(flat < 0) | (flat >= graph.num_nodes)][0])
        raise WalkStateError(
            f"snapshot mismatch: segment visits node {bad} outside the "
            f"{graph.num_nodes}-node graph"
        )
    # every stored step must traverse an existing edge
    is_step = np.ones(flat.size, dtype=bool)
    is_step[ends - 1] = False
    step_positions = np.flatnonzero(is_step)
    step_sources = flat[step_positions]
    step_targets = flat[step_positions + 1]
    key_base = np.int64(max(graph.num_nodes, 1))
    edges = graph.edge_list()
    edge_keys = np.asarray([u * key_base + v for u, v in edges], dtype=np.int64)
    valid = np.isin(step_sources * key_base + step_targets, edge_keys)
    if not valid.all():
        first = int(np.flatnonzero(~valid)[0])
        raise WalkStateError(
            f"snapshot mismatch: segment step {int(step_sources[first])}->"
            f"{int(step_targets[first])} not in graph"
        )
    # dangling ends must sit at out-degree-zero nodes
    last_nodes = flat[ends - 1]
    reasons = np.fromiter(
        (walks.end_reason_of(sid) for sid in segment_ids),
        dtype=np.int8,
        count=walks.num_segments,
    )
    for index in np.flatnonzero(reasons == END_DANGLING).tolist():
        node = int(last_nodes[index])
        if graph.out_degree(node) != 0:
            raise WalkStateError(
                f"snapshot mismatch: DANGLING end at non-dangling node {node}"
            )
