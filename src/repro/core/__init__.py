"""Core contribution: Monte Carlo walk-segment PageRank/SALSA machinery."""

from repro.core import theory
from repro.core.columnar import (
    BACKEND_COLUMNAR,
    BACKEND_OBJECT,
    ColumnarWalkStore,
    make_walk_store,
)
from repro.core.incremental import (
    REROUTE_REDIRECT,
    REROUTE_RESIMULATE,
    BatchUpdateReport,
    IncrementalPageRank,
    UpdateReport,
)
from repro.core.monte_carlo import MonteCarloPageRank, build_walk_store
from repro.core.personalized import (
    FetchCache,
    PersonalizedPageRank,
    StitchedWalkResult,
)
from repro.core.query_kernel import QueryKernel, SalsaQueryKernel
from repro.core.reverse_push import (
    BidirectionalKernel,
    PprToTargetResult,
    ReversePushEngine,
    ReversePushResult,
)
from repro.core.salsa import (
    IncrementalSALSA,
    PersonalizedSALSA,
    SalsaWalkResult,
    batch_salsa_walks,
    simulate_salsa_walk,
)
from repro.core.scheduler import (
    REPAIR_COALESCE,
    REPAIR_REPLAY,
    StalenessScheduler,
)
from repro.core.sharded_walks import (
    BACKEND_SHARDED,
    DEFAULT_NUM_SHARDS,
    ShardedWalkIndex,
    parse_sharded_backend,
)
from repro.core.topk import (
    TopKResult,
    top_k_dense,
    top_k_personalized,
    walk_length_for_top_k,
)
from repro.core.walks import (
    END_DANGLING,
    END_RESET,
    SIDE_AUTHORITY,
    SIDE_HUB,
    WalkIndex,
    WalkSegment,
    WalkStore,
    simulate_reset_walk,
)

__all__ = [
    "theory",
    "WalkSegment",
    "WalkIndex",
    "WalkStore",
    "ColumnarWalkStore",
    "ShardedWalkIndex",
    "make_walk_store",
    "parse_sharded_backend",
    "BACKEND_COLUMNAR",
    "BACKEND_OBJECT",
    "BACKEND_SHARDED",
    "DEFAULT_NUM_SHARDS",
    "END_RESET",
    "END_DANGLING",
    "SIDE_HUB",
    "SIDE_AUTHORITY",
    "simulate_reset_walk",
    "simulate_salsa_walk",
    "batch_salsa_walks",
    "MonteCarloPageRank",
    "build_walk_store",
    "IncrementalPageRank",
    "UpdateReport",
    "BatchUpdateReport",
    "REROUTE_REDIRECT",
    "REROUTE_RESIMULATE",
    "StalenessScheduler",
    "REPAIR_REPLAY",
    "REPAIR_COALESCE",
    "IncrementalSALSA",
    "PersonalizedSALSA",
    "SalsaWalkResult",
    "PersonalizedPageRank",
    "StitchedWalkResult",
    "FetchCache",
    "QueryKernel",
    "SalsaQueryKernel",
    "ReversePushEngine",
    "ReversePushResult",
    "BidirectionalKernel",
    "PprToTargetResult",
    "TopKResult",
    "top_k_dense",
    "top_k_personalized",
    "walk_length_for_top_k",
]
