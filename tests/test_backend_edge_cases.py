"""Degenerate-graph coverage for every WalkIndex backend + QueryEngine.

The columnar and sharded stores were built for scale; these tests pin the
opposite end — empty graphs, all-dangling graphs, one-node self-loops, and
queries for nodes no stored walk has ever visited — for all three
backends, asserting both sane behavior and cross-backend bit-identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_iteration import exact_personalized_pagerank
from repro.core.columnar import make_walk_store
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.query_kernel import QueryKernel
from repro.core.salsa import IncrementalSALSA
from repro.graph.digraph import DynamicDiGraph
from repro.serve.engine import QueryEngine
from repro.store.persistence import load_walk_store, save_walk_store

BACKENDS = ["object", "columnar", "sharded:3"]


def _engines(graph: DynamicDiGraph, *, rng_seed: int = 7):
    return [
        IncrementalPageRank.from_graph(
            graph.copy(), walks_per_node=3, rng=rng_seed, store_backend=backend
        )
        for backend in BACKENDS
    ]


# ----------------------------------------------------------------------
# Empty graph
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_graph_engine(backend):
    engine = IncrementalPageRank.from_graph(
        DynamicDiGraph(0), walks_per_node=3, rng=1, store_backend=backend
    )
    assert engine.num_nodes == 0
    assert engine.walks.num_segments == 0
    assert engine.walks.total_visits == 0
    assert engine.pagerank().size == 0
    assert engine.top(5) == []
    engine.walks.check_invariants()
    # the first edge creates both nodes and their walks
    report = engine.add_edge(0, 1)
    assert engine.num_nodes == 2
    assert engine.walks.num_segments == 2 * engine.walks_per_node
    assert report.steps_initialized >= 0
    engine.walks.check_invariants()


def test_empty_graph_engines_bit_identical():
    engines = _engines(DynamicDiGraph(0))
    for engine in engines:
        engine.add_edge(0, 1)
        engine.add_edge(1, 2)
    reference = engines[0].pagerank()
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), reference)


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_store_roundtrip(tmp_path, backend):
    store = make_walk_store(0, backend=backend)
    store.check_invariants()
    path = tmp_path / "empty.npz"
    save_walk_store(store, path)
    restored = load_walk_store(path)
    assert restored.num_segments == 0
    assert restored.total_visits == 0
    restored.check_invariants()


# ----------------------------------------------------------------------
# All-dangling graph (nodes, zero edges)
# ----------------------------------------------------------------------


def test_all_dangling_graph_backends_agree():
    engines = _engines(DynamicDiGraph(6))
    for engine in engines:
        # every walk is pinned at its source (reset or pending-dangling)
        assert engine.walks.num_segments == 6 * engine.walks_per_node
        for node in range(6):
            assert engine.walks.visit_count(node) == engine.walks_per_node
        # uniform scores over a rankless graph
        scores = engine.pagerank()
        assert np.allclose(scores, scores[0])
        engine.walks.check_invariants()
    # un-dangling one node resumes pending steps identically everywhere
    reports = [engine.add_edge(2, 4) for engine in engines]
    for report in reports[1:]:
        assert report.segments_rerouted == reports[0].segments_rerouted
        assert report.dirty_nodes == reports[0].dirty_nodes
    reference = engines[0].pagerank()
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), reference)
        engine.walks.check_invariants()


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_dangling_salsa(backend):
    engine = IncrementalSALSA.from_graph(
        DynamicDiGraph(4), walks_per_node=2, rng=3, store_backend=backend
    )
    # no edges: hub and authority visits are the trivial start visits
    assert engine.walks.num_segments == 4 * 2 * 2
    authority = engine.authority_scores()
    assert authority.shape == (4,)
    engine.walks.check_invariants()
    engine.add_edge(0, 1)
    engine.walks.check_invariants()


# ----------------------------------------------------------------------
# Single-node self-loop
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_node_self_loop(backend):
    graph = DynamicDiGraph(1)
    graph.add_edge(0, 0)
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=4, rng=5, store_backend=backend
    )
    # every step loops back to node 0, so all mass sits there
    assert engine.walks.visit_count(0) == engine.walks.total_visits
    assert engine.pagerank_of(0) > 0.0
    assert engine.top(1)[0][0] == 0
    engine.walks.check_invariants()
    # removing the loop strands the walks at a now-dangling node
    report = engine.remove_edge(0, 0)
    assert engine.walks.total_visits == engine.walks.num_segments
    assert report.steps_discarded >= 0
    engine.walks.check_invariants()


def test_single_node_self_loop_backends_agree():
    graph = DynamicDiGraph(1)
    graph.add_edge(0, 0)
    engines = _engines(graph)
    for engine in engines[1:]:
        assert np.array_equal(engine.pagerank(), engines[0].pagerank())
    walks = [engine.remove_edge(0, 0) for engine in engines]
    for report in walks[1:]:
        assert report.steps_discarded == walks[0].steps_discarded


# ----------------------------------------------------------------------
# Querying a node never seen by any walk
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_store_queries_beyond_known_nodes(backend):
    store = make_walk_store(3, backend=backend)
    unknown = 99
    assert store.visits_of(unknown) == {}
    assert store.segment_ids_visiting(unknown) == []
    assert store.segments_starting_at(unknown) == []
    assert store.visit_count(unknown) == 0
    assert store.distinct_segment_count(unknown) == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_query_node_never_visited(backend):
    # node 3 is isolated: no edges touch it, and its own walks never leave
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    graph.add_edge(0, 2)
    engine = IncrementalPageRank.from_graph(
        graph, walks_per_node=2, rng=9, store_backend=backend
    )
    # isolated node: only its own trivial segments visit it
    assert engine.walks.visit_count(3) == engine.walks_per_node
    walker = PersonalizedPageRank(engine.pagerank_store)
    walk = walker.stitched_walk(3, 50, rng=np.random.default_rng(1))
    # a walk seeded at a dangling isolate never escapes the seed
    assert set(walk.visit_counts) == {3}
    assert walk.visit_counts[3] == 50


def test_query_engine_degenerate_paths():
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 0)
    backends_results = []
    for backend in BACKENDS:
        engine = IncrementalPageRank.from_graph(
            graph.copy(), walks_per_node=2, rng=11, store_backend=backend
        )
        qe = QueryEngine(engine, rng_seed=4)
        isolated = qe.top_k(3, 2)
        assert isolated.ranking == []  # nothing reachable beyond the seed
        ppr = qe.ppr(3, 40)
        assert set(ppr.visit_counts) == {3}
        # served answers survive an update that touches the isolate
        engine.add_edge(3, 0)
        after = qe.top_k(3, 2)
        assert after.ranking  # the isolate can now reach the core
        backends_results.append((isolated.ranking, after.ranking))
        qe.detach()
    assert backends_results.count(backends_results[0]) == len(backends_results)


def test_query_engine_on_all_dangling_graph():
    for backend in BACKENDS:
        engine = IncrementalPageRank.from_graph(
            DynamicDiGraph(3), walks_per_node=2, rng=13, store_backend=backend
        )
        qe = QueryEngine(engine, rng_seed=1)
        result = qe.top_k(0, 3)
        assert result.ranking == []
        assert qe.ppr(1, 25).visit_counts == {1: 25}
        qe.detach()


# ----------------------------------------------------------------------
# Reverse push / ppr_to_target: dangling + self-loop parity with the
# brute-force power-iteration baseline (absorbing Equation-1 semantics)
# ----------------------------------------------------------------------


def _edge_case_graph() -> DynamicDiGraph:
    """8 nodes exercising every awkward structure at once: a cycle core, a
    self-loop on node 2, dangling sinks 4 and 6, and a dangling isolate 7."""
    graph = DynamicDiGraph(8)
    for u, v in [(0, 1), (1, 2), (2, 0), (2, 2), (1, 3), (3, 4), (0, 5), (5, 6)]:
        graph.add_edge(u, v)
    return graph


@pytest.mark.parametrize("target", [0, 2, 4, 7])
def test_ppr_to_target_exact_parity_on_edge_graph(target):
    """Reverse-only mode matches power iteration through dangling nodes and
    self-loops, bit-identically on every backend (the push reads only the
    graph, which all backends share)."""
    graph = _edge_case_graph()
    truth = exact_personalized_pagerank(graph, list(range(8)))[:, target]
    per_backend = []
    for engine in _engines(graph):
        kernel = QueryKernel(
            engine.pagerank_store, reset_probability=engine.reset_probability
        )
        answers = kernel.batch_ppr_to_target(
            list(range(8)), target, 0.05, r_max=1e-12, walk_length=0
        )
        estimates = [answer.estimate for answer in answers]
        np.testing.assert_allclose(estimates, truth, atol=1e-9)
        assert all(answer.exact for answer in answers)
        assert [answer.above_delta for answer in answers] == [
            value >= 0.05 for value in truth
        ]
        per_backend.append(tuple(estimates))
    assert per_backend.count(per_backend[0]) == len(BACKENDS)


def test_ppr_to_target_dangling_isolate_is_reset_probability():
    """pi_7(7) for a dangling isolate is exactly eps under Equation-1
    semantics; the push drains in one round (no in-neighbors) and reports
    itself exact, auto-skipping the forward walk."""
    graph = _edge_case_graph()
    eps = 0.2
    for engine in _engines(graph):
        kernel = QueryKernel(engine.pagerank_store, reset_probability=eps)
        answer = kernel.batch_ppr_to_target([7], 7, 0.05, r_max=0.5)[0]
        assert answer.exact
        assert answer.walk_length == 0  # auto-skipped: residuals drained
        assert answer.estimate == pytest.approx(eps, abs=1e-12)
        other = kernel.batch_ppr_to_target([0], 7, 0.05, r_max=0.5)[0]
        assert other.estimate == 0.0  # nothing reaches an isolate


def test_ppr_to_target_error_bound_at_loose_tolerance():
    """Reverse-only estimates honor the additive r_max bound on a graph
    with dangling nodes and a self-loop."""
    graph = _edge_case_graph()
    exact = exact_personalized_pagerank(graph, list(range(8)))
    engine = _engines(graph)[0]
    kernel = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    for target in (0, 2):
        answers = kernel.batch_ppr_to_target(
            list(range(8)), target, 0.05, r_max=0.01, walk_length=0
        )
        for seed, answer in enumerate(answers):
            assert abs(answer.estimate - exact[seed, target]) <= 0.01 + 1e-12
            # reverse push only ever *under*-estimates (residual >= 0)
            assert answer.estimate <= exact[seed, target] + 1e-12


def test_ppr_to_target_bidirectional_dangling_seed():
    """Full estimator with a dangling seed: every forward excursion dies
    immediately at the seed, and the renewal correction still recovers
    pi_7(7) = eps (restart-at-dangling walks are consistent with the
    absorbing baseline)."""
    graph = _edge_case_graph()
    for engine in _engines(graph):
        kernel = QueryKernel(
            engine.pagerank_store, reset_probability=engine.reset_probability
        )
        # r_max > 1 forces a zero-push result: the whole estimate comes
        # from the forward walk hitting the target's unit residual
        answer = kernel.batch_ppr_to_target(
            [7], 7, 0.05, r_max=1.5, walk_length=200, rng_seed=3
        )[0]
        assert not answer.exact
        assert answer.reverse_estimate == 0.0
        assert answer.estimate == pytest.approx(0.2, abs=0.01)


def test_ppr_to_target_bidirectional_backends_bit_identical():
    """The full bidirectional estimate (reverse push + kernel forward
    walks) is a bit-identical float on every backend, and lands within the
    r_max budget of the exact answer on the edge-case graph."""
    graph = _edge_case_graph()
    exact = exact_personalized_pagerank(graph, list(range(8)))
    per_backend = []
    for engine in _engines(graph):
        kernel = QueryKernel(
            engine.pagerank_store, reset_probability=engine.reset_probability
        )
        answers = kernel.batch_ppr_to_target(
            list(range(8)), 2, 0.05, r_max=0.02, walk_length=400, rng_seed=5
        )
        for seed, answer in enumerate(answers):
            assert abs(answer.estimate - exact[seed, 2]) <= 0.02
        per_backend.append(
            tuple(
                (answer.estimate, answer.forward_contribution, answer.resets)
                for answer in answers
            )
        )
    assert per_backend.count(per_backend[0]) == len(BACKENDS)
