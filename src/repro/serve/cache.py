"""Seed-keyed result cache with LRU + TTL eviction and dirty-set invalidation.

The cache's correctness contract is exact, not best-effort: a surviving
entry must equal what recomputing the query *right now* (same derived RNG)
would return.  That holds because

* every entry records its walk's **footprint** — the set of nodes the walk
  visited, which is exactly the set of fetch states the walk read;
* every engine mutation publishes a **dirty node set** (nodes whose
  adjacency or starting segments may have changed — see
  :meth:`repro.core.incremental.IncrementalPageRank.add_update_listener`);
* an entry is dropped the moment its footprint intersects a dirty set.

A walk that never read a dirty node takes the same trajectory on the
post-update store, so its cached answer is bit-identical to a fresh run —
the property ``tests/test_serve.py`` checks differentially under arbitrary
query/update interleavings.

Invalidation is O(dirty nodes) via an inverted footprint index; when a
mutation's dirty set exceeds ``flush_threshold`` the cache falls back to a
full flush (one big batch invalidates almost everything anyway, and the
flush is O(1) amortized).  TTL is a freshness *policy* on top of the
correctness machinery — a deployment may prefer re-sampled rankings every
few minutes even for untouched seeds; ``ttl=None`` disables it.

**Per-process invariant (multi-process serving):** a ``ResultCache`` — like
the :class:`~repro.core.personalized.FetchCache` — caches *derived* state of
one process's store and is never shared or shipped across process
boundaries; each serve worker owns its own.  Entry keys carry the **arena
generation** (:attr:`ResultCache.generation`): when a worker swaps to a new
snapshot generation (:meth:`bump_generation`) every existing entry becomes
unreachable by construction — the cache self-invalidates on arena swap
rather than relying only on dirty-set plumbing, and a put computed against
the old arena can never be served from the new one.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import ConfigurationError

__all__ = ["ResultCache", "CacheEntry"]


@dataclass
class CacheEntry:
    """One cached query answer plus the metadata eviction needs."""

    key: Hashable
    value: Any
    #: Every node whose fetch state the producing walk read.
    footprint: frozenset
    #: Engine epoch when the entry was produced (observability only —
    #: validity is maintained by invalidation, not epoch comparison).
    epoch: int
    #: Absolute deadline on the cache clock, or None for no TTL.
    expires_at: Optional[float]


class ResultCache:
    """LRU + TTL cache of query results, invalidated by dirty node sets."""

    def __init__(
        self,
        *,
        capacity: int = 4096,
        ttl: Optional[float] = None,
        flush_threshold: int = 2048,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be positive or None, got {ttl}")
        if flush_threshold <= 0:
            raise ConfigurationError(
                f"flush_threshold must be positive, got {flush_threshold}"
            )
        self.capacity = capacity
        self.ttl = ttl
        self.flush_threshold = flush_threshold
        self.clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        #: Inverted index: node -> keys of entries whose footprint holds it.
        self._by_node: Dict[int, Set[Hashable]] = {}
        #: Monotone counter, bumped by every invalidation event (even one
        #: that drops nothing: an in-flight result's footprint may overlap
        #: a dirty set no *current* entry does).  ``put`` guards on it.
        self.version = 0
        #: Arena generation this cache currently serves.  Part of every
        #: entry's internal key, so a swap (:meth:`bump_generation`) makes
        #: all prior entries unreachable.
        self.generation = 0
        self.generation_bumps = 0
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.flushes = 0
        self.stale_rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)``; a TTL-expired entry is dropped and misses."""
        with self._lock:
            slot = (self.generation, key)
            entry = self._entries.get(slot)
            if entry is None:
                return False, None
            if entry.expires_at is not None and self.clock() >= entry.expires_at:
                self._drop(slot)
                self.expirations += 1
                return False, None
            self._entries.move_to_end(slot)
            return True, entry.value

    def put(
        self,
        key: Hashable,
        value: Any,
        footprint: Iterable[int],
        epoch: int,
        *,
        guard_version: Optional[int] = None,
        generation: Optional[int] = None,
    ) -> Optional[CacheEntry]:
        """Insert (or overwrite) an entry; evicts LRU entries past capacity.

        ``guard_version`` closes the compute/invalidate race: pass the
        :attr:`version` observed *before* computing ``value``, and the put
        is rejected (returns None) if any invalidation ran in between —
        otherwise a result computed against the pre-update store could be
        inserted after the update's invalidation and never be dropped.

        ``generation`` closes the compute/arena-swap race the same way:
        pass the :attr:`generation` observed before computing, and a value
        produced against a previous arena generation is rejected instead
        of keyed into the current one.
        """
        footprint = frozenset(footprint)
        expires_at = self.clock() + self.ttl if self.ttl is not None else None
        with self._lock:
            if generation is not None and generation != self.generation:
                self.stale_rejections += 1
                return None
            if guard_version is not None and guard_version != self.version:
                self.stale_rejections += 1
                return None
            slot = (self.generation, key)
            entry = CacheEntry(
                key=slot,
                value=value,
                footprint=footprint,
                epoch=epoch,
                expires_at=expires_at,
            )
            if slot in self._entries:
                self._drop(slot)
            self._entries[slot] = entry
            for node in footprint:
                self._by_node.setdefault(node, set()).add(slot)
            self.insertions += 1
            while len(self._entries) > self.capacity:
                oldest, _ = next(iter(self._entries.items()))
                self._drop(oldest)
                self.evictions += 1
        return entry

    def _drop(self, key: Hashable) -> None:
        """Remove ``key`` and unindex its footprint (lock held by caller)."""
        entry = self._entries.pop(key)
        for node in entry.footprint:
            keys = self._by_node.get(node)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_node[node]

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate(self, dirty_nodes: Optional[Iterable[int]]) -> int:
        """Drop every entry whose footprint meets ``dirty_nodes``.

        ``None`` (or a dirty set larger than ``flush_threshold``) flushes
        the whole cache.  Returns the number of entries dropped.
        """
        if dirty_nodes is None:
            return self.flush()
        dirty = (
            dirty_nodes
            if isinstance(dirty_nodes, (set, frozenset))
            else set(dirty_nodes)
        )
        if len(dirty) > self.flush_threshold:
            return self.flush()
        with self._lock:
            self.version += 1
            stale: Set[Hashable] = set()
            for node in dirty:
                keys = self._by_node.get(node)
                if keys:
                    stale.update(keys)
            for key in stale:
                self._drop(key)
            self.invalidations += len(stale)
            return len(stale)

    def flush(self) -> int:
        with self._lock:
            self.version += 1
            dropped = len(self._entries)
            self._entries.clear()
            self._by_node.clear()
            self.invalidations += dropped
            self.flushes += 1
            return dropped

    def bump_generation(self) -> int:
        """Swap to the next arena generation; returns the new generation.

        Every existing entry was produced against the previous generation's
        arena, so the whole cache is dropped *and* the generation field in
        the keyspace advances — a racing put for the old generation (passed
        via ``put(..., generation=)``) is rejected rather than resurrected.
        The version counter bumps too, so ``guard_version`` puts from
        before the swap are equally dead.
        """
        with self._lock:
            self.generation += 1
            self.generation_bumps += 1
            self.version += 1
            dropped = len(self._entries)
            self._entries.clear()
            self._by_node.clear()
            self.invalidations += dropped
            return self.generation

    # ------------------------------------------------------------------

    def keys(self) -> list:
        """User-visible keys of live entries (generation prefix stripped)."""
        with self._lock:
            return [key for _, key in self._entries]

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}, "
            f"capacity={self.capacity}, ttl={self.ttl}, "
            f"invalidations={self.invalidations}, evictions={self.evictions})"
        )
