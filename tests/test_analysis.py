"""Analysis utilities: fits, CDFs, IR metrics, error norms, ASCII plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.asciiplot import ascii_histogram, ascii_plot
from repro.analysis.concentration import (
    l1_error,
    max_relative_error,
    relative_errors,
    top_k_overlap,
)
from repro.analysis.power_law import (
    cdf_at,
    empirical_cdf,
    fit_personalized_exponent,
    fit_rank_exponent,
    weighted_degree_cdf,
)
from repro.analysis.precision import (
    average_precision_11pt,
    capture_count,
    interpolated_precision_11pt,
    precision_recall_points,
)
from repro.core.theory import eq3_powerlaw_scores
from repro.errors import ConfigurationError


class TestPowerLawFit:
    def test_recovers_known_exponent(self):
        scores = eq3_powerlaw_scores(5000, 0.75)
        fit = fit_rank_exponent(scores, presorted=True)
        assert fit.alpha == pytest.approx(0.75, abs=1e-6)
        assert fit.r_squared > 0.999999

    def test_noisy_recovery(self):
        rng = np.random.default_rng(0)
        scores = eq3_powerlaw_scores(3000, 0.6) * rng.lognormal(0, 0.2, 3000)
        fit = fit_rank_exponent(scores)
        assert abs(fit.alpha - 0.6) < 0.05

    def test_window_restriction(self):
        # two regimes: steep head, flat tail — the window picks one
        head = 100.0 / np.arange(1, 51) ** 1.5
        tail = np.full(200, head[-1] * 0.9)
        values = np.concatenate([head, tail])
        steep = fit_rank_exponent(values, min_rank=1, max_rank=50, presorted=True)
        flat = fit_rank_exponent(values, min_rank=60, max_rank=250, presorted=True)
        assert steep.alpha > 1.2
        assert flat.alpha < 0.1

    def test_personalized_window_protocol(self):
        scores = eq3_powerlaw_scores(5000, 0.8)
        fit = fit_personalized_exponent(scores, friend_count=25)
        assert fit.rank_range == (50, 500)
        assert fit.alpha == pytest.approx(0.8, abs=0.01)

    def test_zeros_excluded(self):
        values = np.concatenate([eq3_powerlaw_scores(100, 0.5), np.zeros(50)])
        fit = fit_rank_exponent(values)
        assert fit.points == 100

    def test_predict_inverts(self):
        scores = eq3_powerlaw_scores(1000, 0.7)
        fit = fit_rank_exponent(scores, presorted=True)
        predicted = fit.predict(np.array([1, 10, 100]))
        assert predicted[0] == pytest.approx(scores[0], rel=0.01)
        assert predicted[2] == pytest.approx(scores[99], rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_rank_exponent([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            fit_rank_exponent([3.0, 2.0, 1.0], min_rank=3, max_rank=3)
        with pytest.raises(ConfigurationError):
            fit_personalized_exponent(np.ones(10), friend_count=0)


class TestCDFs:
    def test_empirical_cdf(self):
        values, cdf = empirical_cdf([1, 1, 2, 5])
        assert values.tolist() == [1, 2, 5]
        assert cdf.tolist() == [0.5, 0.75, 1.0]

    def test_weighted_degree_cdf(self):
        # degrees 1,1,2,4: mass = 1+1+2+4 = 8; e(1)=2/8, e(2)=4/8, e(4)=1
        values, cdf = weighted_degree_cdf([1, 1, 2, 4, 0])
        assert values.tolist() == [1, 2, 4]
        assert cdf.tolist() == [0.25, 0.5, 1.0]

    def test_cdf_at(self):
        values, cdf = empirical_cdf([1, 2, 5])
        queried = cdf_at(values, cdf, [0, 1, 3, 5, 9])
        assert queried.tolist() == [0.0, 1 / 3, 2 / 3, 1.0, 1.0]

    def test_empty(self):
        values, cdf = empirical_cdf([])
        assert values.size == 0 and cdf.size == 0


class TestPrecision:
    def test_perfect_retrieval(self):
        curve = interpolated_precision_11pt([1, 2, 3], {1, 2, 3})
        assert np.allclose(curve, 1.0)

    def test_hand_computed_curve(self):
        # relevant = {1, 2}; retrieved = [1, 9, 2]
        # after rank1: R=0.5 P=1.0; rank2: R=0.5 P=0.5; rank3: R=1.0 P=2/3
        curve = interpolated_precision_11pt([1, 9, 2], {1, 2})
        assert curve[0] == 1.0  # recall 0.0 -> max precision anywhere = 1.0
        assert curve[5] == 1.0  # recall 0.5 reached at precision 1.0
        assert curve[10] == pytest.approx(2 / 3)

    def test_miss_everything(self):
        curve = interpolated_precision_11pt([7, 8], {1})
        assert curve[0] == 0.0
        assert curve[10] == 0.0

    def test_average_curves(self):
        avg = average_precision_11pt(
            [([1], {1}), ([2], {1})]
        )
        assert avg[0] == pytest.approx(0.5)

    def test_precision_recall_points(self):
        recalls, precisions = precision_recall_points([1, 9], {1, 5})
        assert recalls.tolist() == [0.5, 0.5]
        assert precisions.tolist() == [1.0, 0.5]

    def test_capture_count(self):
        assert capture_count([5, 3, 9, 1], {3, 1}, top=2) == 1
        assert capture_count([5, 3, 9, 1], {3, 1}, top=4) == 2
        with pytest.raises(ConfigurationError):
            capture_count([1], {1}, top=0)

    def test_empty_relevant_rejected(self):
        with pytest.raises(ConfigurationError):
            interpolated_precision_11pt([1], set())


class TestConcentration:
    def test_l1(self):
        assert l1_error(np.array([0.5, 0.5]), np.array([0.4, 0.6])) == pytest.approx(0.2)

    def test_relative_errors_floor(self):
        estimate = np.array([0.1, 0.0, 0.3])
        exact = np.array([0.2, 1e-9, 0.3])
        errors = relative_errors(estimate, exact, floor=1e-6)
        assert errors.tolist() == [0.5, 0.0]
        assert max_relative_error(estimate, exact, floor=1e-6) == 0.5

    def test_top_k_overlap(self):
        a = np.array([0.5, 0.3, 0.1, 0.05])
        b = np.array([0.5, 0.1, 0.3, 0.05])
        # top2(a) = {0, 1}, top2(b) = {0, 2} -> overlap 1/2
        assert top_k_overlap(a, b, 2) == pytest.approx(0.5)
        assert top_k_overlap(a, a, 3) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            l1_error(np.zeros(3), np.zeros(4))


class TestAsciiPlot:
    def test_renders_with_legend(self):
        text = ascii_plot(
            {"measured": ([1, 10, 100], [1, 5, 25]), "bound": ([1, 10, 100], [2, 8, 40])},
            log_x=True,
            log_y=True,
            title="fetches",
        )
        assert "fetches" in text
        assert "o = measured" in text
        assert "x = bound" in text
        assert "[log-x]" in text

    def test_log_filters_nonpositive(self):
        text = ascii_plot({"s": ([0, 1, 10], [0, 1, 10])}, log_x=True, log_y=True)
        assert "s" in text
        with pytest.raises(ConfigurationError):
            ascii_plot({"s": ([0], [0])}, log_x=True)

    def test_histogram(self):
        text = ascii_histogram([1, 1, 2, 2, 2, 3], bins=3, title="h")
        assert text.startswith("h")
        assert "#" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_plot({})
        with pytest.raises(ConfigurationError):
            ascii_histogram([])
