"""Synthetic graph generators.

The paper's experiments run on the Twitter follow graph, which we cannot
ship.  The theory, however, only needs graphs with (a) power-law in-degrees
with rank-size exponent ``α < 1`` and (b) an edge stream presentable in
random order.  Two generator families supply those:

* :func:`directed_preferential_attachment` — a grown network (Krapivsky-
  Redner mixture: each new edge picks its target uniformly with probability
  ``uniform_prob``, else proportionally to in-degree).  The in-degree tail
  exponent is ``γ = 1 + 1/(1 − uniform_prob)``, hence the rank-size exponent
  is ``α = 1/(γ−1) = 1 − uniform_prob``.  The default ``uniform_prob=0.23``
  targets Twitter's measured ``α ≈ 0.77`` (paper §4.3).
* :func:`directed_configuration_power_law` — a static graph whose targets
  are drawn from an exact Zipf(α) rank-size law, for experiments that need
  a controlled exponent rather than an organic growth process.

:func:`example1_adversarial_gadget` builds the exact counterexample of the
paper's Example 1, where a single adversarial edge arrival invalidates
``Ω(n)`` stored walk segments.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "directed_preferential_attachment",
    "directed_configuration_power_law",
    "directed_erdos_renyi",
    "directed_cycle",
    "directed_star",
    "directed_complete",
    "example1_adversarial_gadget",
    "zipf_rank_weights",
]

OutDegreeSpec = Union[int, Callable[[np.random.Generator], int]]


def directed_preferential_attachment(
    num_nodes: int,
    *,
    edges_per_node: OutDegreeSpec = 5,
    uniform_prob: float = 0.23,
    seed_nodes: int = 5,
    rng: RngLike = None,
) -> DynamicDiGraph:
    """Grow a directed power-law graph, one node (plus out-edges) at a time.

    Starts from a ``seed_nodes``-cycle.  Each subsequent node draws its
    out-degree from ``edges_per_node`` (an int, or a callable on the rng) and
    wires each out-edge to a target chosen uniformly with probability
    ``uniform_prob`` and proportionally to current in-degree otherwise.
    Self-loops and duplicate edges are re-drawn (bounded retries).

    The resulting in-degree rank-size exponent is ``≈ 1 − uniform_prob``.
    """
    if num_nodes < seed_nodes:
        raise ConfigurationError(
            f"num_nodes={num_nodes} must be at least seed_nodes={seed_nodes}"
        )
    if not 0.0 <= uniform_prob <= 1.0:
        raise ConfigurationError(f"uniform_prob must be in [0, 1], got {uniform_prob}")
    generator = ensure_rng(rng)
    graph = DynamicDiGraph(seed_nodes, allow_self_loops=False)
    # target_arena holds one entry per unit of in-degree, so a uniform draw
    # from it is an in-degree-proportional draw over nodes.
    target_arena: list[int] = []
    for node in range(seed_nodes):
        successor = (node + 1) % seed_nodes
        graph.add_edge(node, successor)
        target_arena.append(successor)

    for _ in range(seed_nodes, num_nodes):
        new_node = graph.add_node()
        wanted = _draw_out_degree(edges_per_node, generator)
        wanted = min(wanted, new_node)  # cannot exceed number of candidates
        added = 0
        attempts = 0
        max_attempts = 20 * (wanted + 1)
        while added < wanted and attempts < max_attempts:
            attempts += 1
            if not target_arena or generator.random() < uniform_prob:
                target = int(generator.integers(new_node))
            else:
                target = target_arena[int(generator.integers(len(target_arena)))]
            if target == new_node or graph.has_edge(new_node, target):
                continue
            graph.add_edge(new_node, target)
            target_arena.append(target)
            added += 1
    return graph


def _draw_out_degree(spec: OutDegreeSpec, rng: np.random.Generator) -> int:
    if callable(spec):
        value = int(spec(rng))
    else:
        value = int(spec)
    if value < 0:
        raise ConfigurationError(f"out-degree draw must be non-negative, got {value}")
    return value


def zipf_rank_weights(num_nodes: int, alpha: float) -> np.ndarray:
    """Normalized Zipf rank-size weights ``w_j ∝ j^(−α)`` (paper Eq. 3 form)."""
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def directed_configuration_power_law(
    num_nodes: int,
    num_edges: int,
    *,
    alpha: float = 0.76,
    source_alpha: Optional[float] = None,
    rng: RngLike = None,
    max_rounds: int = 50,
) -> DynamicDiGraph:
    """Static graph with Zipf(α) in-degree rank-size law.

    Each edge's target is drawn from Zipf(α) weights over a random node
    permutation; sources are uniform unless ``source_alpha`` is given (drawn
    from an independent permutation, modelling heavy out-degree tails).
    Duplicate edges and self-loops are discarded and redrawn for up to
    ``max_rounds`` top-up rounds, so the realized edge count can fall
    slightly short of ``num_edges`` only on absurdly dense requests.
    """
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    if num_edges < 0:
        raise ConfigurationError(f"num_edges must be >= 0, got {num_edges}")
    generator = ensure_rng(rng)
    target_perm = generator.permutation(num_nodes)
    target_weights = zipf_rank_weights(num_nodes, alpha)
    if source_alpha is not None:
        source_perm = generator.permutation(num_nodes)
        source_weights = zipf_rank_weights(num_nodes, source_alpha)
    graph = DynamicDiGraph(num_nodes, allow_self_loops=False)

    remaining = num_edges
    for _ in range(max_rounds):
        if remaining <= 0:
            break
        batch = max(remaining, 16)
        targets = target_perm[
            generator.choice(num_nodes, size=batch, p=target_weights)
        ]
        if source_alpha is None:
            sources = generator.integers(num_nodes, size=batch)
        else:
            sources = source_perm[
                generator.choice(num_nodes, size=batch, p=source_weights)
            ]
        for source, target in zip(sources.tolist(), targets.tolist()):
            if remaining <= 0:
                break
            if source == target or graph.has_edge(source, target):
                continue
            graph.add_edge(source, target)
            remaining -= 1
    return graph


def directed_erdos_renyi(
    num_nodes: int, num_edges: int, rng: RngLike = None
) -> DynamicDiGraph:
    """Uniform random simple digraph with exactly ``num_edges`` edges."""
    if num_nodes < 2 and num_edges > 0:
        raise ConfigurationError("need at least 2 nodes to place edges")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ConfigurationError(
            f"num_edges={num_edges} exceeds simple-digraph maximum {max_edges}"
        )
    generator = ensure_rng(rng)
    graph = DynamicDiGraph(num_nodes, allow_self_loops=False)
    while graph.num_edges < num_edges:
        source = int(generator.integers(num_nodes))
        target = int(generator.integers(num_nodes))
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target)
    return graph


def directed_cycle(num_nodes: int) -> DynamicDiGraph:
    """The directed ``num_nodes``-cycle (strongly connected test fixture)."""
    graph = DynamicDiGraph(num_nodes, allow_self_loops=False)
    for node in range(num_nodes):
        graph.add_edge(node, (node + 1) % num_nodes)
    return graph


def directed_star(num_leaves: int, *, inward: bool = True) -> DynamicDiGraph:
    """Star on ``num_leaves + 1`` nodes; hub is node 0.

    ``inward=True`` points all edges at the hub (hub becomes a dangling
    authority); ``inward=False`` points them outwards.
    """
    graph = DynamicDiGraph(num_leaves + 1, allow_self_loops=False)
    for leaf in range(1, num_leaves + 1):
        if inward:
            graph.add_edge(leaf, 0)
        else:
            graph.add_edge(0, leaf)
    return graph


def directed_complete(num_nodes: int) -> DynamicDiGraph:
    """Complete simple digraph (every ordered pair, no self-loops)."""
    graph = DynamicDiGraph(num_nodes, allow_self_loops=False)
    for source in range(num_nodes):
        for target in range(num_nodes):
            if source != target:
                graph.add_edge(source, target)
    return graph


def example1_adversarial_gadget(
    cycle_size: int,
) -> tuple[DynamicDiGraph, tuple[int, int], list[tuple[int, int]]]:
    """The paper's Example 1 gadget, staged for the adversarial arrival.

    Nodes (``n = 3N + 1`` with ``N = cycle_size``):

    * ``v_1 … v_N`` = ids ``0 … N−1``, wired as a directed cycle;
    * ``u`` = id ``N``;
    * ``x_1 … x_N`` = ids ``N+1 … 2N``;
    * ``y_1 … y_N`` = ids ``2N+1 … 3N``.

    Full edge set: every ``v_j → u``; ``u → x_j`` and ``x_j → u`` for every
    ``j``; ``v_1 → y_j`` and ``y_j → v_1`` for every ``j``.

    Returns ``(graph, killer, deferred)``.  The adversary presents every
    edge *except* ``u``'s out-edges first (that is ``graph``); every stored
    walk segment funnels into ``u`` and strands there (``u`` is dangling),
    so ``W(u) = Ω(nR)``.  The killer edge ``u → v_1`` then forces *all* of
    those stranded segments to resume at once — ``Ω(n)`` updates for a
    single arrival, which is the paper's proof that the random-order
    assumption is doing real work.  ``deferred`` holds the remaining
    ``u → x_j`` edges; feeding them afterwards keeps costing ``Ω(n/k)``
    per arrival (redirect probability ``1/k`` on ``Ω(n)`` visits).
    """
    if cycle_size < 2:
        raise ConfigurationError(f"cycle_size must be >= 2, got {cycle_size}")
    size = cycle_size
    graph = DynamicDiGraph(3 * size + 1, allow_self_loops=False)
    hub = size
    first_cycle_node = 0
    deferred: list[tuple[int, int]] = []
    for j in range(size):
        graph.add_edge(j, (j + 1) % size)  # the directed N-cycle
        graph.add_edge(j, hub)  # v_j -> u
        x_j = size + 1 + j
        deferred.append((hub, x_j))  # u -> x_j: held back by the adversary
        graph.add_edge(x_j, hub)  # x_j -> u
        y_j = 2 * size + 1 + j
        graph.add_edge(first_cycle_node, y_j)  # v_1 -> y_j
        graph.add_edge(y_j, first_cycle_node)  # y_j -> v_1
    return graph, (hub, first_cycle_node), deferred
