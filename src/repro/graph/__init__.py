"""Graph substrate: dynamic digraphs, CSR snapshots, generators, arrivals."""

from repro.graph.arrival import (
    AdversarialArrival,
    ArrivalEvent,
    ArrivalProcess,
    DirichletArrival,
    RandomPermutationArrival,
    TimestampedStream,
)
from repro.graph.csr import CSRGraph, batch_reset_walks
from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    directed_complete,
    directed_configuration_power_law,
    directed_cycle,
    directed_erdos_renyi,
    directed_preferential_attachment,
    directed_star,
    example1_adversarial_gadget,
    zipf_rank_weights,
)

__all__ = [
    "DynamicDiGraph",
    "CSRGraph",
    "batch_reset_walks",
    "ArrivalEvent",
    "ArrivalProcess",
    "RandomPermutationArrival",
    "DirichletArrival",
    "AdversarialArrival",
    "TimestampedStream",
    "directed_preferential_attachment",
    "directed_configuration_power_law",
    "directed_erdos_renyi",
    "directed_cycle",
    "directed_star",
    "directed_complete",
    "example1_adversarial_gadget",
    "zipf_rank_weights",
]
