"""Ablation benchmarks for the design choices DESIGN.md §4 calls out.

1. Reroute policy: exact suffix redirect vs the paper's simplified
   resimulate-from-source (§2.2 offers both; how much extra work does the
   simple one do, and how far does its estimate drift?).
2. Activation probability: how well does the §2.2 formula
   ``1 − (1 − 1/d(u))^{W(u)}`` predict actual store calls?
3. Fetch mode: full adjacency vs Remark 1's single-sampled-edge (≤ 2×
   more fetches claimed).
4. Normalization: paper ``X/(nR/ε)`` vs empirical ``X/ΣX`` under dangling
   mass.

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workloads,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

import numpy as np

from repro.baselines.power_iteration import exact_pagerank
from repro.core.incremental import (
    REROUTE_REDIRECT,
    REROUTE_RESIMULATE,
    IncrementalPageRank,
)
from repro.core.personalized import PersonalizedPageRank
from repro.graph.arrival import RandomPermutationArrival
from repro.store.pagerank_store import FETCH_SAMPLED_EDGE, PageRankStore
from repro.store.social_store import SocialStore
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))


def _replay(policy: str, graph, rng_seed: int):
    engine = IncrementalPageRank(
        reset_probability=0.25,
        walks_per_node=5,
        rng=rng_seed,
        reroute_policy=policy,
    )
    for _ in range(graph.num_nodes):
        engine.add_node()
    for event in RandomPermutationArrival.of_graph(graph, rng=rng_seed):
        engine.apply(event)
    return engine


def test_ablation_reroute_policy(benchmark):
    """Redirect (exact) vs resimulate-from-source (paper's simplification)."""
    size = (300, 3600) if FAST_MODE else (800, 9600)
    graph = twitter_like_graph(*size, rng=42)
    exact = exact_pagerank(graph, reset_probability=0.25)

    redirect = benchmark.pedantic(
        lambda: _replay(REROUTE_REDIRECT, graph, 1), rounds=1, iterations=1
    )
    resimulate = _replay(REROUTE_RESIMULATE, graph, 2)

    redirect_error = np.abs(redirect.pagerank() - exact).sum()
    resimulate_error = np.abs(resimulate.pagerank() - exact).sum()
    if not FAST_MODE:
        # both land in the same accuracy regime on this workload …
        assert redirect_error < 0.5
        assert resimulate_error < 0.7
    # … but full resimulation touches more steps per reroute
    redirect_cost = redirect.total_steps_resimulated / max(
        redirect.total_segments_rerouted, 1
    )
    resimulate_cost = resimulate.total_steps_resimulated / max(
        resimulate.total_segments_rerouted, 1
    )
    print(
        f"\nredirect: L1={redirect_error:.3f}, steps/reroute={redirect_cost:.2f}; "
        f"resimulate: L1={resimulate_error:.3f}, steps/reroute={resimulate_cost:.2f}"
    )


def test_ablation_activation_prediction(benchmark):
    """§2.2's activation probability vs actual store-call frequency."""
    size = (300, 3600) if FAST_MODE else (800, 9600)
    graph = twitter_like_graph(*size, rng=43)

    def replay():
        engine = IncrementalPageRank(
            reset_probability=0.25, walks_per_node=5, rng=3
        )
        for _ in range(graph.num_nodes):
            engine.add_node()
        predicted = 0.0
        actual = 0
        arrivals = 0
        for event in RandomPermutationArrival.of_graph(graph, rng=3):
            report = engine.apply(event)
            predicted += report.activation_probability
            actual += int(report.store_called)
            arrivals += 1
        return predicted, actual, arrivals

    predicted, actual, arrivals = benchmark.pedantic(replay, rounds=1, iterations=1)
    if not FAST_MODE:
        # The paper's counter-based formula is an upper-ish estimate of the
        # true call rate: within a factor ~2 in aggregate, and never smaller
        # than ~half the actual (it ignores multi-visit step counts).
        assert predicted > 0.4 * actual
        assert predicted < 3.0 * actual
    print(
        f"\npredicted store calls {predicted:.0f} vs actual {actual} over "
        f"{arrivals} arrivals ({actual / arrivals:.1%} call rate)"
    )


def test_ablation_fetch_mode(benchmark):
    """Remark 1: sampled-edge fetches cost at most ~2x full fetches."""
    size = (800, 9600) if FAST_MODE else (3000, 36_000)
    graph = twitter_like_graph(*size, rng=44)

    def fetches_for(mode: str, seed: int) -> float:
        store = PageRankStore(SocialStore.of_graph(graph), fetch_mode=mode)
        engine = IncrementalPageRank(
            social_store=store.social_store,
            walks_per_node=10,
            rng=seed,
            pagerank_store=store,
        )
        engine.initialize()
        query = PersonalizedPageRank(store, rng=seed)
        counts = [query.stitched_walk(s, 5000).fetches for s in (10, 20, 30)]
        return float(np.mean(counts))

    full = benchmark.pedantic(
        lambda: fetches_for("full", 5), rounds=1, iterations=1
    )
    sampled = fetches_for(FETCH_SAMPLED_EDGE, 6)
    if not FAST_MODE:
        assert sampled <= 2.5 * full + 5  # Remark 1's factor-2 (plus noise)
    print(f"\nfull-mode fetches {full:.1f}, sampled-edge fetches {sampled:.1f}")


def test_ablation_normalization(benchmark):
    """Paper vs empirical normalization on a graph with dangling mass."""
    from repro.graph.digraph import DynamicDiGraph

    rng = np.random.default_rng(7)
    graph = DynamicDiGraph(400, allow_self_loops=False)
    for _ in range(2000):
        u, v = int(rng.integers(400)), int(rng.integers(400))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    # knock out the out-edges of 40 nodes -> real dangling mass
    for node in range(0, 400, 10):
        for target in list(graph.out_view(node)):
            graph.remove_edge(node, target)
    exact = exact_pagerank(graph, reset_probability=0.2)

    def build():
        return IncrementalPageRank.from_graph(
            graph, reset_probability=0.2, walks_per_node=20, rng=8
        )

    engine = benchmark.pedantic(build, rounds=1, iterations=1)
    paper_scores = engine.pagerank("paper")
    empirical_scores = engine.pagerank("empirical")
    # paper normalization is the unbiased match for Equation (1) …
    assert np.abs(paper_scores - exact).sum() < np.abs(
        empirical_scores - exact
    ).sum()
    # … while empirical is the proper distribution
    assert abs(empirical_scores.sum() - 1.0) < 1e-9
    assert paper_scores.sum() < 0.98  # dangling mass genuinely absorbed
