"""Multi-process serve tier: epoch protocol, differential equality, shedding.

The load-bearing test is the differential one: over an interleaved
schedule of query waves, coordinator updates, and epoch bumps, every
answer from the worker processes must be bit-identical (rankings and
visit counts — cost counters legitimately vary with cache warmth) to a
single-process :class:`QueryEngine` with the same ``rng_seed`` over the
same published state.

Worker processes spawn slowly (~seconds each), so the process-backed
tests share one frontend per test and are marked slow.
"""

from __future__ import annotations

import json
import queue
import threading

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.errors import ConfigurationError, ServeError, WalkStateError
from repro.graph.arrival import ArrivalEvent
from repro.obs import Tracer
from repro.serve import (
    ArenaPublisher,
    MultiProcessFrontend,
    QueryEngine,
    QueryRequest,
    WorkerConfig,
    read_current,
)
from repro.serve import worker as worker_protocol
from repro.serve.worker import worker_main

NUM_NODES = 36
RNG_SEED = 7


def _edge_schedule(count: int, rng_seed: int = 3):
    """``count`` distinct non-self-loop add events."""
    rng = np.random.default_rng(rng_seed)
    seen, events = set(), []
    while len(events) < count:
        u, v = int(rng.integers(0, NUM_NODES)), int(rng.integers(0, NUM_NODES))
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            events.append(ArrivalEvent("add", u, v))
    return events


def _fresh_engine(prefix_events):
    from repro.graph.digraph import DynamicDiGraph
    from repro.store.social_store import SocialStore

    engine = IncrementalPageRank(
        SocialStore.of_graph(DynamicDiGraph(NUM_NODES)),
        walks_per_node=3,
        rng=np.random.default_rng(0),
    )
    engine.apply_batch(prefix_events)
    return engine


def _wave(offset: int = 0):
    return (
        [
            QueryRequest(kind="topk", seed=(offset + s) % NUM_NODES, k=5)
            for s in range(12)
        ]
        + [
            QueryRequest(kind="ppr", seed=(offset + s) % NUM_NODES, length=48)
            for s in range(4)
        ]
        + [
            QueryRequest(
                kind="pprt",
                seed=(offset + s) % NUM_NODES,
                target=(offset + 2 * s + 1) % NUM_NODES,
                delta=0.05,
                length=40,
            )
            for s in range(3)
        ]
    )


def _oracle_answers(oracle: QueryEngine, requests):
    answers = []
    for request in requests:
        if request.kind == "ppr":
            answers.append(oracle.ppr(request.seed, request.length))
        elif request.kind == "pprt":
            answers.append(
                oracle.ppr_to_target(
                    request.seed,
                    request.target,
                    request.delta,
                    r_max=request.r_max,
                    walk_length=request.length,
                )
            )
        else:
            answers.append(
                oracle.top_k(
                    request.seed,
                    request.k,
                    length=request.length,
                    exclude_friends=request.exclude_friends,
                )
            )
    return answers


def _assert_identical(served, expected):
    assert len(served) == len(expected)
    for answer, reference in zip(served, expected):
        assert answer is not None
        if hasattr(reference, "ranking"):
            assert answer.ranking == reference.ranking
        elif hasattr(reference, "estimate"):
            assert answer.estimate == reference.estimate
            assert answer.above_delta == reference.above_delta
        else:
            assert answer.visit_counts == reference.visit_counts


class TestEpochPublisher:
    """ArenaPublisher + read_current, no worker processes involved."""

    def test_publish_flips_pointer_and_read_current_agrees(self, tmp_path):
        engine = _fresh_engine(_edge_schedule(60))
        publisher = ArenaPublisher(tmp_path / "arenas")
        generation, directory = publisher.publish(engine)
        assert generation == 1
        assert read_current(tmp_path / "arenas") == (generation, directory)
        generation2, directory2 = publisher.publish(engine)
        assert generation2 == 2
        assert read_current(tmp_path / "arenas") == (generation2, directory2)

    def test_read_current_without_publish_is_clean(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no published"):
            read_current(tmp_path)

    def test_corrupt_pointer_rejected(self, tmp_path):
        engine = _fresh_engine(_edge_schedule(40))
        publisher = ArenaPublisher(tmp_path)
        publisher.publish(engine)
        (tmp_path / "CURRENT").write_text("{not json", encoding="utf-8")
        with pytest.raises(WalkStateError, match="unreadable"):
            read_current(tmp_path)

    def test_pointer_to_missing_generation_rejected(self, tmp_path):
        (tmp_path / "CURRENT").write_text(
            json.dumps({"generation": 9, "directory": "gen-000009"}),
            encoding="utf-8",
        )
        with pytest.raises(WalkStateError, match="missing snapshot"):
            read_current(tmp_path)

    def test_retention_prunes_old_never_current(self, tmp_path):
        engine = _fresh_engine(_edge_schedule(40))
        publisher = ArenaPublisher(tmp_path, retain=2)
        for _ in range(4):
            generation, directory = publisher.publish(engine)
        remaining = sorted(p.name for p in tmp_path.glob("gen-*"))
        assert remaining == ["gen-000003", "gen-000004"]
        assert directory.is_dir()
        assert read_current(tmp_path) == (generation, directory)

    def test_numbering_resumes_past_existing_root(self, tmp_path):
        engine = _fresh_engine(_edge_schedule(40))
        ArenaPublisher(tmp_path).publish(engine)
        resumed = ArenaPublisher(tmp_path)
        assert resumed.generation == 1
        generation, _ = resumed.publish(engine)
        assert generation == 2

    def test_prune_concurrent_with_publish_is_crash_safe(self, tmp_path):
        """Retention pruning in one thread while another publishes: no
        crash on either side, and the live pointer always resolves."""
        engine = _fresh_engine(_edge_schedule(40))
        publisher = ArenaPublisher(tmp_path, retain=1)
        stop = threading.Event()
        errors: list = []

        def prune_loop():
            while not stop.is_set():
                try:
                    publisher.prune(keep=1)
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        def read_loop():
            while not stop.is_set():
                try:
                    _, directory = read_current(tmp_path)
                except ConfigurationError:
                    continue  # nothing published yet
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=prune_loop),
            threading.Thread(target=read_loop),
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(10):
                generation, _ = publisher.publish(engine, prune=False)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors, errors
        assert generation == 10
        current, directory = read_current(tmp_path)
        assert current == 10 and directory.is_dir()

    def test_publish_tolerates_leftover_vanishing_midway(
        self, tmp_path, monkeypatch
    ):
        """A crashed-publish leftover being reclaimed by a concurrent prune
        exactly while publish discards it must not crash the publish."""
        import shutil

        import repro.serve.epochs as epochs

        engine = _fresh_engine(_edge_schedule(40))
        publisher = ArenaPublisher(tmp_path, retain=1)
        publisher.publish(engine)
        publisher.generation_dir(2).mkdir()  # the crashed leftover
        original = shutil.rmtree

        def racing_rmtree(path, **kwargs):
            original(path, ignore_errors=True)  # "concurrent prune" wins
            return original(path, **kwargs)

        monkeypatch.setattr(epochs.shutil, "rmtree", racing_rmtree)
        generation, directory = publisher.publish(engine)
        assert generation == 2 and directory.is_dir()
        assert read_current(tmp_path) == (generation, directory)

    def test_read_current_retries_across_pointer_flip(
        self, tmp_path, monkeypatch
    ):
        """A reader that loads a pointer naming a just-pruned generation
        re-reads and lands on the flipped pointer instead of raising."""
        import repro.serve.epochs as epochs

        engine = _fresh_engine(_edge_schedule(40))
        publisher = ArenaPublisher(tmp_path, retain=1)
        publisher.publish(engine)  # gen 1
        publisher.publish(engine)  # gen 2; retention prunes gen 1
        real_loads = json.loads
        state = {"first": True}

        def stale_then_real(text):
            if state["first"]:
                state["first"] = False
                # what the reader saw an instant before the flip+prune
                return {"generation": 1, "directory": "gen-000001"}
            return real_loads(text)

        monkeypatch.setattr(epochs.json, "loads", stale_then_real)
        generation, directory = read_current(tmp_path)
        assert generation == 2 and directory.is_dir()


@pytest.mark.slow
class TestMultiProcessDifferential:
    def test_interleaved_schedule_bit_identical_to_single_process(self):
        """Queries, updates, and epoch bumps interleaved: every mp answer
        equals the in-process oracle's, before and after each swap."""
        events = _edge_schedule(180)
        engine = _fresh_engine(events[:100])
        oracle = QueryEngine(engine, rng_seed=RNG_SEED)
        with MultiProcessFrontend(
            engine,
            num_workers=2,
            max_in_flight=256,
            config=WorkerConfig(rng_seed=RNG_SEED),
        ) as frontend:
            slices = [events[100:140], events[140:180]]
            offset = 0
            for events_slice in [None, *slices]:
                if events_slice is not None:
                    engine.apply_batch(events_slice)
                    before = frontend.generation
                    assert frontend.publish_epoch() == before + 1
                for _ in range(2):
                    wave = _wave(offset)
                    offset += 5
                    _assert_identical(
                        frontend.run(wave), _oracle_answers(oracle, wave)
                    )
            # repeated waves stay identical: worker result caches answer
            # from the *current* generation only
            wave = _wave(0)
            _assert_identical(
                frontend.run(wave), _oracle_answers(oracle, wave)
            )
        oracle.detach()

    def test_shedding_shutdown_and_spans(self):
        """One frontend exercises the admission window, span grafting,
        and deterministic close (workers down, submits refused)."""
        engine = _fresh_engine(_edge_schedule(120))
        tracer = Tracer(enabled=True)
        frontend = MultiProcessFrontend(
            engine,
            num_workers=2,
            max_in_flight=64,
            config=WorkerConfig(rng_seed=RNG_SEED, trace=True),
            tracer=tracer,
        )
        try:
            wave = _wave(3)
            results = frontend.run(wave)
            assert all(r is not None for r in results)

            # worker spans shipped home and grafted under dispatch spans
            spans = tracer.spans()
            origins = {
                s.attributes.get("origin")
                for s in spans
                if "origin" in s.attributes
            }
            assert origins  # at least one worker contributed
            assert origins <= {"worker-0", "worker-1"}
            assert any(s.name == "serve.mp.batch" for s in spans)
            parents = {s.span_id for s in spans if s.name == "serve.mp.batch"}
            assert any(s.parent_id in parents for s in spans)

            # the frontend window sheds whole dispatches deterministically
            frontend.max_in_flight = 1
            same_worker = [
                QueryRequest(kind="topk", seed=5, k=k) for k in range(2, 7)
            ]
            shed = frontend.run(same_worker)
            assert shed == [None] * len(same_worker)
            snapshot = frontend.registry.snapshot()
            assert snapshot["repro_serve_mp_shed_total"] == len(same_worker)
            frontend.max_in_flight = 64

            # single-request façade sheds with the error, serves otherwise
            frontend.max_in_flight = 0
            with pytest.raises(Exception) as caught:
                frontend.submit(same_worker[0]).result(timeout=30)
            assert "shed" in str(caught.value).lower() or "Load" in type(
                caught.value
            ).__name__
            frontend.max_in_flight = 64
            answer = frontend.submit(same_worker[0]).result(timeout=60)
            assert answer.ranking
        finally:
            frontend.close()
        frontend.close()  # idempotent
        assert all(not p.is_alive() for p in frontend._processes)
        with pytest.raises(ServeError, match="closed"):
            frontend.publish_epoch()
        future = frontend.submit(_wave(0)[0])
        with pytest.raises(ServeError, match="closed"):
            future.result(timeout=5)


class TestWorkerLoopInProcess:
    """``worker_main`` run in this process over plain queues.

    The queues only need ``get``/``put``, so the full worker protocol —
    init failure, batch errors, failed swaps, unknown-tag tolerance —
    is testable without a process boundary in the way of assertions.
    """

    def test_init_error_on_missing_snapshot(self, tmp_path):
        requests, responses = queue.Queue(), queue.Queue()
        worker_main(
            3, str(tmp_path / "nope"), 1, WorkerConfig(), requests, responses
        )
        tag, worker_id, (type_name, message) = responses.get_nowait()
        assert tag == worker_protocol.INIT_ERROR
        assert worker_id == 3
        assert type_name == "ConfigurationError"
        assert "not a shared snapshot" in message
        assert responses.empty()  # no READY, no STOPPED after init failure

    def test_protocol_script_end_to_end(self, tmp_path):
        """One preloaded FIFO script exercises every message tag in order;
        answers must match the oracle at the matching generation."""
        events = _edge_schedule(150)
        engine = _fresh_engine(events[:120])
        oracle = QueryEngine(engine, rng_seed=RNG_SEED)
        publisher = ArenaPublisher(tmp_path)
        generation1, directory1 = publisher.publish(engine)
        wave1 = tuple(_wave(1))
        expected1 = _oracle_answers(oracle, wave1)

        engine.apply_batch(events[120:])
        generation2, directory2 = publisher.publish(engine)
        wave2 = tuple(_wave(2))
        expected2 = _oracle_answers(oracle, wave2)
        oracle.detach()

        requests, responses = queue.Queue(), queue.Queue()
        requests.put((worker_protocol.BATCH, 1, wave1))
        requests.put((worker_protocol.BATCH, 2, None))  # batcher blows up
        requests.put(("gossip",))  # unknown tag: dropped, never wedges
        requests.put(
            (worker_protocol.EPOCH, 7, generation2, str(directory2))
        )
        requests.put(
            (worker_protocol.EPOCH, 8, 99, str(tmp_path / "missing"))
        )
        requests.put((worker_protocol.BATCH, 3, wave2))
        requests.put((worker_protocol.STOP,))
        worker_main(
            0,
            str(directory1),
            generation1,
            WorkerConfig(rng_seed=RNG_SEED, trace=True),
            requests,
            responses,
        )

        assert responses.get_nowait() == (
            worker_protocol.READY,
            0,
            generation1,
        )
        tag, _, batch_id, results, spans = responses.get_nowait()
        assert (tag, batch_id) == (worker_protocol.RESULT, 1)
        _assert_identical(results, expected1)
        assert spans  # trace=True ships finished spans with the batch
        tag, _, batch_id, (type_name, _) = responses.get_nowait()
        assert (tag, batch_id) == (worker_protocol.ERROR, 2)
        assert type_name == "TypeError"
        assert responses.get_nowait() == (
            worker_protocol.EPOCH_OK,
            0,
            7,
            generation2,
        )
        tag, _, epoch_id, (type_name, message) = responses.get_nowait()
        # failed swap: negative epoch id, old generation kept serving
        assert (tag, epoch_id) == (worker_protocol.ERROR, -8)
        assert type_name == "ConfigurationError"
        assert "not a shared snapshot" in message
        tag, _, batch_id, results, _ = responses.get_nowait()
        assert (tag, batch_id) == (worker_protocol.RESULT, 3)
        _assert_identical(results, expected2)  # post-swap generation
        assert responses.get_nowait() == (worker_protocol.STOPPED, 0)
        assert responses.empty()


class TestWorkerConfigValidation:
    def test_frontend_validates_parameters(self):
        engine = _fresh_engine(_edge_schedule(30))
        with pytest.raises(ConfigurationError, match="num_workers"):
            MultiProcessFrontend(engine, num_workers=0)
        with pytest.raises(ConfigurationError, match="max_in_flight"):
            MultiProcessFrontend(engine, num_workers=1, max_in_flight=0)

    def test_publisher_validates_retain(self, tmp_path):
        with pytest.raises(ConfigurationError, match="retain"):
            ArenaPublisher(tmp_path, retain=0)

    def test_route_is_seed_affine(self):
        engine = _fresh_engine(_edge_schedule(30))
        # route() is pure arithmetic — safe to call on an unstarted
        # instance via the class (no processes spawned here)
        frontend = object.__new__(MultiProcessFrontend)
        frontend.num_workers = 4
        routes = {seed: MultiProcessFrontend.route(frontend, seed) for seed in range(64)}
        assert set(routes.values()) <= set(range(4))
        assert len(set(routes.values())) > 1  # spreads across workers
        assert all(
            MultiProcessFrontend.route(frontend, seed) == worker
            for seed, worker in routes.items()
        )
