"""Request batching: coalescing, a worker pool, and admission control.

A serving tier in front of a walk store sees three load phenomena the
:class:`~repro.serve.engine.QueryEngine` alone does not handle:

* **duplicate in-flight seeds** — under a Zipf seed distribution the same
  hot seed is requested many times within one queue drain; only the first
  should pay for a walk.  The batcher coalesces requests with the same
  query key onto one shared future.
* **parallel execution** — distinct seeds are independent reads, so a
  worker pool executes them concurrently.  Queries stay deterministic
  under concurrency because each walk's RNG is derived from the query
  itself (see :meth:`QueryEngine.query_rng`), never from execution order.
* **overload** — a bounded in-flight window sheds excess requests with
  :class:`~repro.errors.LoadShedError` instead of letting latency grow
  without bound (queue-depth load shedding, the standard admission-control
  policy for read services).

Every outcome is billed to the shared :class:`~repro.serve.stats.ServeStats`.

Concurrency contract: the pool parallelizes *reads*.  Store mutations
(``apply``/``apply_batch``) must not run while futures are unresolved —
drain the batcher (``run`` blocks until its drain completes) before
ingesting, as all drivers here do.  See :mod:`repro.serve` for details.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.errors import ConfigurationError, LoadShedError
from repro.serve.engine import QueryEngine

__all__ = ["QueryRequest", "RequestBatcher"]

PPR = "ppr"
TOP_K = "topk"


@dataclass(frozen=True)
class QueryRequest:
    """One client request, hashable so duplicates can be coalesced."""

    kind: str = TOP_K
    seed: int = 0
    k: int = 10
    #: Explicit walk length; None lets top-k size the walk via Equation 4
    #: (required for ``kind='ppr'``).
    length: Optional[int] = None
    exclude_friends: bool = True

    def __post_init__(self) -> None:
        if self.kind not in (PPR, TOP_K):
            raise ConfigurationError(
                f"kind must be '{PPR}' or '{TOP_K}', got {self.kind!r}"
            )
        if self.kind == PPR and self.length is None:
            raise ConfigurationError("ppr requests need an explicit length")


class RequestBatcher:
    """Coalescing worker-pool front door for a :class:`QueryEngine`."""

    def __init__(
        self,
        query_engine: QueryEngine,
        *,
        max_workers: int = 4,
        max_queue_depth: int = 256,
        fresh_stats: bool = False,
    ) -> None:
        """Front a :class:`QueryEngine` with a coalescing worker pool.

        ``fresh_stats=True`` zeroes the engine's (long-lived, shared)
        serve and store counters on construction, so a restarted batcher
        reports this session's rates rather than the process lifetime's.
        """
        if max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        if max_queue_depth <= 0:
            raise ConfigurationError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        self.query_engine = query_engine
        self.stats = query_engine.stats
        if fresh_stats:
            self.reset_stats()
        self.max_queue_depth = max_queue_depth
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._in_flight: dict[Hashable, Future] = {}
        self._depth = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _key(request: QueryRequest) -> Hashable:
        return request

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet finished."""
        return self._depth

    def submit(self, request: QueryRequest) -> Future:
        """Admit ``request``; returns a future for its result.

        A duplicate of an in-flight request shares that request's future
        (coalesced — it neither costs a walk nor counts against the
        admission window).  When the in-flight window is full the request
        is shed: the returned future fails with
        :class:`~repro.errors.LoadShedError`.
        """
        key = self._key(request)
        with self._lock:
            existing = self._in_flight.get(key)
            if existing is not None:
                self.stats.record_coalesced()
                return existing
            if self._depth >= self.max_queue_depth:
                self.stats.record_shed()
                shed: Future = Future()
                shed.set_exception(
                    LoadShedError(self._depth, self.max_queue_depth)
                )
                return shed
            self._depth += 1
            future = self._executor.submit(self._execute, request, key)
            # _execute's cleanup also takes the lock, so the future cannot
            # be reaped before it is registered here.
            self._in_flight[key] = future
            return future

    def _execute(self, request: QueryRequest, key: Hashable):
        try:
            if request.kind == PPR:
                return self.query_engine.ppr(request.seed, request.length)
            return self.query_engine.top_k(
                request.seed,
                request.k,
                length=request.length,
                exclude_friends=request.exclude_friends,
            )
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
                self._depth -= 1

    # ------------------------------------------------------------------

    def run(self, requests: Sequence[QueryRequest]) -> List[Optional[object]]:
        """Submit a whole queue drain and gather results in request order.

        Shed requests yield ``None`` (their count is in the stats); other
        failures propagate.  Duplicate requests resolve to the shared
        result.
        """
        futures = [self.submit(request) for request in requests]
        results: List[Optional[object]] = []
        for future in futures:
            try:
                results.append(future.result())
            except LoadShedError:
                results.append(None)
        return results

    def reset_stats(self) -> None:
        """Zero the serve counters and the store's fetch accounting.

        Both objects outlive any one batcher (they hang off the engine),
        so a batcher restart inherits stale counts unless it resets them.
        """
        self.stats.reset()
        self.query_engine.store.stats.reset()

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "RequestBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"RequestBatcher(depth={self._depth}, "
            f"max_queue_depth={self.max_queue_depth})"
        )
