"""E-F6: number of fetches vs walk length, against the Theorem-8 bound.

§4.5: for R ∈ {5, 10, 20} stored segments per node, measure the number of
FlockDB (here: PageRankStore) fetches needed to compose stitched walks of
length 100 … 50 000, averaged over seed users (thin lines), and compare
with the per-user theoretical bound averaged the same way (thick lines).
The paper's findings, which are the reproduction targets:

* measured fetches sit below the theoretical curve,
* fetch counts are *not very sensitive to R*,
* the bound is accurate well below the ``R > q ln n`` regime it was
  proved in (R as small as 5).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.power_law import fit_personalized_exponent
from repro.baselines.power_iteration import exact_personalized_pagerank
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.theory import thm8_fetch_bound
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng, spawn
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_graph

__all__ = ["run_fig6"]

DEFAULT_LENGTHS = (100, 300, 1000, 3000, 10_000, 30_000)


@register("E-F6")
def run_fig6(
    num_nodes: int = 10_000,
    num_edges: int = 120_000,
    num_users: int = 10,
    walk_counts: tuple[int, ...] = (5, 10, 20),
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    rng=42,
) -> ExperimentResult:
    """Figure 6: measured fetches vs the Theorem-8 bound, per R."""
    generator = ensure_rng(rng)
    graph_rng, seed_rng, *engine_rngs = spawn(generator, 2 + len(walk_counts))
    graph = twitter_like_graph(num_nodes, num_edges, rng=graph_rng)
    seeds = users_with_friend_count(
        graph, minimum=15, maximum=40, count=num_users, rng=seed_rng
    )

    # Per-user exponents (paper: "using its own power-law exponent").
    vectors = exact_personalized_pagerank(graph, seeds, reset_probability=0.2)
    alphas = []
    for seed, vector in zip(seeds, vectors):
        fit = fit_personalized_exponent(vector, graph.out_degree(seed))
        # Theorem 8 needs alpha in (0, 1); clamp pathological fits, as the
        # paper does for its ~2% of users with alpha > 1.
        alphas.append(min(max(fit.alpha, 0.05), 0.98))

    rows = []
    figures = {}
    for walks, engine_rng in zip(walk_counts, engine_rngs):
        engine = IncrementalPageRank.from_graph(
            graph.copy(),
            reset_probability=0.2,
            walks_per_node=walks,
            rng=engine_rng,
        )
        query = PersonalizedPageRank(engine.pagerank_store, rng=engine_rng)
        measured_series = []
        bound_series = []
        for length in lengths:
            fetch_counts = []
            bounds = []
            for seed, alpha in zip(seeds, alphas):
                walk = query.stitched_walk(seed, length)
                fetch_counts.append(walk.fetches)
                bounds.append(thm8_fetch_bound(length, num_nodes, walks, alpha))
            measured = float(np.mean(fetch_counts))
            bound = float(np.mean(bounds))
            measured_series.append(measured)
            bound_series.append(bound)
            rows.append(
                {
                    "R": walks,
                    "walk length s": length,
                    "measured fetches": measured,
                    "thm8 bound": bound,
                    "within bound": measured <= bound,
                }
            )
        figures[f"fig6 R={walks}"] = ascii_plot(
            {
                "measured": (list(lengths), measured_series),
                "thm8 bound": (list(lengths), bound_series),
            },
            log_x=True,
            title=f"Figure 6 (R={walks}): fetches vs walk length",
        )

    result = ExperimentResult(
        experiment_id="E-F6",
        title="Figure 6: fetches to compose stitched walks, vs Theorem 8",
        params={
            "n": num_nodes,
            "m": num_edges,
            "users": num_users,
            "R values": list(walk_counts),
        },
        rows=rows,
        figures=figures,
    )
    # Cross-R sensitivity: the paper notes fetch counts barely move with R.
    by_r = {}
    for row in rows:
        by_r.setdefault(row["walk length s"], []).append(row["measured fetches"])
    max_spread = max(
        (max(v) - min(v)) / max(max(v), 1) for v in by_r.values() if len(v) > 1
    )
    result.notes.append(
        f"Max relative spread of measured fetches across R: {max_spread:.2f} "
        "(paper: 'not much sensitive to R')."
    )
    return result
