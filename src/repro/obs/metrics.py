"""Thread-safe metrics primitives with Prometheus and JSON exposition.

The paper states its efficiency claims in observable units — walk-segment
updates per edge arrival (Theorem 4), store fetches per query (Theorem 8) —
and every layer of this repo already counts *something*: ``ServeStats`` in
the serve tier, ``CallStats`` in the stores, the staleness scheduler's
repair ledger.  :class:`MetricsRegistry` is the one sink they all bill
into, so a single ``registry.render_prometheus()`` shows the whole stack.

Three primitives, all label-aware and thread-safe:

* :class:`Counter` — monotone totals (``repro_serve_queries_total``).
* :class:`Gauge` — set/observe point-in-time values (stale-queue depth).
* :class:`Histogram` — geometric-bucket distributions with interpolated
  percentiles.  The bucket schemes (factor-2 from 1 µs for latencies,
  powers of two for batch sizes and steps) are the ones ``serve/stats.py``
  grew organically, extracted here so every layer shares them.

Metric names follow ``repro_<layer>_<name>`` (layers: ``core``, ``store``,
``serve``, ``scheduler``, ``kernel``); see DESIGN.md §12.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "STEP_BUCKETS",
]

#: Latency bucket upper bounds in seconds: 1 µs · 2^i, i = 0 … 39 (~18 min).
LATENCY_BUCKETS: Tuple[float, ...] = tuple(1e-6 * (2.0**i) for i in range(40))

#: Kernel-batch-size bucket upper bounds: 1, 2, 4, … 4096 queries.
BATCH_SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(13))

#: Steps(visits)-per-query bucket upper bounds: 1, 2, 4, … ~8M steps.
STEP_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(24))

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


class _Metric:
    """Shared labeled-series machinery for the three primitives."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        documentation: str,
        label_names: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        if not _METRIC_NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_NAME_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        self.name = name
        self.documentation = documentation
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = lock
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _labels_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def _series_suffix(self, key: Tuple[str, ...]) -> str:
        if not key:
            return ""
        inner = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, key)
        )
        return "{" + inner + "}"

    def series_keys(self) -> List[Tuple[str, ...]]:
        with self._lock:
            return sorted(self._series)

    def reset(self) -> None:
        with self._lock:
            self._series.clear()


class Counter(_Metric):
    """Monotonically increasing total, optionally labeled."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"{self.name}: counter increment must be >= 0, got {amount}"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        with self._lock:
            return float(sum(self._series.values()))


class Gauge(_Metric):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: object) -> None:
        """Raise the gauge to ``value`` if it is above the current reading."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = max(self._series.get(key, 0.0), float(value))

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))


class _HistogramSeries:
    __slots__ = ("buckets", "count", "sum", "max")

    def __init__(self, num_bounds: int) -> None:
        self.buckets = [0] * (num_bounds + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(_Metric):
    """Geometric-bucket distribution with interpolated percentiles.

    Buckets are cumulative in the Prometheus exposition but stored
    per-bucket internally; one overflow bucket catches observations above
    the last bound.  :meth:`percentile` interpolates linearly *within* the
    containing bucket (clamped to the observed max), rather than returning
    the bucket's upper bound — for a factor-2 bucket scheme that halves the
    worst-case estimation error.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        documentation: str,
        label_names: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, documentation, label_names, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"{name}: bucket bounds must be strictly increasing and non-empty"
            )
        self.bounds: Tuple[float, ...] = bounds

    def _get_series(self, key: Tuple[str, ...]) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.bounds))
            self._series[key] = series
        return series  # type: ignore[return-value]

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.bounds, value)
        with self._lock:
            series = self._get_series(key)
            series.buckets[index] += 1
            series.count += 1
            series.sum += value
            if value > series.max:
                series.max = value

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def total_count(self) -> int:
        with self._lock:
            return sum(s.count for s in self._series.values())

    def sum_value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.sum if series else 0.0

    def max_value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.max if series else 0.0

    def mean(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if not series or not series.count:
                return 0.0
            return series.sum / series.count

    def bucket_counts(self, **labels: object) -> Dict[float, int]:
        """Nonzero finite buckets as ``{upper_bound: count}`` (no overflow)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if not series:
                return {}
            return {
                self.bounds[i]: count
                for i, count in enumerate(series.buckets[: len(self.bounds)])
                if count
            }

    def overflow_count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.buckets[-1] if series else 0

    def percentile(self, p: float, **labels: object) -> float:
        """Percentile ``p`` in [0, 1], interpolated within the bucket.

        Returns 0.0 for an empty histogram.  The estimate is clamped to the
        observed maximum, so ``percentile(1.0)`` is exact.
        """
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"percentile must be in [0, 1], got {p}")
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if not series or not series.count:
                return 0.0
            rank = p * series.count
            seen = 0
            for index, count in enumerate(series.buckets):
                if not count:
                    continue
                seen += count
                if seen >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    if index < len(self.bounds):
                        upper = self.bounds[index]
                    else:  # overflow bucket: interpolate toward the max
                        upper = series.max
                    fraction = (rank - (seen - count)) / count
                    fraction = min(max(fraction, 0.0), 1.0)
                    estimate = lower + (upper - lower) * fraction
                    return min(estimate, series.max)
            return series.max


class MetricsRegistry:
    """Get-or-create registry of named metrics with unified exposition.

    One ``threading.RLock`` guards every metric in the registry, so a
    single lock acquisition covers any read-modify-write and renders are
    internally consistent.  Re-registering a name returns the existing
    metric after checking that kind, labels, and (for histograms) buckets
    match — two components billing the same series compose instead of
    clobbering each other.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, documentation: str, labels: Sequence[str], **kwargs
    ) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                if existing.label_names != tuple(labels):
                    raise ConfigurationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {tuple(labels)}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and existing.bounds != tuple(
                    float(b) for b in buckets
                ):  # type: ignore[attr-defined]
                    raise ConfigurationError(
                        f"metric {name!r} already registered with different buckets"
                    )
                return existing
            metric = cls(name, documentation, tuple(labels), self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, documentation: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, documentation, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, documentation: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, documentation, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        documentation: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, documentation, labels, buckets=buckets
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every series in every metric (metrics stay registered)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    # ------------------------------------------------------------------
    # Snapshot / delta
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series: value}`` map, keyed Prometheus-style.

        Counters and gauges contribute one entry per series; histograms
        contribute ``<name>_count`` and ``<name>_sum`` entries.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, Histogram):
                    for key in sorted(metric._series):
                        series = metric._series[key]
                        suffix = metric._series_suffix(key)
                        out[f"{name}_count{suffix}"] = float(series.count)
                        out[f"{name}_sum{suffix}"] = series.sum
                else:
                    for key in sorted(metric._series):
                        out[f"{name}{metric._series_suffix(key)}"] = float(
                            metric._series[key]  # type: ignore[arg-type]
                        )
        return out

    def delta_since(self, snapshot: Mapping[str, float]) -> Dict[str, float]:
        """Per-series growth since a prior :meth:`snapshot` (changed only)."""
        current = self.snapshot()
        return {
            series: current.get(series, 0.0) - snapshot.get(series, 0.0)
            for series in set(current) | set(snapshot)
            if current.get(series, 0.0) != snapshot.get(series, 0.0)
        }

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, dict]:
        """JSON-friendly dump: per-metric type, help, and series."""
        out: Dict[str, dict] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: Dict[str, object] = {
                    "type": metric.kind,
                    "help": metric.documentation,
                    "labels": list(metric.label_names),
                }
                series_list: List[dict] = []
                if isinstance(metric, Histogram):
                    for key in sorted(metric._series):
                        series = metric._series[key]
                        series_list.append(
                            {
                                "labels": metric._labels_dict(key),
                                "count": series.count,
                                "sum": series.sum,
                                "max": series.max,
                                "buckets": {
                                    _format_bound(metric.bounds[i]): c
                                    for i, c in enumerate(
                                        series.buckets[: len(metric.bounds)]
                                    )
                                    if c
                                },
                                "overflow": series.buckets[-1],
                            }
                        )
                else:
                    for key in sorted(metric._series):
                        series_list.append(
                            {
                                "labels": metric._labels_dict(key),
                                "value": metric._series[key],
                            }
                        )
                entry["series"] = series_list
                out[name] = entry
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                help_text = metric.documentation.replace("\\", "\\\\").replace(
                    "\n", "\\n"
                )
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if isinstance(metric, Histogram):
                    for key in sorted(metric._series):
                        series = metric._series[key]
                        base_labels = [
                            f'{n}="{_escape_label_value(v)}"'
                            for n, v in zip(metric.label_names, key)
                        ]
                        cumulative = 0
                        for i, bound in enumerate(metric.bounds):
                            cumulative += series.buckets[i]
                            labels = ",".join(
                                base_labels + [f'le="{_format_bound(bound)}"']
                            )
                            lines.append(
                                f"{name}_bucket{{{labels}}} {cumulative}"
                            )
                        cumulative += series.buckets[-1]
                        labels = ",".join(base_labels + ['le="+Inf"'])
                        lines.append(f"{name}_bucket{{{labels}}} {cumulative}")
                        suffix = metric._series_suffix(key)
                        lines.append(
                            f"{name}_sum{suffix} {_format_value(series.sum)}"
                        )
                        lines.append(f"{name}_count{suffix} {series.count}")
                else:
                    keys = metric.series_keys() or ([()] if not metric.label_names else [])
                    for key in keys:
                        value = metric._series.get(key, 0.0)
                        lines.append(
                            f"{name}{metric._series_suffix(key)} "
                            f"{_format_value(float(value))}"  # type: ignore[arg-type]
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._metrics)} metrics)"
