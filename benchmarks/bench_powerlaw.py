"""E-F2/E-F3/E-F4: power-law structure benchmarks (§4.3, Figures 2-4).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workloads,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

from repro.experiments.exp_powerlaw import run_fig2, run_fig3, run_fig4

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

GRAPH = (
    {"num_nodes": 1000, "num_edges": 12_000, "rng": 42}
    if FAST_MODE
    else {"num_nodes": 4000, "num_edges": 48_000, "rng": 42}
)


def test_e_f2(benchmark, once):
    result = once(benchmark, run_fig2, **GRAPH)
    indeg = next(r for r in result.rows if r["quantity"] == "in-degree")
    pagerank = next(r for r in result.rows if "PageRank" in r["quantity"])
    if not FAST_MODE:
        # the claim: both power laws hold, with roughly equal exponents
        assert indeg["r^2"] > 0.9
        assert pagerank["r^2"] > 0.9
        assert abs(indeg["alpha"] - pagerank["alpha"]) < 0.15
    print()
    print(result.render())


def test_e_f3(benchmark, once):
    result = once(benchmark, run_fig3, num_users=2 if FAST_MODE else 4, **GRAPH)
    if not FAST_MODE:
        # every personalized vector is a clean power law on [2f,20f]
        for row in result.rows:
            assert row["r^2"] > 0.95
    print()
    print(result.render())


def test_e_f4(benchmark, once):
    result = once(benchmark, run_fig4, num_users=10 if FAST_MODE else 40, **GRAPH)
    stats = {row["statistic"]: row["measured"] for row in result.rows}
    if not FAST_MODE:
        # exponents cluster tightly around their mean (paper: sd 0.08) …
        assert stats["std per-user alpha"] < 0.15
        # … and the mean tracks the window-matched global exponent
        gap = abs(
            stats["mean per-user alpha"]
            - stats["global in-degree alpha (same [2f,20f] window)"]
        )
        assert gap < 0.3
    print()
    print(result.render())
