"""E-THM4 / E-PROP5 / E-DIR / E-ADV / E-THM6 / E-BATCH: maintenance-cost
benchmarks.

Set ``REPRO_BENCH_FAST=1`` to shrink every workload to smoke-test scale
(used by the CI workflow); statistically calibrated assertions are skipped
at that scale.  At full scale E-BATCH ingests a 50k-edge arrival slice and
asserts the batched path's ≥5× wall-clock win over the sequential path.
"""

from __future__ import annotations

import os

from repro.core import theory
from repro.experiments.exp_update_cost import (
    run_adversarial,
    run_batch_ingest,
    run_dirichlet,
    run_prop5,
    run_thm4,
    run_thm6,
)

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

SIZE = (
    {"num_nodes": 400, "num_edges": 4_800, "rng": 42}
    if FAST_MODE
    else {"num_nodes": 1000, "num_edges": 12_000, "rng": 42}
)

#: Full scale: a 50k-edge arrival slice (62.5k edges, 20% prebuilt).
BATCH_SIZE_PARAMS = (
    {
        "num_nodes": 500,
        "num_edges": 6_000,
        "prebuild_fraction": 0.2,
        "batch_sizes": (500, 0),
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 5000,
        "num_edges": 62_500,
        "prebuild_fraction": 0.2,
        "batch_sizes": (10_000, 0),
        "rng": 42,
    }
)


def test_e_batch(benchmark, once):
    result = once(benchmark, run_batch_ingest, **BATCH_SIZE_PARAMS)
    rows = {row["ingestion mode"]: row for row in result.rows}
    sequential = rows.pop("sequential (per edge)")
    assert rows, "no batched rows produced"
    best_speedup = max(row["speedup"] for row in rows.values())
    # the batch path must not trade accuracy for speed
    for row in rows.values():
        assert (
            row["L1 error vs exact"]
            < 3 * sequential["L1 error vs exact"] + 0.05
        )
        # batching repairs against the final graph only, so it never does
        # more walk work than the per-edge path
        assert row["touched steps"] <= sequential["touched steps"]
    if not FAST_MODE:
        # the headline acceptance: >=5x on a 50k-edge arrival slice
        assert best_speedup >= 5.0
    print()
    print(result.render())


def test_e_thm4(benchmark, once):
    result = once(benchmark, run_thm4, **SIZE)
    total = next(r for r in result.rows if r["arrival t"] == "TOTAL measured")
    measured = total["measured mean work"]
    bound = total["thm4 bound nR/(t eps^2)"]
    naive_pi = next(
        r for r in result.rows if "power-iteration" in str(r["arrival t"])
    )["measured mean work"]
    naive_mc = next(
        r for r in result.rows if "MC-rebuild" in str(r["arrival t"])
    )["measured mean work"]
    # Theorem 4's claim, in order of importance:
    assert measured <= bound  # total within the theoretical bound
    assert measured < naive_pi / 50  # crushes naive power iteration
    assert measured < naive_mc / 50  # crushes naive MC rebuilds
    print()
    print(result.render())


def test_e_prop5(benchmark, once):
    result = once(
        benchmark, run_prop5, deletions=200 if FAST_MODE else 500, **SIZE
    )
    row = next(
        r for r in result.rows if r["quantity"].startswith("mean resimulated")
    )
    if not FAST_MODE:
        # Prop 5's bound is tight under uniform deletion: ratio ≈ 1 (±40%)
        assert 0.4 < row["measured/bound"] < 1.4
    print()
    print(result.render())


def test_e_dir(benchmark, once):
    result = once(benchmark, run_dirichlet, **SIZE)
    values = {row["quantity"]: row["value"] for row in result.rows}
    assert values["total measured work"] <= values["dirichlet bound"]
    assert values["dirichlet bound"] < values["random-permutation bound (for scale)"]
    print()
    print(result.render())


def test_e_adv(benchmark, once):
    sizes = (10, 20) if FAST_MODE else (15, 30, 60)
    result = once(
        benchmark,
        run_adversarial,
        sizes=sizes,
        repetitions=3 if FAST_MODE else 5,
        rng=42,
    )
    rows = {row["gadget N"]: row for row in result.rows}
    if not FAST_MODE:
        # Omega(n): reroutes per nR stay bounded away from zero as n grows
        for size in sizes:
            assert rows[size]["reroutes / nR"] > 0.2
            assert (
                rows[size]["killer-edge reroutes"]
                > 3 * rows[size]["random-order last arrival"]
            )
        assert (
            rows[60]["killer-edge reroutes"]
            > 2.5 * rows[15]["killer-edge reroutes"]
        )
    print()
    print(result.render())


def test_e_thm6(benchmark, once):
    size = (300, 3000) if FAST_MODE else (600, 6000)
    result = once(
        benchmark, run_thm6, num_nodes=size[0], num_edges=size[1], rng=42
    )
    values = {row["quantity"]: row["value"] for row in result.rows}
    if not FAST_MODE:
        # SALSA costs more than PageRank, within the theorem's x16 envelope
        assert 2.0 < values["measured SALSA/PageRank ratio"] < 16.0
        assert values["SALSA within bound"]
    print()
    print(result.render())


def test_theory_worked_numbers(benchmark):
    """E-EQ4 (Remark 2): the paper's worked example, timed as a microbench."""

    def closed_forms():
        s_k = theory.eq4_walk_length(100, 10**8, 0.75, c=5)
        bound = theory.cor9_topk_fetch_bound(100, 0.75, c=5, R=10)
        return s_k, bound

    s_k, bound = benchmark(closed_forms)
    assert abs(s_k - 63245.55) < 100  # paper: "632k = 63200"
    assert abs(bound - 2001.0) < 40  # paper: "20k = 2000"
    assert bound < s_k / 30  # the point of Remark 2: fetches ≪ steps
