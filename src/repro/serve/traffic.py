"""Synthetic serving traffic: Zipf-distributed queries × arrival slices.

Real query load against a social ranking service is wildly skewed — a
small set of hot users is asked for again and again (session refreshes,
fan-out to followers), which is precisely why a seed-keyed result cache
works.  The standard model is a Zipf law over seeds; exponent 1.0 is the
classic web-request skew and is what the E-SERVE acceptance measures at.

:func:`interleaved_traffic` weaves those query bursts between slices of a
``twitter_like`` edge-arrival stream, producing the first workload in this
repository that exercises the read path (stitched walks through the
caches) and the write path (``apply_batch`` + invalidation) *against each
other* — the regime the paper's two-store design targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent, slice_events
from repro.rng import RngLike, ensure_rng
from repro.serve.batcher import QueryRequest

__all__ = ["zipf_seed_sequence", "TrafficPhase", "interleaved_traffic"]


def zipf_seed_sequence(
    num_queries: int,
    seed_pool: Union[int, Sequence[int]],
    *,
    exponent: float = 1.0,
    rng: RngLike = None,
) -> List[int]:
    """Draw ``num_queries`` query seeds, Zipf(``exponent``) over the pool.

    ``seed_pool`` is either a node count (pool = ``0 … n−1``) or an
    explicit list of eligible seeds (e.g. the paper's 20–30-friend users).
    Which pool member gets which popularity rank is randomized by ``rng``,
    so node id never correlates with hotness.  ``exponent=0`` degenerates
    to uniform traffic (the no-skew control).
    """
    if num_queries <= 0:
        raise ConfigurationError(
            f"num_queries must be positive, got {num_queries}"
        )
    if exponent < 0:
        raise ConfigurationError(f"exponent must be >= 0, got {exponent}")
    pool = (
        np.arange(seed_pool, dtype=np.int64)
        if isinstance(seed_pool, (int, np.integer))
        else np.asarray(list(seed_pool), dtype=np.int64)
    )
    if pool.size == 0:
        raise ConfigurationError("seed_pool is empty")
    generator = ensure_rng(rng)
    pool = generator.permutation(pool)  # rank -> random pool member
    weights = 1.0 / np.arange(1, pool.size + 1, dtype=np.float64) ** exponent
    weights /= weights.sum()
    drawn = generator.choice(pool, size=num_queries, p=weights)
    return [int(seed) for seed in drawn]


@dataclass
class TrafficPhase:
    """One unit of interleaved load: a query burst *or* an event slice."""

    queries: List[QueryRequest] = field(default_factory=list)
    events: List[ArrivalEvent] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "queries" if self.queries else "events"


def interleaved_traffic(
    events: Iterable[ArrivalEvent],
    seed_pool: Union[int, Sequence[int]],
    *,
    num_queries: int,
    k: int = 10,
    length: Optional[int] = None,
    exclude_friends: bool = True,
    zipf_exponent: float = 1.0,
    event_batch_size: int = 500,
    query_burst: int = 100,
    rng: RngLike = None,
) -> List[TrafficPhase]:
    """Alternating query bursts and edge-arrival slices.

    Queries are top-``k`` requests with Zipf(``zipf_exponent``) seeds
    (``length`` pins the walk length; None uses Equation-4 sizing).
    Bursts of ``query_burst`` alternate with event slices of
    ``event_batch_size`` until both streams are exhausted, so the driver
    sees sustained read traffic *and* a steadily mutating graph.
    """
    if query_burst <= 0:
        raise ConfigurationError(
            f"query_burst must be positive, got {query_burst}"
        )
    generator = ensure_rng(rng)
    seeds = zipf_seed_sequence(
        num_queries, seed_pool, exponent=zipf_exponent, rng=generator
    )
    requests = [
        QueryRequest(
            kind="topk",
            seed=seed,
            k=k,
            length=length,
            exclude_friends=exclude_friends,
        )
        for seed in seeds
    ]
    query_bursts = [
        requests[start : start + query_burst]
        for start in range(0, len(requests), query_burst)
    ]
    event_slices = list(slice_events(events, event_batch_size)) if events else []

    phases: List[TrafficPhase] = []
    for index in range(max(len(query_bursts), len(event_slices))):
        if index < len(query_bursts):
            phases.append(TrafficPhase(queries=query_bursts[index]))
        if index < len(event_slices):
            phases.append(TrafficPhase(events=event_slices[index]))
    return phases
