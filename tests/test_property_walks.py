"""Property-based tests: WalkStore's inverted index under arbitrary edits."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.walks import END_DANGLING, END_RESET, WalkSegment, WalkStore

NODES = 6

node_ids = st.integers(min_value=0, max_value=NODES - 1)
segment_nodes = st.lists(node_ids, min_size=1, max_size=8)
reasons = st.sampled_from([END_RESET, END_DANGLING])


@st.composite
def store_scripts(draw):
    """A sequence of add / replace_suffix / rebuild operations."""
    script = []
    num_segments = 0
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 or num_segments == 0:
            script.append(("add", draw(segment_nodes), draw(reasons)))
            num_segments += 1
        elif choice == 1:
            script.append(
                (
                    "replace",
                    draw(st.integers(min_value=0, max_value=num_segments - 1)),
                    draw(st.floats(min_value=0.0, max_value=0.999)),
                    draw(segment_nodes),
                    draw(reasons),
                )
            )
        else:
            script.append(
                (
                    "rebuild",
                    draw(st.integers(min_value=0, max_value=num_segments - 1)),
                    draw(segment_nodes),
                    draw(reasons),
                )
            )
    return script


@given(store_scripts(), st.booleans())
@settings(max_examples=300, deadline=None)
def test_index_survives_arbitrary_edits(script, track_sides):
    store = WalkStore(NODES, track_sides=track_sides)
    for op in script:
        if op[0] == "add":
            _, nodes, reason = op
            parity = len(nodes) % 2 if track_sides else 0
            store.add_segment(WalkSegment(list(nodes), reason, parity_offset=parity))
        elif op[0] == "replace":
            _, sid, frac, suffix, reason = op
            segment = store.get(sid)
            keep_until = int(frac * len(segment.nodes))
            store.replace_suffix(sid, keep_until, list(suffix), reason)
        else:
            _, sid, nodes, reason = op
            segment = store.get(sid)
            store.rebuild_segment(sid, [segment.source, *nodes], reason)
    # the one invariant that matters: counters == recomputation from scratch
    store.check_invariants()


@given(store_scripts())
@settings(max_examples=150, deadline=None)
def test_totals_match_segment_lengths(script):
    store = WalkStore(NODES)
    for op in script:
        if op[0] == "add":
            _, nodes, reason = op
            store.add_segment(WalkSegment(list(nodes), reason))
        elif op[0] == "replace":
            _, sid, frac, suffix, reason = op
            segment = store.get(sid)
            store.replace_suffix(
                sid, int(frac * len(segment.nodes)), list(suffix), reason
            )
        else:
            _, sid, nodes, reason = op
            store.rebuild_segment(sid, [store.get(sid).source, *nodes], reason)
    assert store.total_visits == sum(
        len(seg.nodes) for _, seg in store.iter_segments()
    )
    assert store.visit_count_array().sum() == store.total_visits
    # every segment is findable through the index at every node it visits
    for sid, seg in store.iter_segments():
        for node in set(seg.nodes):
            assert sid in store.visits_of(node)
