"""Walk segments, the walk store, and scalar walk simulation.

A *walk segment* ``[x₀, …, x_k]`` (paper §2.1) is one random-surfer session:
steps were taken at ``x₀ … x_{k−1}`` and the segment ended at ``x_k`` —
either because the ε-coin came up "reset" (:data:`END_RESET`) or because
``x_k`` had no out-edges after the coin came up "continue"
(:data:`END_DANGLING`; the pending step resumes if ``x_k`` ever gains an
out-edge).  These semantics are normative — see DESIGN.md §5.

:class:`WalkIndex` is the storage-engine protocol (DESIGN.md §6): the
contract every walk store implements — segments plus the inverted *visit
index* the incremental algorithms live on:

* ``X(v)`` — total visits to ``v`` over all segments (the paper's ``X_v``),
* ``W(v)`` — number of distinct segments visiting ``v`` (the paper's
  counter used in the activation probability ``1 − (1 − 1/d(v))^{W(v)}``),
* ``visits_of(v)`` — which segments visit ``v`` and how often, so an edge
  arrival touches only the segments that can possibly need a reroute.

Two implementations exist: :class:`WalkStore` here (one Python object per
segment, per-node dict visit index — the reference implementation) and
:class:`repro.core.columnar.ColumnarWalkStore` (one flat int64 node arena
plus CSR-style index arrays — the production default).  Both produce
bit-identical algorithm behavior under the same RNG because every
enumeration the engines draw randomness over is deterministically ordered:
``segment_ids_visiting`` ascending by segment id, ``segments_starting_at``
in insertion order, ``iter_segments`` ascending by id.

SALSA reuses the same stores with ``track_sides=True``: each segment
carries a ``parity_offset`` and position ``p`` of a segment counts toward
side ``(p + parity_offset) % 2`` (0 = hub visit, 1 = authority visit).
"""

from __future__ import annotations

import sys
from typing import Iterator, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import WalkStateError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "END_RESET",
    "END_DANGLING",
    "WalkIndex",
    "WalkSegment",
    "WalkStore",
    "simulate_reset_walk",
    "default_max_steps",
]

#: Segment ended because the ε-coin came up "reset".
END_RESET = 0
#: Segment ended at a node with no out-edges, with "continue" already decided.
END_DANGLING = 1

SIDE_HUB = 0
SIDE_AUTHORITY = 1


def default_max_steps(reset_probability: float) -> int:
    """Safety cap on segment length (P(exceed) < 1e-40 for sane ε)."""
    return max(1000, int(50.0 / reset_probability))


class WalkSegment:
    """One stored random-walk session."""

    __slots__ = ("nodes", "end_reason", "parity_offset")

    def __init__(
        self, nodes: list[int], end_reason: int, parity_offset: int = 0
    ) -> None:
        if not nodes:
            raise WalkStateError("a walk segment must contain at least its source")
        if end_reason not in (END_RESET, END_DANGLING):
            raise WalkStateError(f"unknown end_reason {end_reason!r}")
        self.nodes = nodes
        self.end_reason = end_reason
        self.parity_offset = parity_offset

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def last(self) -> int:
        return self.nodes[-1]

    def __len__(self) -> int:
        return len(self.nodes)

    def step_positions_at(self, node: int) -> list[int]:
        """Positions where this segment *took a step* out of ``node``.

        The final position is excluded: no step was taken there (the walk
        reset or is dangling-pending).
        """
        return [
            position
            for position, visited in enumerate(self.nodes[:-1])
            if visited == node
        ]

    def side_of(self, position: int) -> int:
        """Hub/authority side of ``position`` (SALSA bookkeeping)."""
        return (position + self.parity_offset) % 2

    def __repr__(self) -> str:
        reason = "RESET" if self.end_reason == END_RESET else "DANGLING"
        return f"WalkSegment({self.nodes!r}, {reason})"


@runtime_checkable
class WalkIndex(Protocol):
    """The storage-engine contract for walk segments (DESIGN.md §6).

    Everything the incremental engines, the query layers, persistence, and
    the serving stack consume is on this protocol; code written against it
    runs unchanged on the object-backed :class:`WalkStore` and the
    arena-backed :class:`repro.core.columnar.ColumnarWalkStore`.

    Determinism contract (normative): ``segment_ids_visiting`` returns ids
    ascending, ``segments_starting_at`` returns ids in insertion order,
    and ``iter_segments`` yields ids ascending — so any RNG stream drawn
    while iterating these enumerations is identical across backends.

    Mutations go through :meth:`add_segment`, :meth:`replace_suffix`, and
    :meth:`rebuild_segment` only; :meth:`get` may return a *materialized
    copy* (the columnar backend does), so callers must never mutate a
    returned :class:`WalkSegment` in place.
    """

    track_sides: bool
    total_visits: int

    # -- capacity ------------------------------------------------------
    @property
    def num_nodes(self) -> int: ...

    @property
    def num_segments(self) -> int: ...

    def ensure_node(self, node: int) -> None: ...

    # -- segment lifecycle ---------------------------------------------
    def add_segment(self, segment: "WalkSegment") -> int: ...

    def bulk_add_segments(
        self,
        segments: Sequence[Sequence[int]],
        end_reasons: Sequence[int],
        parity_offset: "int | Sequence[int]" = 0,
    ) -> None: ...

    def get(self, segment_id: int) -> "WalkSegment": ...

    def replace_suffix(
        self,
        segment_id: int,
        keep_until: int,
        new_suffix: list[int],
        end_reason: int,
    ) -> None: ...

    def rebuild_segment(
        self, segment_id: int, nodes: list[int], end_reason: int
    ) -> None: ...

    def apply_segment_updates(
        self, updates: Sequence[tuple[int, int, list[int], int]]
    ) -> None: ...

    # -- per-segment columns (cheap, no node materialization) ----------
    def segment_length(self, segment_id: int) -> int: ...

    def segment_view(self, segment_id: int) -> np.ndarray: ...

    def segment_nodes(self, segment_id: int) -> list[int]: ...

    def end_reason_of(self, segment_id: int) -> int: ...

    def parity_of(self, segment_id: int) -> int: ...

    def source_of(self, segment_id: int) -> int: ...

    # -- queries -------------------------------------------------------
    def visits_of(self, node: int) -> dict[int, int]: ...

    def segment_ids_visiting(self, node: int) -> list[int]: ...

    def segments_starting_at(self, node: int) -> list[int]: ...

    def segment_views_starting_at(self, node: int) -> list[np.ndarray]: ...

    def visit_count(self, node: int) -> int: ...

    def distinct_segment_count(self, node: int) -> int: ...

    def side_visit_count(self, node: int, side: int) -> int: ...

    def visit_count_array(self) -> np.ndarray: ...

    def side_visit_count_array(self, side: int) -> np.ndarray: ...

    def iter_segments(self) -> Iterator[tuple[int, "WalkSegment"]]: ...

    # -- accounting / verification -------------------------------------
    def memory_bytes(self) -> int: ...

    def memory_stats(self) -> dict: ...

    def check_invariants(self) -> None: ...


class WalkStore:
    """All stored segments plus the inverted visit index and counters.

    The object-backed reference implementation of :class:`WalkIndex`: one
    :class:`WalkSegment` per segment, one ``dict[segment_id, count]`` per
    node as the visit index.  Simple and easy to audit; the arena-backed
    :class:`repro.core.columnar.ColumnarWalkStore` is the memory- and
    cache-efficient production default.
    """

    def __init__(self, num_nodes: int = 0, *, track_sides: bool = False) -> None:
        self.segments: list[Optional[WalkSegment]] = []
        self.segments_of: list[list[int]] = [[] for _ in range(num_nodes)]
        # visit index: node -> {segment id -> number of visits}
        self._visits: list[dict[int, int]] = [{} for _ in range(num_nodes)]
        self._visit_count: list[int] = [0] * num_nodes
        self.track_sides = track_sides
        self._side_count: list[list[int]] = (
            [[0] * num_nodes, [0] * num_nodes] if track_sides else [[], []]
        )
        self.total_visits = 0

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._visits)

    @property
    def num_segments(self) -> int:
        return sum(1 for segment in self.segments if segment is not None)

    def ensure_node(self, node: int) -> None:
        while node >= self.num_nodes:
            self.segments_of.append([])
            self._visits.append({})
            self._visit_count.append(0)
            if self.track_sides:
                self._side_count[0].append(0)
                self._side_count[1].append(0)

    # ------------------------------------------------------------------
    # Index maintenance primitives
    # ------------------------------------------------------------------

    def _index_range(
        self, segment_id: int, segment: WalkSegment, start: int, sign: int
    ) -> None:
        """Add (+1) or remove (−1) index entries for positions ≥ ``start``."""
        visits = self._visits
        count = self._visit_count
        for position in range(start, len(segment.nodes)):
            node = segment.nodes[position]
            bucket = visits[node]
            updated = bucket.get(segment_id, 0) + sign
            if updated:
                bucket[segment_id] = updated
            else:
                del bucket[segment_id]
            count[node] += sign
            if self.track_sides:
                self._side_count[segment.side_of(position)][node] += sign
        self.total_visits += sign * (len(segment.nodes) - start)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def add_segment(self, segment: WalkSegment) -> int:
        """Register a fresh segment; returns its id."""
        self.ensure_node(max(segment.nodes))
        segment_id = len(self.segments)
        self.segments.append(segment)
        self.segments_of[segment.source].append(segment_id)
        self._index_range(segment_id, segment, 0, +1)
        return segment_id

    def bulk_add_segments(
        self,
        segments: Sequence[Sequence[int]],
        end_reasons: Sequence[int],
        parity_offset: "int | Sequence[int]" = 0,
    ) -> None:
        """Register many fresh segments at once (ids assigned in order).

        ``parity_offset`` may be a scalar applied to every segment or one
        value per segment (SALSA's mixed hub/authority bulk build).
        """
        count = len(segments)
        if len(end_reasons) != count:
            raise WalkStateError(
                f"{count} segments but {len(end_reasons)} end reasons"
            )
        if isinstance(parity_offset, int):
            parities: Sequence[int] = [parity_offset] * count
        else:
            parities = list(parity_offset)
            if len(parities) != count:
                raise WalkStateError(
                    f"{count} segments but {len(parities)} parity offsets"
                )
        for nodes, reason, parity in zip(segments, end_reasons, parities):
            self.add_segment(
                WalkSegment(list(nodes), int(reason), parity_offset=int(parity))
            )

    def get(self, segment_id: int) -> WalkSegment:
        segment = self.segments[segment_id]
        if segment is None:
            raise WalkStateError(f"segment {segment_id} has been removed")
        return segment

    def replace_suffix(
        self,
        segment_id: int,
        keep_until: int,
        new_suffix: list[int],
        end_reason: int,
    ) -> None:
        """Rewrite a segment as ``nodes[:keep_until+1] + new_suffix``.

        ``keep_until`` is the last preserved position.  The visit index and
        all counters are updated incrementally — only the changed suffix is
        touched, which is what makes Theorem 4's accounting real.
        """
        segment = self.get(segment_id)
        if not 0 <= keep_until < len(segment.nodes):
            raise WalkStateError(
                f"keep_until={keep_until} out of range for segment of length "
                f"{len(segment.nodes)}"
            )
        if new_suffix:
            self.ensure_node(max(new_suffix))
        self._index_range(segment_id, segment, keep_until + 1, -1)
        del segment.nodes[keep_until + 1 :]
        segment.nodes.extend(new_suffix)
        segment.end_reason = end_reason
        self._index_range(segment_id, segment, keep_until + 1, +1)

    def rebuild_segment(
        self, segment_id: int, nodes: list[int], end_reason: int
    ) -> None:
        """Replace a segment wholesale (resimulate-from-source policy)."""
        segment = self.get(segment_id)
        if nodes[0] != segment.source:
            raise WalkStateError(
                f"rebuilt segment must keep source {segment.source}, got {nodes[0]}"
            )
        self.ensure_node(max(nodes))
        self._index_range(segment_id, segment, 0, -1)
        segment.nodes = list(nodes)
        segment.end_reason = end_reason
        self._index_range(segment_id, segment, 0, +1)

    def apply_segment_updates(
        self, updates: Sequence[tuple[int, int, list[int], int]]
    ) -> None:
        """Apply many ``(segment_id, keep_until, tail, end_reason)`` rewrites.

        ``keep_until == -1`` selects :meth:`rebuild_segment` (the tail
        includes the source); anything else :meth:`replace_suffix`.  The
        columnar backend overlaps this with a vectorized index rebuild.
        """
        for segment_id, keep_until, tail, end_reason in updates:
            if keep_until < 0:
                self.rebuild_segment(segment_id, tail, end_reason)
            else:
                self.replace_suffix(segment_id, keep_until, tail, end_reason)

    # ------------------------------------------------------------------
    # Per-segment columns (protocol accessors)
    # ------------------------------------------------------------------

    def segment_length(self, segment_id: int) -> int:
        """Length of a segment without materializing its nodes."""
        return len(self.get(segment_id).nodes)

    def segment_view(self, segment_id: int) -> np.ndarray:
        """Segment nodes as an int64 array (treat as read-only)."""
        return np.asarray(self.get(segment_id).nodes, dtype=np.int64)

    def segment_nodes(self, segment_id: int) -> list[int]:
        """A fresh list of the segment's nodes (caller may consume it)."""
        return list(self.get(segment_id).nodes)

    def end_reason_of(self, segment_id: int) -> int:
        return self.get(segment_id).end_reason

    def parity_of(self, segment_id: int) -> int:
        return self.get(segment_id).parity_offset

    def source_of(self, segment_id: int) -> int:
        return self.get(segment_id).source

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def visits_of(self, node: int) -> dict[int, int]:
        """Mapping ``segment id -> visit count`` for segments visiting ``node``."""
        if node >= self.num_nodes:
            return {}
        return dict(self._visits[node])

    def segment_ids_visiting(self, node: int) -> list[int]:
        """Ids of segments visiting ``node``, ascending (normative order).

        The incremental engines flip coins while iterating this list, so
        its order is part of the determinism contract: sorted ids make the
        RNG stream identical across :class:`WalkIndex` backends.
        """
        if node >= self.num_nodes:
            return []
        return sorted(self._visits[node])

    def segments_starting_at(self, node: int) -> list[int]:
        """Ids of segments whose source is ``node``, in insertion order."""
        if node >= self.num_nodes:
            return []
        return list(self.segments_of[node])

    def segment_views_starting_at(self, node: int) -> list[np.ndarray]:
        """Node arrays of ``node``'s segments, in insertion order.

        The bulk-lookup primitive of the multi-seed query kernel
        (:mod:`repro.core.query_kernel`): one call per node instead of one
        ``segment_nodes`` materialization per segment per walk.  The object
        store has no arena, so these are fresh arrays; the columnar
        backends return zero-copy views valid until the next mutation.
        Treat the result as read-only either way.
        """
        if node >= self.num_nodes:
            return []
        return [
            np.asarray(self.get(segment_id).nodes, dtype=np.int64)
            for segment_id in self.segments_of[node]
        ]

    def visit_count(self, node: int) -> int:
        """``X(v)``: total visits to ``node`` across all segments."""
        if node >= self.num_nodes:
            return 0
        return self._visit_count[node]

    def distinct_segment_count(self, node: int) -> int:
        """``W(v)``: number of distinct segments visiting ``node``."""
        if node >= self.num_nodes:
            return 0
        return len(self._visits[node])

    def side_visit_count(self, node: int, side: int) -> int:
        """Visits to ``node`` on ``side`` (0 = hub, 1 = authority)."""
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        if node >= self.num_nodes:
            return 0
        return self._side_count[side][node]

    def visit_count_array(self) -> np.ndarray:
        return np.asarray(self._visit_count, dtype=np.int64)

    def side_visit_count_array(self, side: int) -> np.ndarray:
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        return np.asarray(self._side_count[side], dtype=np.int64)

    def iter_segments(self) -> Iterator[tuple[int, WalkSegment]]:
        for segment_id, segment in enumerate(self.segments):
            if segment is not None:
                yield segment_id, segment

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Estimated resident bytes of segments + visit index.

        CPython object sizes are measured with :func:`sys.getsizeof` for
        every container; each stored ``int`` *reference* is billed the
        28 bytes of a fresh small-int object.  That slightly overcounts
        interned ids and undercounts dict internals, but it tracks the
        real footprint closely enough to compare backends (see
        ``benchmarks/bench_memory.py``).
        """
        int_bytes = 28
        total = (
            sys.getsizeof(self.segments)
            + sys.getsizeof(self.segments_of)
            + sys.getsizeof(self._visits)
            + sys.getsizeof(self._visit_count)
            + int_bytes * len(self._visit_count)
        )
        for segment in self.segments:
            if segment is None:
                continue
            total += (
                sys.getsizeof(segment)
                + sys.getsizeof(segment.nodes)
                + int_bytes * len(segment.nodes)
            )
        for owned in self.segments_of:
            total += sys.getsizeof(owned) + int_bytes * len(owned)
        for bucket in self._visits:
            total += sys.getsizeof(bucket) + 2 * int_bytes * len(bucket)
        if self.track_sides:
            for side in self._side_count:
                total += sys.getsizeof(side) + int_bytes * len(side)
        return total

    def memory_stats(self) -> dict:
        """Footprint breakdown (the object store has no arena slack)."""
        return {
            "bytes": self.memory_bytes(),
            "arena_utilization": 1.0,
            "index_utilization": 1.0,
        }

    # ------------------------------------------------------------------
    # Invariant checking (tests and failure injection)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Recompute the index from scratch and compare (O(total visits)).

        Raises :class:`WalkStateError` on any inconsistency.  Used heavily
        by tests; cheap enough to run on moderate stores.
        """
        expected_visits: list[dict[int, int]] = [{} for _ in range(self.num_nodes)]
        expected_count = [0] * self.num_nodes
        expected_sides = [[0] * self.num_nodes, [0] * self.num_nodes]
        expected_total = 0
        for segment_id, segment in self.iter_segments():
            for position, node in enumerate(segment.nodes):
                bucket = expected_visits[node]
                bucket[segment_id] = bucket.get(segment_id, 0) + 1
                expected_count[node] += 1
                expected_total += 1
                if self.track_sides:
                    expected_sides[segment.side_of(position)][node] += 1
        if expected_count != self._visit_count:
            raise WalkStateError("visit_count diverged from segments")
        if expected_visits != self._visits:
            raise WalkStateError("visit index diverged from segments")
        if expected_total != self.total_visits:
            raise WalkStateError("total_visits diverged from segments")
        if self.track_sides and expected_sides != self._side_count:
            raise WalkStateError("side counters diverged from segments")


def simulate_reset_walk(
    graph: DynamicDiGraph,
    start: int,
    reset_probability: float,
    rng: RngLike = None,
    *,
    max_steps: Optional[int] = None,
) -> WalkSegment:
    """Scalar reset walk from ``start`` (coin flipped at every node, start
    included).  Used for reroute continuations; bulk initialization goes
    through :func:`repro.graph.csr.batch_reset_walks` instead.
    """
    generator = ensure_rng(rng)
    if max_steps is None:
        max_steps = default_max_steps(reset_probability)
    nodes = [start]
    current = start
    out_view = graph.out_view
    integers = generator.integers
    random = generator.random
    for _ in range(max_steps):
        if random() < reset_probability:
            return WalkSegment(nodes, END_RESET)
        adjacency = out_view(current)
        if not adjacency:
            return WalkSegment(nodes, END_DANGLING)
        current = adjacency[int(integers(len(adjacency)))]
        nodes.append(current)
    return WalkSegment(nodes, END_RESET)  # safety cap; probability ≈ 0
