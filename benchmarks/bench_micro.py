"""Microbenchmarks of the hot paths (not paper artifacts, but the numbers
an adopter asks first): store initialization throughput, per-arrival
update latency, deletion latency, stitched-walk step rate, fetch cost.

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): smaller warm store,
shorter walks.  The assertions here are structural, so they hold at any
scale.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.salsa import IncrementalSALSA
from repro.graph.csr import batch_reset_walks
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

WALK_LENGTH = 5_000 if FAST_MODE else 20_000


@pytest.fixture(scope="module")
def graph():
    if FAST_MODE:
        return twitter_like_graph(1000, 12_000, rng=42)
    return twitter_like_graph(5000, 60_000, rng=42)


@pytest.fixture(scope="module")
def engine(graph):
    return IncrementalPageRank.from_graph(
        graph.copy(), reset_probability=0.2, walks_per_node=10, rng=7
    )


def test_store_initialization(benchmark, graph):
    """Vectorized simulation of nR = 50k walk segments."""

    def build():
        return IncrementalPageRank.from_graph(
            graph.copy(), reset_probability=0.2, walks_per_node=10, rng=3
        )

    built = benchmark.pedantic(build, rounds=3, iterations=1)
    assert built.walks.num_segments == graph.num_nodes * 10


def test_batch_walker_throughput(benchmark, graph):
    csr = graph.to_csr()
    starts = np.arange(graph.num_nodes, dtype=np.int64)

    result = benchmark(lambda: batch_reset_walks(csr, starts, 0.2, rng=5))
    assert len(result.segments) == graph.num_nodes


def test_edge_arrival_latency(benchmark, engine):
    """Per-arrival maintenance on a warm 60k-edge store."""
    rng = np.random.default_rng(11)
    n = engine.num_nodes

    def arrive():
        while True:
            u, v = int(rng.integers(n)), int(rng.integers(n))
            if u != v and not engine.graph.has_edge(u, v):
                break
        report = engine.add_edge(u, v)
        return report

    report = benchmark(arrive)
    assert report.operation == "add"


def test_edge_deletion_latency(benchmark, engine):
    rng = np.random.default_rng(13)

    def delete():
        edge = engine.graph.random_edge(rng)
        return engine.remove_edge(*edge)

    report = benchmark(delete)
    assert report.operation == "remove"


def test_pagerank_read_latency(benchmark, engine):
    """Reading one node's always-fresh estimate is a counter lookup."""
    score = benchmark(lambda: engine.pagerank_of(42))
    assert score >= 0.0


def test_stitched_walk_throughput(benchmark, engine):
    query = PersonalizedPageRank(engine.pagerank_store, rng=17)

    walk = benchmark.pedantic(
        lambda: query.stitched_walk(42, WALK_LENGTH), rounds=3, iterations=1
    )
    assert walk.length >= WALK_LENGTH


def test_salsa_initialization(benchmark, graph):
    def build():
        return IncrementalSALSA.from_graph(
            graph.copy(), reset_probability=0.2, walks_per_node=5, rng=19
        )

    built = benchmark.pedantic(build, rounds=1, iterations=1)
    assert built.walks.num_segments == graph.num_nodes * 10  # R fwd + R bwd
