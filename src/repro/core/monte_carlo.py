"""Static Monte Carlo PageRank (§2.1) — the building block everything reuses.

``R`` reset walks are started at every node; the PageRank of ``v`` is
estimated as ``π̃_v = X_v / (nR/ε)`` where ``X_v`` counts visits to ``v``
over all stored segments.  Theorem 1: ``π̃_v`` is sharply concentrated
around ``π_v``; the estimate is usable even at ``R = 1``.

Two normalizations are offered:

* ``"paper"`` — divide by ``nR/ε``, the *expected* total visit count.  This
  matches the fixed point of the paper's Equation (1) exactly (which does
  not redistribute dangling mass, so the estimated vector sums to ≤ 1).
* ``"empirical"`` — divide by the realized total visit count, giving a
  proper probability vector (useful when dangling nodes are plentiful).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.walks import WalkIndex
from repro.errors import ConfigurationError
from repro.graph.csr import batch_reset_walks
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["MonteCarloPageRank", "build_walk_store", "scores_from_store"]

PAPER = "paper"
EMPIRICAL = "empirical"


def build_walk_store(
    graph: DynamicDiGraph,
    walks_per_node: int,
    reset_probability: float,
    rng: RngLike = None,
    *,
    track_sides: bool = False,
    backend: str = "object",
) -> WalkIndex:
    """Simulate ``R`` reset walks per node (vectorized) into a fresh store.

    ``backend`` picks the :class:`WalkIndex` implementation: ``"object"``
    (the reference :class:`WalkStore`, default here) or ``"columnar"``
    (:class:`repro.core.columnar.ColumnarWalkStore`, what the incremental
    engines build by default).
    """
    from repro.core.columnar import make_walk_store

    if walks_per_node <= 0:
        raise ConfigurationError(
            f"walks_per_node must be positive, got {walks_per_node}"
        )
    generator = ensure_rng(rng)
    store = make_walk_store(
        graph.num_nodes, track_sides=track_sides, backend=backend
    )
    if graph.num_nodes == 0:
        return store
    csr = graph.to_csr("out")
    starts = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), walks_per_node)
    result = batch_reset_walks(csr, starts, reset_probability, generator)
    store.bulk_add_segments(result.segments, result.end_reasons)
    return store


def scores_from_store(
    store: WalkIndex,
    num_nodes: int,
    walks_per_node: int,
    reset_probability: float,
    normalization: str = PAPER,
) -> np.ndarray:
    """Turn a store's visit counters into PageRank estimates."""
    counts = store.visit_count_array().astype(np.float64)
    if len(counts) < num_nodes:
        counts = np.pad(counts, (0, num_nodes - len(counts)))
    if normalization == PAPER:
        denominator = num_nodes * walks_per_node / reset_probability
    elif normalization == EMPIRICAL:
        denominator = max(store.total_visits, 1)
    else:
        raise ConfigurationError(
            f"normalization must be 'paper' or 'empirical', got {normalization!r}"
        )
    return counts / denominator


class MonteCarloPageRank:
    """Build-once Monte Carlo estimator (the paper's §2.1 baseline)."""

    def __init__(
        self,
        graph: DynamicDiGraph,
        *,
        reset_probability: float = 0.2,
        walks_per_node: int = 10,
        rng: RngLike = None,
        store_backend: str = "object",
    ) -> None:
        if not 0.0 < reset_probability <= 1.0:
            raise ConfigurationError(
                f"reset_probability must be in (0, 1], got {reset_probability}"
            )
        self.graph = graph
        self.reset_probability = reset_probability
        self.walks_per_node = walks_per_node
        self.store_backend = store_backend
        self._rng = ensure_rng(rng)
        self._store: Optional[WalkIndex] = None

    def build(self) -> "MonteCarloPageRank":
        """Simulate all walks; idempotent (rebuilds from scratch)."""
        self._store = build_walk_store(
            self.graph,
            self.walks_per_node,
            self.reset_probability,
            self._rng,
            backend=self.store_backend,
        )
        return self

    @property
    def store(self) -> WalkIndex:
        if self._store is None:
            self.build()
        assert self._store is not None
        return self._store

    def scores(self, normalization: str = PAPER) -> np.ndarray:
        """Estimated PageRank of every node."""
        return scores_from_store(
            self.store,
            self.graph.num_nodes,
            self.walks_per_node,
            self.reset_probability,
            normalization,
        )

    def score_of(self, node: int, normalization: str = PAPER) -> float:
        """Estimated PageRank of one node in O(1) (plus normalization)."""
        count = self.store.visit_count(node)
        if normalization == PAPER:
            return count / (
                self.graph.num_nodes * self.walks_per_node / self.reset_probability
            )
        if normalization == EMPIRICAL:
            return count / max(self.store.total_visits, 1)
        raise ConfigurationError(f"unknown normalization {normalization!r}")

    def top(self, k: int, normalization: str = PAPER) -> list[tuple[int, float]]:
        """The ``k`` highest-scoring nodes as ``(node, score)`` pairs.

        Ties are broken by node id via the shared
        :func:`repro.core.topk.top_k_dense` rule — a bare
        ``argpartition`` leaks its internal order into equal scores,
        which made tied rankings flap across numpy versions and runs.
        """
        from repro.core.topk import top_k_dense

        return top_k_dense(self.scores(normalization), k)

    def total_work_estimate(self) -> int:
        """Walk steps simulated during :meth:`build` (≈ nR/ε)."""
        return self.store.total_visits
