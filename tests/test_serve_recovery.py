"""WAL durability + crash recovery: the coordinator restart differential.

The load-bearing claim (DESIGN.md §15): for a crash at *any* batch
boundary — torn final record included — ``recover_engine(snapshot, wal)``
rebuilds the exact pre-crash engine: bit-identical PageRank scores,
bit-identical internal RNG state (so post-recovery mutations continue the
same stream), and bit-identical served answers for PPR / top-k /
PPR-to-target queries.  The never-crashed engine itself is the oracle:
we snapshot, attach a WAL, keep mutating, "crash" (abandon the live
object), recover from disk, and compare.

The WAL format tests (checksums, torn-tail scan, reopen truncation) and
the publish-truncates-log integration ride along.  Everything here is
single-process and fast except the frontend integration test.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.errors import ConfigurationError
from repro.graph.arrival import ArrivalEvent
from repro.serve import (
    MultiProcessFrontend,
    QueryEngine,
    QueryRequest,
    WorkerConfig,
    WriteAheadLog,
    read_wal,
    recover_engine,
)
from repro.store.persistence import save_engine, save_shared_snapshot
from repro.workloads.twitter_like import twitter_like_graph

NUM_NODES = 32
NUM_EDGES = 140
BACKENDS = ["columnar", "sharded:3"]


def _fresh_engine(backend: str = "columnar"):
    """A fully initialized engine (real walk arenas, chosen backend)."""
    return IncrementalPageRank.from_graph(
        twitter_like_graph(NUM_NODES, NUM_EDGES, rng=5),
        walks_per_node=3,
        rng=np.random.default_rng(0),
        store_backend=backend,
    )


#: Post-snapshot mutation batches the WAL must carry (mixed add/remove;
#: the removes target edges the seed graph is known to contain).
def _wal_batches():
    seed_edges = set(twitter_like_graph(NUM_NODES, NUM_EDGES, rng=5).edge_list())
    extra = [
        (u, v)
        for u in range(NUM_NODES)
        for v in range(NUM_NODES)
        if u != v and (u, v) not in seed_edges
    ]
    removable = sorted(seed_edges)
    return [
        [ArrivalEvent("add", *extra[0]), ArrivalEvent("add", *extra[1])],
        [ArrivalEvent("remove", *removable[0]), ArrivalEvent("add", *extra[2])],
        [ArrivalEvent("add", *extra[3]), ArrivalEvent("remove", *removable[1])],
    ]


def _query_wave():
    return (
        [QueryRequest(kind="topk", seed=s, k=5) for s in range(8)]
        + [QueryRequest(kind="ppr", seed=s, length=60) for s in range(4)]
        + [
            QueryRequest(
                kind="pprt", seed=s, target=(s + 7) % NUM_NODES,
                delta=0.05, length=40,
            )
            for s in range(3)
        ]
    )


def _served_answers(engine):
    service = QueryEngine(engine, rng_seed=9)
    try:
        return service.run_batch(_query_wave())
    finally:
        service.detach()


def _assert_answers_identical(got, expected):
    assert len(got) == len(expected)
    for answer, reference in zip(got, expected):
        if hasattr(reference, "ranking"):
            assert answer.ranking == reference.ranking
        elif hasattr(reference, "estimate"):
            assert answer.estimate == reference.estimate
            assert answer.above_delta == reference.above_delta
        else:
            assert answer.visit_counts == reference.visit_counts


# ----------------------------------------------------------------------
# WAL format
# ----------------------------------------------------------------------


class TestWalFormat:
    def test_roundtrip_records_and_rng_state(self, tmp_path):
        engine = _fresh_engine()
        path = tmp_path / "updates.wal"
        state = engine.rng_state()
        with WriteAheadLog(path) as wal:
            wal.append("batch", [("add", 1, 2), ("remove", 3, 4)], state)
            wal.append("add", [("add", 5, 6)], state)
            assert wal.records == 2
        result = read_wal(path)
        assert not result.torn
        assert [record.op for record in result.records] == ["batch", "add"]
        assert result.records[0].events == (("add", 1, 2), ("remove", 3, 4))
        # the rng state survives the JSON trip exactly
        assert result.records[0].rng_state == state

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_wal(tmp_path / "absent.wal")
        assert result.records == () and not result.torn

    def test_corrupt_payload_detected_by_checksum(self, tmp_path):
        engine = _fresh_engine()
        path = tmp_path / "updates.wal"
        with WriteAheadLog(path) as wal:
            wal.append("add", [("add", 1, 2)], engine.rng_state())
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a payload byte; the CRC must catch it
        path.write_bytes(bytes(raw))
        result = read_wal(path)
        assert result.records == ()
        assert result.torn and result.torn_bytes == len(raw)

    def test_torn_tail_reported_and_truncated_on_reopen(self, tmp_path):
        engine = _fresh_engine()
        path = tmp_path / "updates.wal"
        with WriteAheadLog(path) as wal:
            wal.append("add", [("add", 1, 2)], engine.rng_state())
            wal.append("add", [("add", 2, 3)], engine.rng_state())
            intact = wal.size_bytes
        with open(path, "ab") as fh:  # a crash mid-append: header + half payload
            fh.write(struct.pack("<4sII", b"WREC", 64, 0xDEADBEEF) + b"half")
        result = read_wal(path)
        assert len(result.records) == 2
        assert result.torn and result.valid_bytes == intact
        with WriteAheadLog(path) as wal:  # reopen repairs the tail
            assert wal.records == 2
        assert path.stat().st_size == intact
        assert not read_wal(path).torn

    def test_truncate_resets_the_log(self, tmp_path):
        engine = _fresh_engine()
        path = tmp_path / "updates.wal"
        with WriteAheadLog(path) as wal:
            wal.append("add", [("add", 1, 2)], engine.rng_state())
            wal.truncate()
            assert wal.records == 0 and wal.size_bytes == 0
            wal.append("add", [("add", 2, 3)], engine.rng_state())
        assert len(read_wal(path).records) == 1


# ----------------------------------------------------------------------
# Crash-recovery differential
# ----------------------------------------------------------------------


class TestRecoveryDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("crash_after", [1, 2, 3])
    def test_bit_identical_at_every_batch_boundary(
        self, tmp_path, backend, crash_after
    ):
        """Snapshot → k WAL'd batches → crash → recover == never-crashed."""
        engine = _fresh_engine(backend)
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        wal_path = tmp_path / "updates.wal"
        wal = WriteAheadLog(wal_path)
        engine.attach_wal(wal)
        for batch in _wal_batches()[:crash_after]:
            engine.apply_batch(batch)
        # crash: the live engine object is abandoned (but kept as oracle)
        wal.close()

        recovered, report = recover_engine(snapshot, wal_path)
        assert report.records_replayed == crash_after
        assert not report.torn_bytes
        assert recovered.pagerank().tobytes() == engine.pagerank().tobytes()
        assert recovered.rng_state() == engine.rng_state()
        assert type(recovered.walks) is type(engine.walks)
        _assert_answers_identical(
            _served_answers(recovered), _served_answers(engine)
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_recovered_engine_continues_the_same_stream(
        self, tmp_path, backend
    ):
        """Post-recovery mutations stay in lockstep with the oracle —
        the restored RNG state is the *live* state, not a lookalike."""
        engine = _fresh_engine(backend)
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        with WriteAheadLog(tmp_path / "updates.wal") as wal:
            engine.attach_wal(wal)
            engine.apply_batch(_wal_batches()[0])
            engine.detach_wal()
        recovered, _ = recover_engine(snapshot, tmp_path / "updates.wal")
        for batch in _wal_batches()[1:]:
            engine.apply_batch(batch)
            recovered.apply_batch(batch)
            assert (
                recovered.pagerank().tobytes() == engine.pagerank().tobytes()
            )

    def test_single_edge_ops_replay_through_their_own_paths(self, tmp_path):
        """add_edge/remove_edge WAL records replay via the same methods —
        a batch-of-one is only *distributionally* identical, so the op
        tag must pin the code path."""
        engine = _fresh_engine()
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        free = [
            (u, v)
            for u in range(NUM_NODES)
            for v in range(NUM_NODES)
            if u != v and not engine.graph.has_edge(u, v)
        ]
        present = sorted(engine.graph.edge_list())[0]
        with WriteAheadLog(tmp_path / "updates.wal") as wal:
            engine.attach_wal(wal)
            engine.add_edge(*free[0])
            engine.remove_edge(*present)
            engine.add_edge(*free[1])
            engine.detach_wal()
        recovered, report = recover_engine(snapshot, tmp_path / "updates.wal")
        assert report.records_replayed == 3
        assert recovered.pagerank().tobytes() == engine.pagerank().tobytes()
        assert recovered.rng_state() == engine.rng_state()

    def test_recover_from_npz_snapshot(self, tmp_path):
        """recover_engine also accepts a save_engine file snapshot."""
        engine = _fresh_engine()
        snapshot = tmp_path / "snap.npz"
        save_engine(engine, snapshot)
        with WriteAheadLog(tmp_path / "updates.wal") as wal:
            engine.attach_wal(wal)
            engine.apply_batch(_wal_batches()[0])
            engine.detach_wal()
        recovered, report = recover_engine(snapshot, tmp_path / "updates.wal")
        assert report.records_replayed == 1
        assert recovered.pagerank().tobytes() == engine.pagerank().tobytes()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_torn_final_record_recovers_the_acknowledged_prefix(
        self, tmp_path, backend
    ):
        """A crash mid-append loses a record whose mutation never returned
        to the caller — the intact prefix IS the acknowledged state."""
        engine = _fresh_engine(backend)
        oracle = _fresh_engine(backend)
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        wal_path = tmp_path / "updates.wal"
        with WriteAheadLog(wal_path) as wal:
            engine.attach_wal(wal)
            batches = _wal_batches()
            for batch in batches[:2]:
                engine.apply_batch(batch)
                oracle.apply_batch(batch)
            engine.detach_wal()
        with open(wal_path, "ab") as fh:  # torn third record
            fh.write(struct.pack("<4sII", b"WREC", 512, 1) + b"\x00" * 40)
        recovered, report = recover_engine(snapshot, wal_path)
        assert report.records_replayed == 2
        assert report.torn_bytes > 0
        assert recovered.pagerank().tobytes() == oracle.pagerank().tobytes()
        assert recovered.rng_state() == oracle.rng_state()

    def test_empty_wal_recovers_the_snapshot_itself(self, tmp_path):
        engine = _fresh_engine()
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        recovered, report = recover_engine(snapshot, tmp_path / "no.wal")
        assert report.records_replayed == 0
        assert recovered.pagerank().tobytes() == engine.pagerank().tobytes()

    def test_wal_metrics_and_replay_counters(self, tmp_path):
        from repro.obs import MetricsRegistry

        engine = _fresh_engine()
        snapshot = tmp_path / "snap"
        save_shared_snapshot(engine, snapshot)
        registry = MetricsRegistry()
        with WriteAheadLog(tmp_path / "updates.wal", registry=registry) as wal:
            engine.attach_wal(wal)
            engine.apply_batch(_wal_batches()[0])
            engine.detach_wal()
        snap = registry.snapshot()
        assert snap["repro_wal_records_total"] == 1.0
        assert snap["repro_wal_bytes_total"] > 0
        recovery_registry = MetricsRegistry()
        recover_engine(
            snapshot, tmp_path / "updates.wal", registry=recovery_registry
        )
        assert (
            recovery_registry.snapshot()["repro_wal_replayed_records_total"]
            == 1.0
        )


# ----------------------------------------------------------------------
# Engine hook + frontend integration
# ----------------------------------------------------------------------


class TestEngineWalHook:
    def test_attach_requires_detach_first(self, tmp_path):
        engine = _fresh_engine()
        with WriteAheadLog(tmp_path / "a.wal") as first:
            engine.attach_wal(first)
            with WriteAheadLog(tmp_path / "b.wal") as second:
                with pytest.raises(ConfigurationError, match="already"):
                    engine.attach_wal(second)
            engine.detach_wal()
        assert engine.wal is None

    def test_mutations_without_wal_write_nothing(self, tmp_path):
        engine = _fresh_engine()
        engine.apply_batch(_wal_batches()[0])  # no WAL attached: no error

    def test_frontend_truncates_wal_on_publish(self, tmp_path):
        """The epoch publish makes the log's contents durable in the
        snapshot, so the frontend truncates it — steady-state WAL size is
        bounded by one publish interval."""
        engine = _fresh_engine()
        wal = WriteAheadLog(tmp_path / "updates.wal")
        frontend = MultiProcessFrontend(
            engine,
            num_workers=1,
            root=tmp_path / "arenas",
            config=WorkerConfig(rng_seed=9),
            wal=wal,
        )
        try:
            engine.apply_batch(_wal_batches()[0])
            assert wal.records == 1  # attach_wal happened in the frontend
            frontend.publish_epoch()
            assert wal.records == 0 and wal.size_bytes == 0
            engine.apply_batch(_wal_batches()[1])
            assert wal.records == 1
            # crash now: recovery = published snapshot + the short tail
            from repro.serve import read_current

            _, directory = read_current(tmp_path / "arenas")
            recovered, report = recover_engine(
                directory, tmp_path / "updates.wal"
            )
            assert report.records_replayed == 1
            assert (
                recovered.pagerank().tobytes() == engine.pagerank().tobytes()
            )
        finally:
            frontend.close()
            wal.close()
        assert engine.wal is None  # close() detached the frontend's WAL
