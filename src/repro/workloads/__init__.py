"""Workloads: synthetic Twitter-like evolution and evaluation protocols."""

from repro.workloads.link_prediction import (
    LinkPredictionCase,
    build_link_prediction_workload,
    evaluate_rankers,
)
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_graph, twitter_like_stream

__all__ = [
    "twitter_like_stream",
    "twitter_like_graph",
    "users_with_friend_count",
    "LinkPredictionCase",
    "build_link_prediction_workload",
    "evaluate_rankers",
]
