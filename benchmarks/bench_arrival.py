"""E-MX + E-F1: arrival-model validation benchmarks (§4.2, Figure 1).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI): shrunken workloads,
scale-calibrated assertions skipped.
"""

from __future__ import annotations

import os

from repro.experiments.exp_arrival import run_fig1, run_mx_validation

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {"num_nodes": 600, "num_edges": 7_200, "rng": 42}
    if FAST_MODE
    else {"num_nodes": 2000, "num_edges": 24_000, "rng": 42}
)


def test_e_mx(benchmark, once):
    result = once(benchmark, run_mx_validation, **PARAMS)
    by_order = {row["arrival order"]: row["mX"] for row in result.rows}
    stream_mx = by_order["stream (random-ish)"]
    hostile_mx = by_order["adversarial (hot sources first)"]
    if not FAST_MODE:
        # the paper's assumption: mX ≈ 1 under random-ish order (Twitter:
        # 0.81; values below 1 only improve the Theorem-4 bound)
        assert 0.4 < stream_mx < 1.5
        # and the statistic discriminates: the hostile prefix inflates mX
        assert hostile_mx > 1.8 * stream_mx
    print()
    print(result.render())


def test_e_f1(benchmark, once):
    result = once(benchmark, run_fig1, **PARAMS)
    gap_row = next(r for r in result.rows if r["degree d"] == "max |gap|")
    if not FAST_MODE:
        # Figure 1: arrival cdf tracks existing cdf; the uniform control
        # doesn't
        assert gap_row["arrival a(d)"] < 0.10
        assert gap_row["uniform control"] > 2 * gap_row["arrival a(d)"]
    print()
    print(result.render())
