"""E-SHARD: partition-parallel batch repair on the sharded walk index.

The ISSUE-4 acceptance bar: the sharded store's fanned-out
``apply_segment_updates`` must improve batch-repair wall-clock with
workers (≥1.5× at 4 workers on the bench workload, asserted on hosts with
≥4 cores — thread scaling is physically impossible on fewer), and a
1-shard store must not regress against the flat columnar engine.

The repair workload is the store-side half of ``apply_batch``: a large
set of ``(segment_id, keep_until, tail, end_reason)`` rewrites whose
tails were already simulated — exactly what the engine hands the store
after its one vectorized coin-flip pass.  Cold-build scaling (thread and
shared-memory process fan-out) is reported alongside.

Set ``REPRO_BENCH_FAST=1`` to shrink to smoke-test scale (CI).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.columnar import ColumnarWalkStore
from repro.core.sharded_walks import ShardedWalkIndex
from repro.graph.csr import batch_reset_walks
from repro.workloads.twitter_like import twitter_like_graph

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

NUM_NODES = 2_000 if FAST_MODE else 20_000
NUM_EDGES = 24_000 if FAST_MODE else 240_000
WALKS_PER_NODE = 4 if FAST_MODE else 8
REPAIR_FRACTION = 0.4
NUM_SHARDS = 4
REPAIR_ROUNDS = 2 if FAST_MODE else 3


def _walk_block(graph) -> tuple:
    """Simulate every node's walks once; reused by all store builds."""
    csr = graph.to_csr("out")
    starts = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), WALKS_PER_NODE
    )
    result = batch_reset_walks(csr, starts, 0.2, np.random.default_rng(7))
    return result.segments, result.end_reasons


def _repair_updates(num_segments: int, graph) -> list[tuple]:
    """A large pre-simulated repair batch (tails already walked)."""
    rng = np.random.default_rng(11)
    csr = graph.to_csr("out")
    chosen = rng.choice(
        num_segments, size=int(num_segments * REPAIR_FRACTION), replace=False
    )
    chosen.sort()
    tails = batch_reset_walks(
        csr,
        rng.integers(0, graph.num_nodes, chosen.size),
        0.2,
        np.random.default_rng(13),
    )
    return [
        (int(segment_id), 0, tail, int(reason))
        for segment_id, tail, reason in zip(
            chosen.tolist(), tails.segments, tails.end_reasons
        )
    ]


def _time_repairs(store, segments, reasons, updates) -> float:
    """Build ``store`` from the shared block, then time the repair rounds."""
    store.bulk_add_segments(segments, reasons)
    started = time.perf_counter()
    for _ in range(REPAIR_ROUNDS):
        store.apply_segment_updates(updates)
    return time.perf_counter() - started


def run_sharded_benchmark() -> dict[str, float]:
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=42)
    segments, reasons = _walk_block(graph)
    num_segments = len(segments)
    updates = _repair_updates(num_segments, graph)
    report: dict[str, float] = {
        "segments": float(num_segments),
        "updates_per_round": float(len(updates)),
        "cpus": float(os.cpu_count() or 1),
    }

    # -- batch repair: flat columnar vs sharded serial vs sharded parallel
    report["repair_columnar"] = _time_repairs(
        ColumnarWalkStore(), segments, reasons, updates
    )
    report["repair_sharded1_serial"] = _time_repairs(
        ShardedWalkIndex(num_shards=1, max_workers=1), segments, reasons, updates
    )
    serial = ShardedWalkIndex(num_shards=NUM_SHARDS, max_workers=1)
    report["repair_sharded_serial"] = _time_repairs(
        serial, segments, reasons, updates
    )
    parallel = ShardedWalkIndex(num_shards=NUM_SHARDS, max_workers=4)
    report["repair_sharded_parallel"] = _time_repairs(
        parallel, segments, reasons, updates
    )
    report["parallel_speedup"] = (
        report["repair_sharded_serial"] / report["repair_sharded_parallel"]
    )
    report["shard1_vs_columnar"] = (
        report["repair_sharded1_serial"] / report["repair_columnar"]
    )

    # results must be identical no matter how the repair was scheduled
    assert np.array_equal(
        serial.visit_count_array(), parallel.visit_count_array()
    )
    report["load_imbalance"] = parallel.load_imbalance()
    parallel.shutdown()

    # -- cold build: serial vs thread fan-out vs process + shared memory
    for label, kwargs in (
        ("build_serial", {"max_workers": 1}),
        ("build_threads", {"max_workers": 4}),
        ("build_process", {"max_workers": 4, "cold_build": "process"}),
    ):
        store = ShardedWalkIndex(num_shards=NUM_SHARDS, **kwargs)
        started = time.perf_counter()
        store.bulk_add_segments(segments, reasons)
        report[label] = time.perf_counter() - started
        assert store.num_segments == num_segments
        store.shutdown()
    return report


def _render(report: dict[str, float]) -> str:
    lines = [f"{'metric':32s} {'value':>12s}"]
    for key, value in report.items():
        lines.append(f"{key:32s} {value:12.4f}")
    return "\n".join(lines)


def test_e_shard_parallel_batch_repair(benchmark, once):
    report = once(benchmark, run_sharded_benchmark)
    print()
    print(_render(report))
    # a 1-shard sharded store must not regress the flat engine badly —
    # routing through the shard layer is bookkeeping, not a rewrite
    assert report["shard1_vs_columnar"] < 1.35
    # the acceptance speedup needs actual cores AND full-size rounds —
    # smoke-scale repairs are milliseconds, where pool overhead and
    # shared-runner noise dominate; there the bar is "no cliff"
    if report["cpus"] >= 4 and not FAST_MODE:
        assert report["parallel_speedup"] >= 1.5
    else:
        assert report["parallel_speedup"] > 0.5
    # shard assignment stays balanced under the Fibonacci hash
    assert report["load_imbalance"] < 1.5
