"""Operation accounting for the storage layer.

The paper's efficiency claims are stated in units of store operations —
walk-segment updates (Theorem 4), database *fetches* (Theorem 8, Figure 6).
:class:`CallStats` is the single counter object threaded through the stores
so experiments can read those units off directly.  :class:`LatencyModel`
optionally converts operation counts into simulated wall-clock time, which
lets the benchmarks report "what this would cost against a remote store"
without any actual network.

When constructed with a :class:`~repro.obs.MetricsRegistry`, every record
is mirrored into the registry counter
``repro_store_operations_total{store=<name>, operation=<op>}`` so the
storage layer shows up in the unified Prometheus exposition.  The mirror
is lifetime-cumulative (Prometheus counters are monotone); a local
:meth:`CallStats.reset` starts a new *epoch* without rewinding it.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Mapping, Optional

from repro.errors import StaleSnapshotError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CallStats", "CallSnapshot", "LatencyModel"]

_STORE_OPS_METRIC = "repro_store_operations_total"


class CallSnapshot(Dict[str, int]):
    """A frozen counter copy stamped with the epoch it was taken in.

    Behaves exactly like the plain dict :meth:`CallStats.snapshot` used to
    return, plus an :attr:`epoch` used by :meth:`CallStats.delta_since` to
    reject snapshots that predate a :meth:`CallStats.reset`.
    """

    __slots__ = ("epoch",)

    def __init__(self, counts: Mapping[str, int], epoch: int) -> None:
        super().__init__(counts)
        self.epoch = epoch


class CallStats:
    """Named operation counters with snapshot/delta support.

    Thread-safe: the serving layer's worker pool bills concurrent reads
    into the same counters.  ``record`` is a lock-protected
    read-modify-write so no operation is ever lost to a race, and
    ``snapshot`` is atomic with respect to in-flight records.  (The lock
    covers the *counters* only — store mutations must still not run
    concurrently with in-flight walks; see :mod:`repro.serve`.)

    ``reset`` is epoch-stamped: a delta against a snapshot taken before
    the reset raises :class:`~repro.errors.StaleSnapshotError` instead of
    silently returning negative counts.
    """

    def __init__(
        self,
        registry: Optional["MetricsRegistry"] = None,
        store: str = "store",
    ) -> None:
        self._counts: Counter[str] = Counter()
        self._lock = threading.Lock()
        self._epoch = 0
        self.registry = registry
        self.store = store
        if registry is not None:
            self._mirror = registry.counter(
                _STORE_OPS_METRIC,
                "Storage-layer operations by store and operation",
                labels=("store", "operation"),
            )
        else:
            self._mirror = None

    @property
    def epoch(self) -> int:
        """The current counting epoch (bumped by every :meth:`reset`)."""
        return self._epoch

    def record(self, operation: str, count: int = 1) -> None:
        """Count ``count`` occurrences of ``operation``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        with self._lock:
            self._counts[operation] += count
        if self._mirror is not None:
            self._mirror.inc(count, store=self.store, operation=operation)

    def count(self, operation: str) -> int:
        return self._counts.get(operation, 0)

    def total(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> CallSnapshot:
        """A frozen, epoch-stamped copy of all counters."""
        with self._lock:
            return CallSnapshot(self._counts, self._epoch)

    def delta_since(self, snapshot: Mapping[str, int]) -> Dict[str, int]:
        """Per-operation growth since a prior :meth:`snapshot`.

        Raises :class:`~repro.errors.StaleSnapshotError` if the snapshot
        was taken before an intervening :meth:`reset` (plain mappings,
        which carry no epoch, skip the check for backward compatibility).
        """
        with self._lock:
            epoch = getattr(snapshot, "epoch", None)
            if epoch is not None and epoch != self._epoch:
                raise StaleSnapshotError(epoch, self._epoch)
            current = dict(self._counts)
        return {
            op: current.get(op, 0) - snapshot.get(op, 0)
            for op in set(current) | set(snapshot)
            if current.get(op, 0) != snapshot.get(op, 0)
        }

    def reset(self) -> None:
        """Zero the counters and start a new epoch.

        The registry mirror (if any) is *not* rewound: Prometheus counters
        are lifetime-monotone, and scrapers handle resets via ``rate()``.
        """
        with self._lock:
            self._counts.clear()
            self._epoch += 1

    def merge(self, other: "CallStats") -> None:
        """Fold another stats object into this one (fleet aggregation)."""
        theirs = other.snapshot()
        with self._lock:
            self._counts.update(theirs)
        if self._mirror is not None:
            for operation, count in theirs.items():
                self._mirror.inc(count, store=self.store, operation=operation)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(sorted(self.snapshot().items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{op}={n}" for op, n in self)
        return f"CallStats({inner})"


@dataclass
class LatencyModel:
    """Convert operation counts into simulated seconds.

    ``per_operation`` maps operation names to seconds per call;
    ``default_latency`` covers everything else.  The defaults model an
    intra-datacenter RPC (~0.5 ms) against a shared-memory store, which is
    the regime the paper targets; they are knobs, not claims.
    """

    per_operation: Dict[str, float] = field(default_factory=dict)
    default_latency: float = 0.0005

    def simulated_seconds(self, stats: CallStats) -> float:
        total = 0.0
        for operation, count in stats:
            total += count * self.per_operation.get(operation, self.default_latency)
        return total

    def simulated_seconds_for(self, operation: str, count: int) -> float:
        return count * self.per_operation.get(operation, self.default_latency)
