"""Graph storage backends.

:class:`GraphBackend` is the minimal random-access contract the paper's
algorithms need from the "Social Store": O(1)-ish adjacency reads, degree
queries, uniform neighbour sampling, and edge mutation.
:class:`InMemoryGraphBackend` fulfils it with a
:class:`~repro.graph.digraph.DynamicDiGraph`; the sharded variant lives in
:mod:`repro.store.sharded`.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike

__all__ = ["GraphBackend", "InMemoryGraphBackend"]


@runtime_checkable
class GraphBackend(Protocol):
    """Random-access storage contract for a directed social graph."""

    @property
    def num_nodes(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def ensure_node(self, node: int) -> None: ...

    def add_edge(self, source: int, target: int) -> None: ...

    def remove_edge(self, source: int, target: int) -> None: ...

    def has_edge(self, source: int, target: int) -> bool: ...

    def out_degree(self, node: int) -> int: ...

    def in_degree(self, node: int) -> int: ...

    def out_neighbors(self, node: int) -> Sequence[int]: ...

    def in_neighbors(self, node: int) -> Sequence[int]: ...

    def random_out_neighbor(self, node: int, rng: RngLike = None) -> int: ...

    def random_in_neighbor(self, node: int, rng: RngLike = None) -> int: ...


class InMemoryGraphBackend:
    """Single-process backend over :class:`DynamicDiGraph`."""

    def __init__(self, graph: DynamicDiGraph | None = None) -> None:
        self.graph = graph if graph is not None else DynamicDiGraph()

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def ensure_node(self, node: int) -> None:
        self.graph.ensure_node(node)

    def add_edge(self, source: int, target: int) -> None:
        self.graph.add_edge(source, target)

    def remove_edge(self, source: int, target: int) -> None:
        self.graph.remove_edge(source, target)

    def has_edge(self, source: int, target: int) -> bool:
        return self.graph.has_edge(source, target)

    def out_degree(self, node: int) -> int:
        return self.graph.out_degree(node)

    def in_degree(self, node: int) -> int:
        return self.graph.in_degree(node)

    def out_neighbors(self, node: int) -> Sequence[int]:
        return self.graph.out_neighbors(node)

    def in_neighbors(self, node: int) -> Sequence[int]:
        return self.graph.in_neighbors(node)

    def random_out_neighbor(self, node: int, rng: RngLike = None) -> int:
        return self.graph.random_out_neighbor(node, rng)

    def random_in_neighbor(self, node: int, rng: RngLike = None) -> int:
        return self.graph.random_in_neighbor(node, rng)

    def out_degree_array(self) -> np.ndarray:
        return self.graph.out_degree_array()

    def in_degree_array(self) -> np.ndarray:
        return self.graph.in_degree_array()
