"""E-FAULTS: fault-tolerance acceptance — availability, WAL cost, recovery.

Two tests over :func:`repro.experiments.exp_faults.run_faults`:

* the **availability** test drives an interleaved query/update schedule
  through worker processes running under the standard kill schedule
  (every worker ``os._exit``'d once, mid-drain) and asserts ≥ 99 %
  availability, every answered ranking bit-identical to a no-fault
  oracle, every worker live at the end, and ≥ 1 restart per worker —
  plus bit-identical WAL recovery;
* the **WAL overhead** gate asserts fsync'd durability costs < 10 % of
  update throughput (full scale only — at smoke scale the fsync floor
  dominates the tiny batches and the ratio is noise).

Set ``REPRO_BENCH_FAST=1`` for smoke-test scale (CI).  When
``REPRO_BENCH_JSON`` names a path, the machine-readable availability /
latency / recovery extras are written there for
``benchmarks/run_bench.py`` to fold into ``BENCH_faults.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.exp_faults import run_faults

FAST_MODE = bool(os.environ.get("REPRO_BENCH_FAST"))

PARAMS = (
    {
        "num_nodes": 300,
        "num_edges": 3_600,
        "walks_per_node": 3,
        "num_workers": 2,
        "num_waves": 12,
        "wave_size": 8,
        "walk_length": 120,
        "seed_pool_size": 30,
        "wal_batches": 6,
        "wal_batch_size": 100,
        "rng": 42,
    }
    if FAST_MODE
    else {
        "num_nodes": 900,
        "num_edges": 10_800,
        "walks_per_node": 3,
        "num_workers": 2,
        "num_waves": 24,
        "wave_size": 12,
        "walk_length": 160,
        "seed_pool_size": 48,
        "wal_batches": 12,
        "wal_batch_size": 150,
        "rng": 42,
    }
)


def _emit_json(result) -> None:
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "experiment": result.experiment_id,
                "rows": result.rows,
                "notes": result.notes,
                **result.extras,
            },
            fh,
            indent=2,
        )


def test_faults_availability(benchmark, once):
    """Kill every worker once; serving stays ≥ 99 % available and exact."""
    result = once(benchmark, run_faults, **PARAMS)
    extras = result.extras
    assert extras["availability"] >= 0.99, extras["differential"]
    tally = extras["differential"]
    assert tally["answered"] > 0
    assert tally["matched"] == tally["answered"], tally
    assert extras["live_workers"] == list(range(PARAMS["num_workers"]))
    for worker in range(PARAMS["num_workers"]):
        # >= rather than ==: a respawn may race a concurrent publish's
        # snapshot prune and need a second attempt
        assert extras["restarts"][str(worker)] >= 1, extras["restarts"]
    assert extras["recovery"]["bit_identical"], extras["recovery"]
    _emit_json(result)
    print()
    print(result.render())


@pytest.mark.skipif(
    FAST_MODE,
    reason="WAL overhead gate needs full-scale batches; smoke scale is "
    "dominated by the per-batch fsync floor",
)
def test_wal_overhead_under_10_percent(benchmark, once):
    """Fsync'd durability costs < 10 % of update throughput (acceptance)."""
    result = once(benchmark, run_faults, **PARAMS)
    wal = result.extras["wal"]
    assert wal["overhead"] < 0.10, (
        f"WAL overhead {100.0 * wal['overhead']:.1f}% >= 10% "
        f"(base {wal['base_eps']:.0f} ev/s, wal {wal['wal_eps']:.0f} ev/s)"
    )
    _emit_json(result)
    print()
    print(result.render())
