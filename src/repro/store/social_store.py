"""The Social Store: instrumented random-access facade over a backend.

This is the FlockDB analogue of the paper (§1: "the graph is usually stored
in distributed shared memory, which we denote as 'Social Store'").  Engines
talk to the graph exclusively through this facade so that every adjacency
access is counted in :attr:`SocialStore.stats` — the unit the paper's
running-time comparisons are expressed in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.errors import StoreClosedError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike
from repro.store.backend import GraphBackend, InMemoryGraphBackend
from repro.store.stats import CallStats

__all__ = ["SocialStore"]


class SocialStore:
    """Instrumented adjacency API over a :class:`GraphBackend`."""

    def __init__(
        self,
        backend: Optional[GraphBackend] = None,
        *,
        graph: Optional[DynamicDiGraph] = None,
        stats: Optional[CallStats] = None,
        registry=None,
    ) -> None:
        if backend is not None and graph is not None:
            raise ValueError("pass either backend or graph, not both")
        if backend is None:
            backend = InMemoryGraphBackend(graph)
        self.backend = backend
        #: ``registry`` mirrors the op counters into a shared
        #: :class:`~repro.obs.MetricsRegistry` under ``store="social"``
        #: (ignored when an explicit ``stats`` object is supplied).
        self.stats = (
            stats
            if stats is not None
            else CallStats(registry=registry, store="social")
        )
        self._closed = False

    @classmethod
    def of_graph(cls, graph: DynamicDiGraph) -> "SocialStore":
        return cls(graph=graph)

    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("social store has been closed")

    def close(self) -> None:
        """Refuse further operations (lifecycle hygiene for tests)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def graph(self) -> DynamicDiGraph:
        """Direct (uncounted) access to the underlying graph.

        Reserved for analysis/verification code; algorithm code should go
        through the counted methods so experiments stay honest.
        """
        return self.backend.graph  # type: ignore[attr-defined]

    @property
    def num_nodes(self) -> int:
        return self.backend.num_nodes

    @property
    def num_edges(self) -> int:
        return self.backend.num_edges

    # -- counted operations ----------------------------------------------

    def ensure_node(self, node: int) -> None:
        self._check_open()
        self.backend.ensure_node(node)

    def add_edge(self, source: int, target: int) -> None:
        self._check_open()
        self.stats.record("add_edge")
        self.backend.add_edge(source, target)

    def remove_edge(self, source: int, target: int) -> None:
        self._check_open()
        self.stats.record("remove_edge")
        self.backend.remove_edge(source, target)

    def apply_events(self, events: Iterable) -> Dict[str, int]:
        """Apply an ordered slice of arrival events in one store round-trip.

        ``events`` is any iterable of objects with ``kind`` (``'add'`` or
        ``'remove'``), ``source`` and ``target`` — typically
        :class:`repro.graph.arrival.ArrivalEvent`.  Each mutation is counted
        individually (the write volume is unchanged) plus one ``apply_batch``
        marker, so per-batch traffic can be read off with
        :meth:`CallStats.delta_since`.  Returns this batch's op delta.
        """
        self._check_open()
        before = self.stats.snapshot()
        self.stats.record("apply_batch")
        for event in events:
            self.backend.ensure_node(max(event.source, event.target))
            if event.kind == "add":
                self.stats.record("add_edge")
                self.backend.add_edge(event.source, event.target)
            else:
                self.stats.record("remove_edge")
                self.backend.remove_edge(event.source, event.target)
        return self.stats.delta_since(before)

    def has_edge(self, source: int, target: int) -> bool:
        self._check_open()
        self.stats.record("has_edge")
        return self.backend.has_edge(source, target)

    def out_degree(self, node: int) -> int:
        self._check_open()
        self.stats.record("out_degree")
        return self.backend.out_degree(node)

    def in_degree(self, node: int) -> int:
        self._check_open()
        self.stats.record("in_degree")
        return self.backend.in_degree(node)

    def out_neighbors(self, node: int) -> Sequence[int]:
        self._check_open()
        self.stats.record("out_neighbors")
        return self.backend.out_neighbors(node)

    def in_neighbors(self, node: int) -> Sequence[int]:
        self._check_open()
        self.stats.record("in_neighbors")
        return self.backend.in_neighbors(node)

    def random_out_neighbor(self, node: int, rng: RngLike = None) -> int:
        self._check_open()
        self.stats.record("random_out_neighbor")
        return self.backend.random_out_neighbor(node, rng)

    def random_in_neighbor(self, node: int, rng: RngLike = None) -> int:
        self._check_open()
        self.stats.record("random_in_neighbor")
        return self.backend.random_in_neighbor(node, rng)

    def __repr__(self) -> str:
        return (
            f"SocialStore(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
            f"ops={self.stats.total()})"
        )
