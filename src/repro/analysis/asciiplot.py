"""Terminal scatter/line plots — no matplotlib in this environment.

EXPERIMENTS.md and the example scripts render their figures as ASCII
log-log plots; crude, but enough to eyeball whether a power law is a line
and whether a measured curve sits under a theoretical bound.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ascii_plot", "ascii_histogram"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render named (x, y) series on one grid.

    ``series`` maps label → (xs, ys).  Log axes drop non-positive points
    (as a log-log plot must).  Returns a multi-line string with a legend.
    """
    if not series:
        raise ConfigurationError("no series to plot")
    prepared: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=np.float64)
        y = np.asarray(ys, dtype=np.float64)
        if x.shape != y.shape:
            raise ConfigurationError(f"series {label!r}: x/y length mismatch")
        mask = np.isfinite(x) & np.isfinite(y)
        if log_x:
            mask &= x > 0
        if log_y:
            mask &= y > 0
        x, y = x[mask], y[mask]
        if x.size:
            prepared[label] = (
                np.log10(x) if log_x else x,
                np.log10(y) if log_y else y,
            )
    if not prepared:
        raise ConfigurationError("all points filtered out (log of non-positive?)")

    all_x = np.concatenate([x for x, _ in prepared.values()])
    all_y = np.concatenate([y for _, y in prepared.values()])
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (x, y)) in enumerate(prepared.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        columns = np.clip(
            ((x - x_low) / x_span * (width - 1)).round().astype(int), 0, width - 1
        )
        rows = np.clip(
            ((y - y_low) / y_span * (height - 1)).round().astype(int), 0, height - 1
        )
        for column, row in zip(columns, rows):
            grid[height - 1 - row][column] = marker

    def _fmt(value: float, logged: bool) -> str:
        return f"{10 ** value:.3g}" if logged else f"{value:.3g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {_fmt(y_high, log_y)}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(
        f"y: {_fmt(y_low, log_y)}   x: {_fmt(x_low, log_x)} .. {_fmt(x_high, log_x)}"
        + ("  [log-x]" if log_x else "")
        + ("  [log-y]" if log_y else "")
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {label}"
        for i, label in enumerate(prepared)
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of ``values``."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise ConfigurationError("no values to histogram")
    counts, edges = np.histogram(array, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for index, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{edges[index]:>10.4g} .. {edges[index + 1]:<10.4g} |{bar} {count}")
    return "\n".join(lines)
