"""E-SERVE: the query-serving layer under mixed read/write traffic.

The paper's deployment story is an always-fresh index serving heavy query
traffic while edges keep arriving.  This experiment drives exactly that
regime — Zipf(1.0)-distributed top-k queries interleaved with
``apply_batch`` slices of a twitter-like arrival stream — through three
service configurations:

* **uncached** — every query runs a fresh stitched walk (the PR-1 state
  of the repository);
* **cached** — :class:`~repro.serve.engine.QueryEngine` with the
  seed-keyed result cache and the shared fetch cache, invalidated by the
  engine's dirty-node feed;
* **cached + batcher** — the same, behind the
  :class:`~repro.serve.batcher.RequestBatcher` worker pool with duplicate
  coalescing.

Reported per mode: interleaved and sustained (query-only) throughput,
result-cache hit rate, store fetches per query, and a differential
correctness check — served answers must equal a cache-free reference run
with the same derived RNG on the same post-update store.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.core.query_kernel import QueryKernel
from repro.experiments.common import ExperimentResult, register
from repro.rng import ensure_rng, spawn
from repro.serve.batcher import QueryRequest, RequestBatcher
from repro.serve.engine import QueryEngine
from repro.serve.traffic import interleaved_traffic, zipf_seed_sequence
from repro.workloads.twitter_like import twitter_like_stream

__all__ = ["run_serve"]

ENGINE_SEED = 12345  # identical walk stores across modes (E-BATCH idiom)


def _fresh_setup(stream, cut, walks_per_node, reset_probability):
    """One mode's engine, prebuilt on the stream prefix."""
    engine = IncrementalPageRank.from_graph(
        stream.snapshot_at(cut),
        reset_probability=reset_probability,
        walks_per_node=walks_per_node,
        rng=np.random.default_rng(ENGINE_SEED),
    )
    return engine


def _drive(engine, query_engine, phases, *, batcher=None):
    """Run the interleaved traffic; returns (query_seconds, queries_done)."""
    query_seconds = 0.0
    queries_done = 0
    for phase in phases:
        if phase.kind == "events":
            engine.apply_batch(phase.events)
            continue
        started = time.perf_counter()
        if batcher is not None:
            results = batcher.run(phase.queries)
            queries_done += sum(1 for r in results if r is not None)
        else:
            for request in phase.queries:
                query_engine.top_k(
                    request.seed,
                    request.k,
                    length=request.length,
                    exclude_friends=request.exclude_friends,
                )
                queries_done += 1
        query_seconds += time.perf_counter() - started
    return query_seconds, queries_done


def _sustained(query_engine, requests, *, batcher=None):
    """Query-only phase: returns wall seconds for the whole burst."""
    started = time.perf_counter()
    if batcher is not None:
        batcher.run(requests)
    else:
        for request in requests:
            query_engine.top_k(
                request.seed,
                request.k,
                length=request.length,
                exclude_friends=request.exclude_friends,
            )
    return time.perf_counter() - started


def _differential_check(engine, query_engine, seeds, k, walk_length):
    """Served answers vs cache-free same-RNG reference; returns (ok, total).

    The oracle is a fresh cache-free B=1 :class:`QueryKernel` — the serve
    path's canonical computation (see :mod:`repro.serve.engine`).
    """
    reference = QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )
    ok = 0
    for seed in seeds:
        served = query_engine.top_k(seed, k, length=walk_length)
        expected = reference.batch_top_k(
            [seed],
            k,
            length=walk_length,
            exclude_friends=True,
            rngs=[query_engine.query_rng(seed, walk_length)],
        )[0]
        if served.ranking == expected.ranking:
            ok += 1
    return ok, len(seeds)


@register("E-SERVE")
def run_serve(
    num_nodes: int = 2000,
    num_edges: int = 24_000,
    prebuild_fraction: float = 0.6,
    num_queries: int = 1200,
    sustained_queries: int = 1000,
    seed_pool_size: Optional[int] = None,
    k: int = 10,
    walk_length: int = 1500,
    zipf_exponent: float = 1.0,
    event_batch_size: int = 400,
    query_burst: int = 200,
    walks_per_node: int = 5,
    reset_probability: float = 0.25,
    max_workers: int = 4,
    rng=42,
) -> ExperimentResult:
    """Serving-layer throughput: uncached vs cached vs cached+batcher.

    ``seed_pool_size`` models the *active-user population* issuing queries
    — a small fraction of all accounts, as in production (default
    ``num_nodes // 8``).  Zipf(``zipf_exponent``) skew is applied over
    that pool.
    """
    generator = ensure_rng(rng)
    graph_rng, pool_rng, traffic_rng, sustained_rng, check_rng = spawn(
        generator, 5
    )
    stream = twitter_like_stream(num_nodes, num_edges, rng=graph_rng)
    cut = int(len(stream) * prebuild_fraction)
    window = stream.suffix(cut)
    if seed_pool_size is None:
        seed_pool_size = max(64, num_nodes // 8)
    seed_pool_size = min(seed_pool_size, num_nodes)
    seed_pool = [
        int(node)
        for node in ensure_rng(pool_rng).choice(
            num_nodes, size=seed_pool_size, replace=False
        )
    ]

    phases = interleaved_traffic(
        window,
        seed_pool,
        num_queries=num_queries,
        k=k,
        length=walk_length,
        zipf_exponent=zipf_exponent,
        event_batch_size=event_batch_size,
        query_burst=query_burst,
        rng=traffic_rng,
    )
    sustained_requests = [
        QueryRequest(seed=seed, k=k, length=walk_length)
        for seed in zipf_seed_sequence(
            sustained_queries,
            seed_pool,
            exponent=zipf_exponent,
            rng=sustained_rng,
        )
    ]
    check_seeds = [
        int(seed)
        for seed in ensure_rng(check_rng).choice(num_nodes, size=5, replace=False)
    ]

    modes = [
        ("uncached", dict(cache_results=False, share_fetches=False), False),
        ("cached", dict(cache_results=True, share_fetches=True), False),
        ("cached + batcher", dict(cache_results=True, share_fetches=True), True),
    ]
    rows = []
    baseline_sustained_qps = None
    differential = []
    for label, flags, use_batcher in modes:
        engine = _fresh_setup(stream, cut, walks_per_node, reset_probability)
        query_engine = QueryEngine(engine, rng_seed=7, **flags)
        batcher = (
            RequestBatcher(
                query_engine,
                max_workers=max_workers,
                max_queue_depth=max(len(sustained_requests), num_queries),
            )
            if use_batcher
            else None
        )
        fetch_before = engine.pagerank_store.fetch_count
        interleaved_seconds, queries_done = _drive(
            engine, query_engine, phases, batcher=batcher
        )
        sustained_seconds = _sustained(
            query_engine, sustained_requests, batcher=batcher
        )
        # read the serving metrics before the differential check: its
        # cache-free reference walks fetch against the same store and
        # would contaminate "store fetches / query" and the hit rate
        stats = query_engine.stats.snapshot()
        fetches = engine.pagerank_store.fetch_count - fetch_before
        ok, total = _differential_check(
            engine, query_engine, check_seeds, k, walk_length
        )
        differential.append((label, ok, total))
        if batcher is not None:
            batcher.shutdown()
        sustained_qps = sustained_queries / max(sustained_seconds, 1e-9)
        if baseline_sustained_qps is None:
            baseline_sustained_qps = sustained_qps
        rows.append(
            {
                "mode": label,
                "interleaved qps": queries_done / max(interleaved_seconds, 1e-9),
                "sustained qps": sustained_qps,
                "speedup vs uncached": sustained_qps / baseline_sustained_qps,
                "hit rate": stats["hit_rate"],
                "coalesced": stats["coalesced"],
                "store fetches / query": fetches / max(stats["queries"], 1),
                "p99 latency ms": query_engine.stats.percentile(0.99) * 1e3,
            }
        )
        query_engine.detach()

    result = ExperimentResult(
        experiment_id="E-SERVE",
        title="Query serving: cached/batched top-k over the live walk store",
        params={
            "n": num_nodes,
            "m": num_edges,
            "prebuilt": cut,
            "queries": num_queries,
            "sustained": sustained_queries,
            "pool": seed_pool_size,
            "k": k,
            "s": walk_length,
            "zipf": zipf_exponent,
            "R": walks_per_node,
            "eps": reset_probability,
        },
        rows=rows,
    )
    for label, ok, total in differential:
        result.notes.append(
            f"differential check [{label}]: {ok}/{total} served rankings "
            "equal the cache-free same-RNG reference on the post-update store"
        )
    result.notes.append(
        "Interleaved qps includes cache invalidation from apply_batch "
        "slices between bursts (freshness is never traded for speed); "
        "sustained qps is the query-only steady state a read-mostly "
        "service sees."
    )
    return result
