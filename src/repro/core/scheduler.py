"""Bounded-staleness repair scheduling (Agenda-style deferred updates).

The paper's Algorithm-1 index pays per-edge repair cost *synchronously*
on every mutation; Hou et al. 2022 ("Personalized PageRank on Evolving
Graphs with an Incremental Index-Update Scheme", PAPERS.md) show that an
evolving-graph PPR index wins by **deferring** repair inside a provable
error budget.  :class:`StalenessScheduler` is that layer for this system:
it sits in front of an :class:`~repro.core.incremental.IncrementalPageRank`
engine, queues mutations instead of applying them, accounts the estimated
PPR perturbation of every deferred item per node
(:func:`repro.core.theory.staleness_error_increment`), and repairs

* **lazily** when the accumulated estimate exceeds ``staleness_budget``
  — per node by default (``budget_scope="node"``), or summed over the
  whole queue (``budget_scope="total"``) — inline, or on a background
  worker thread (``background=True``);
* **on demand** when a query touches a node staler than the read policy
  allows (:meth:`ensure_fresh`, the serving layer's repair-on-read hook
  — strict read-your-writes by default, within-budget staleness with
  ``read_repair="budget"``);
* **explicitly** via :meth:`flush`.

**Freshness semantics.**  While items are queued, *both* the graph and
the walk store lag — the engine's state is a consistent snapshot of the
last flushed prefix, so every invariant the store maintains (segments are
valid walks on the engine's graph, the visit index matches the segments)
keeps holding while stale.  The pending error estimate bounds how far the
served PageRank vector can have drifted from the fully-repaired one.

**Determinism contract (normative).**  Deferring consumes no engine RNG,
and a ``repair="replay"`` flush re-issues each queued item through the
exact engine entry point the eager path would have used, in order.
Therefore the flushed engine is **bit-identical** to an eager engine that
received the same calls with the same seeded RNG — for any interleaving
of defers and flushes (granularity invariance).  ``repair="coalesce"``
instead drains the whole queue through one
:meth:`~repro.core.incremental.IncrementalPageRank.apply_batch` call —
distributionally identical, amortized (one index scan + one vectorized
resimulation per flush, the PR-1 batch win), and still bit-identical
*across storage backends*; it is the production mode the scheduler
benchmark measures.  ``tests/test_scheduler.py`` pins both contracts.

**Concurrency.**  Mutation intake (``add_edge``/``remove_edge``/
``apply_batch``) and accounting reads are mutex-protected and may be
called from any thread.  Repairs take the *write* side of an internal
readers-writer lock; the serving layer wraps every store-reading
computation in :meth:`read_lock`, so a background repair never rewrites
arena memory under an in-flight walk (torn reads were the failure mode
the old "drain before ingesting" contract existed to avoid).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Iterable, Optional, Sequence

from repro.core.incremental import BatchUpdateReport, IncrementalPageRank
from repro.core.theory import staleness_error_increment
from repro.errors import (
    ConfigurationError,
    DuplicateEdgeError,
    EdgeNotFoundError,
)
from repro.graph.arrival import ADD, REMOVE, ArrivalEvent

__all__ = [
    "StalenessScheduler",
    "REPAIR_REPLAY",
    "REPAIR_COALESCE",
    "BUDGET_NODE",
    "BUDGET_TOTAL",
    "READ_STRICT",
    "READ_BUDGET",
]

#: Flush replays every deferred item through its original engine entry
#: point — bit-identical to the eager path under the same seeded RNG.
REPAIR_REPLAY = "replay"
#: Flush drains the whole queue through one ``apply_batch`` call —
#: distributionally identical, amortized (the production mode).
REPAIR_COALESCE = "coalesce"

#: Budget caps each node's own accumulated estimate (personalized SLO).
BUDGET_NODE = "node"
#: Budget caps the queue-wide sum (global L1 drift of the score vector).
BUDGET_TOTAL = "total"

#: Repair-on-read flushes for *any* pending mutation at a queried node —
#: read-your-writes exactness (the differential-oracle mode).
READ_STRICT = "strict"
#: Repair-on-read flushes only for nodes whose estimate exceeds the
#: budget — within-SLO staleness is served (the throughput mode).
READ_BUDGET = "budget"

_ITEM_EDGE = "edge"
_ITEM_BATCH = "batch"


class _ReadWriteLock:
    """Readers-writer lock with writer preference (no writer starvation).

    Queries hold the read side for the duration of a store-reading
    computation; a repair holds the write side while it rewrites
    segments.  A thread must never request the write side while holding
    the read side (the serving layer's ensure-fresh-then-read ordering
    guarantees this).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class StalenessScheduler:
    """Deferred-repair front for an :class:`IncrementalPageRank` engine."""

    def __init__(
        self,
        engine: IncrementalPageRank,
        *,
        staleness_budget: float = 0.05,
        budget_scope: str = BUDGET_NODE,
        repair: str = REPAIR_REPLAY,
        read_repair: str = READ_STRICT,
        background: bool = False,
        safety_factor: float = 2.0,
        compact_below: Optional[float] = None,
        stats=None,
        clock=time.monotonic,
        tracer=None,
    ) -> None:
        """Front ``engine`` with a deferred-repair queue.

        ``staleness_budget`` is the SLO knob: the maximum estimated PPR
        perturbation that may accumulate from deferred mutations before
        a repair is forced (``math.inf`` defers forever — flushes happen
        only on demand).  ``budget_scope`` picks what the budget caps:
        ``"node"`` (default) caps each node's own estimate — the right
        SLO for *personalized* queries, whose error is dominated by
        staleness at the nodes they touch, and the cheapest (a global
        cap lets unrelated background churn starve deferral); ``"total"``
        caps the sum over the whole queue, bounding the L1 drift of the
        *global* PageRank vector (the quantity the scheduler benchmark
        measures against a fully-repaired twin).  ``read_repair`` sets
        the freshness a query observes: ``"strict"`` (default) repairs
        before serving any node with pending mutations, ``"budget"``
        serves within-SLO staleness (see :meth:`ensure_fresh`).  ``repair`` picks the flush strategy (see module
        docstring).  ``background=True`` starts a (non-daemon) worker
        thread that drains the queue whenever the budget is exceeded;
        call :meth:`close` (or use the context manager) to join it.
        ``compact_below`` optionally compacts the walk store's arena
        after a flush leaves its utilization under the given fraction —
        background repair is the natural place for that maintenance.
        ``stats`` is an optional :class:`~repro.serve.stats.ServeStats`
        to bill deferrals and repairs into.  ``tracer`` is an optional
        :class:`~repro.obs.Tracer`; each flush then emits a
        ``scheduler.flush`` span (parented to the caller's active span,
        so budget flushes on the background worker start fresh traces
        while repair-on-read flushes nest under the query that paid).
        """
        if staleness_budget <= 0:
            raise ConfigurationError(
                f"staleness_budget must be positive, got {staleness_budget}"
            )
        if budget_scope not in (BUDGET_NODE, BUDGET_TOTAL):
            raise ConfigurationError(f"unknown budget_scope {budget_scope!r}")
        if repair not in (REPAIR_REPLAY, REPAIR_COALESCE):
            raise ConfigurationError(f"unknown repair mode {repair!r}")
        if read_repair not in (READ_STRICT, READ_BUDGET):
            raise ConfigurationError(f"unknown read_repair mode {read_repair!r}")
        if safety_factor <= 0:
            raise ConfigurationError(
                f"safety_factor must be positive, got {safety_factor}"
            )
        if compact_below is not None and not 0.0 < compact_below <= 1.0:
            raise ConfigurationError(
                f"compact_below must be in (0, 1], got {compact_below}"
            )
        self.engine = engine
        self.staleness_budget = staleness_budget
        self.budget_scope = budget_scope
        self.repair = repair
        self.read_repair = read_repair
        self.safety_factor = safety_factor
        self.compact_below = compact_below
        self.clock = clock
        self._stats = stats
        self._tracer = tracer
        # Queue + accounting (mutex-protected).
        self._mutex = threading.Lock()
        self._work_ready = threading.Condition(self._mutex)
        self._items: list[tuple] = []
        self._pending_events = 0
        self._pending_error = 0.0
        self._max_node_error = 0.0
        self._node_error: dict[int, float] = {}
        self._pending_dirty: set[int] = set()
        #: Logical edge-presence overrides on top of the (stale) graph.
        self._edge_overrides: dict[tuple[int, int], bool] = {}
        self._logical_num_nodes = engine.graph.num_nodes
        # Lifetime counters (useful without a ServeStats attached).
        self.deferred_events = 0
        self.flushes = 0
        self.flushed_events = 0
        # Store access lock (readers = queries, writer = repair).
        self._store_lock = _ReadWriteLock()
        # Background worker.
        self._shutdown = False
        self._closed = False
        self._thread: Optional[threading.Thread] = None
        if background:
            self._thread = threading.Thread(
                target=self._worker, name="repro-repair", daemon=False
            )
            self._thread.start()
            # exit-time safety net: an abandoned scheduler's non-daemon
            # worker is stopped before interpreter teardown would block
            # joining it (see repro.lifecycle)
            from repro.lifecycle import register_for_shutdown

            register_for_shutdown(self)

    # ------------------------------------------------------------------
    # Logical graph view (pending mutations included)
    # ------------------------------------------------------------------

    def has_edge(self, source: int, target: int) -> bool:
        """Edge presence in the *logical* graph (graph ⊎ pending queue).

        Takes the store read lock (outside the mutex, the intake lock
        order) so a concurrent repair is never observed mid-rewrite.
        """
        with self._store_lock.read():
            with self._mutex:
                override = self._edge_overrides.get((source, target))
                if override is not None:
                    return override
                graph = self.engine.graph
                if source >= graph.num_nodes or target >= graph.num_nodes:
                    return False
                return graph.has_edge(source, target)

    @property
    def num_nodes(self) -> int:
        """Node count of the logical graph (pending node creations count)."""
        with self._store_lock.read():
            with self._mutex:
                return max(self._logical_num_nodes, self.engine.graph.num_nodes)

    # ------------------------------------------------------------------
    # Accounting reads
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        with self._mutex:
            return self._pending_events

    @property
    def pending_error(self) -> float:
        """Accumulated estimated PPR perturbation of the deferred queue."""
        with self._mutex:
            return self._pending_error

    @property
    def max_node_error(self) -> float:
        """Largest single-node estimate — the quantity the budget caps."""
        with self._mutex:
            return self._max_node_error

    def error_of(self, node: int) -> float:
        """Estimated perturbation attributed to deferred mutations at ``node``."""
        with self._mutex:
            return self._node_error.get(node, 0.0)

    @property
    def pending_dirty_nodes(self) -> frozenset:
        """Nodes whose served state may lag (repair-on-read trigger set)."""
        with self._mutex:
            return frozenset(self._pending_dirty)

    # ------------------------------------------------------------------
    # Mutation intake (deferred)
    # ------------------------------------------------------------------

    def add_edge(self, source: int, target: int) -> None:
        """Queue an edge arrival; validated against the logical graph."""
        self._defer_events([ArrivalEvent(ADD, source, target)], _ITEM_EDGE)

    def remove_edge(self, source: int, target: int) -> None:
        """Queue an edge removal; validated against the logical graph."""
        self._defer_events([ArrivalEvent(REMOVE, source, target)], _ITEM_EDGE)

    def apply(self, event: ArrivalEvent) -> None:
        """Queue one :class:`ArrivalEvent` (add or remove)."""
        self._defer_events([event], _ITEM_EDGE)

    def apply_batch(self, events: Iterable[ArrivalEvent]) -> None:
        """Queue a whole event slice as one work item.

        A replay-mode flush re-issues it as a single
        :meth:`IncrementalPageRank.apply_batch` call, matching what the
        eager path would have done with the same slice.
        """
        events = list(events)
        if not events:
            return
        self._defer_events(events, _ITEM_BATCH)

    def _defer_events(self, events: Sequence[ArrivalEvent], item_kind: str) -> None:
        walks = self.engine.walks
        walks_per_node = self.engine.walks_per_node
        eps = self.engine.reset_probability
        trigger = False
        # Intake reads store state (edge presence, visit counts) for
        # validation and error estimates, so it holds the read lock —
        # taken *outside* the mutex, the same order every reader uses,
        # while flush orders write-lock → mutex; the mutex is always
        # innermost, so the two paths cannot deadlock.
        with self._store_lock.read(), self._mutex:
            if self._closed:
                raise ConfigurationError("scheduler is closed")
            # Validate the whole item against the logical view first so a
            # rejected item leaves no partial queue state behind.
            view = dict(self._edge_overrides)
            for event in events:
                key = (event.source, event.target)
                present = view.get(key)
                if present is None:
                    graph = self.engine.graph
                    present = (
                        event.source < graph.num_nodes
                        and event.target < graph.num_nodes
                        and graph.has_edge(*key)
                    )
                if event.kind == ADD and present:
                    raise DuplicateEdgeError(*key)
                if event.kind == REMOVE and not present:
                    raise EdgeNotFoundError(*key)
                view[key] = event.kind == ADD
            self._edge_overrides = view
            total_visits = walks.total_visits
            graph = self.engine.graph
            for event in events:
                source, target = event.source, event.target
                affected = max(
                    walks.distinct_segment_count(source), walks_per_node
                )
                # Degree of the *flushed* graph — an estimate input, so
                # pending toggles at the same source are deliberately
                # ignored (they only perturb d(u) by the queue depth).
                out_degree = (
                    graph.out_degree(source) if source < graph.num_nodes else 0
                )
                increment = staleness_error_increment(
                    affected,
                    eps,
                    total_visits,
                    safety=self.safety_factor,
                    out_degree=max(out_degree, 1),
                )
                self._pending_error += increment
                node_error = self._node_error.get(source, 0.0) + increment
                self._node_error[source] = node_error
                self._max_node_error = max(self._max_node_error, node_error)
                self._pending_dirty.add(source)
                self._pending_dirty.add(target)
                for node in range(
                    self._logical_num_nodes, max(source, target) + 1
                ):
                    self._pending_dirty.add(node)
                self._logical_num_nodes = max(
                    self._logical_num_nodes, source + 1, target + 1
                )
            if item_kind == _ITEM_BATCH:
                self._items.append((_ITEM_BATCH, events))
            else:
                self._items.append((_ITEM_EDGE, events[0]))
            self._pending_events += len(events)
            self.deferred_events += len(events)
            if self._stats is not None:
                self._stats.record_deferred(len(events), self._pending_events)
            if self._over_budget():
                if self._thread is not None:
                    self._work_ready.notify()
                else:
                    trigger = True
        if trigger:
            self.flush(reason="budget")

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def flush(self, reason: str = "manual") -> Optional[BatchUpdateReport]:
        """Drain the queue and repair the engine; returns merged accounting.

        Safe to call from any thread (including concurrently — the second
        caller finds an empty queue and returns ``None``).  Holds the
        write side of the store lock for the duration, so no query reads
        a half-repaired store.
        """
        with self._store_lock.write():
            with self._mutex:
                items = self._items
                if not items:
                    return None
                flushed_events = self._pending_events
                self._items = []
                self._pending_events = 0
                self._pending_error = 0.0
                self._max_node_error = 0.0
                self._node_error = {}
                self._pending_dirty = set()
                self._edge_overrides = {}
                self._logical_num_nodes = self.engine.graph.num_nodes
            tracer = self._tracer
            span = (
                tracer.span(
                    "scheduler.flush", reason=reason, events=flushed_events
                )
                if tracer is not None and tracer.enabled
                else nullcontext()
            )
            with span:
                started = self.clock()
                if self.repair == REPAIR_COALESCE:
                    events = [
                        event
                        for kind, payload in items
                        for event in (
                            payload if kind == _ITEM_BATCH else (payload,)
                        )
                    ]
                    merged = self.engine.apply_batch(events)
                else:
                    reports = []
                    for kind, payload in items:
                        if kind == _ITEM_BATCH:
                            reports.append(self.engine.apply_batch(payload))
                        else:
                            reports.append(self.engine.apply(payload))
                    merged = BatchUpdateReport.merge(reports)
                latency = self.clock() - started
                self._maybe_compact()
        with self._mutex:
            self.flushes += 1
            self.flushed_events += flushed_events
            depth = self._pending_events
        if self._stats is not None:
            self._stats.record_repair(
                flushed_events, latency, reason=reason, depth=depth
            )
        return merged

    def ensure_fresh(self, nodes: Iterable[int]) -> bool:
        """Repair-on-read: flush if serving ``nodes`` would violate policy.

        The serving layer calls this with a query's seed(s) before
        computing.  Under ``read_repair="strict"`` any pending mutation
        at a queried node forces the flush — a user asking about their
        own just-mutated neighborhood never sees the deferral window.
        Under ``read_repair="budget"`` only a node whose accumulated
        estimate exceeds ``staleness_budget`` forces it — within-SLO
        staleness is served as-is, which is what makes deferral pay off
        under interleaved query traffic.  Returns whether a flush ran.
        """
        with self._mutex:
            if self.read_repair == READ_BUDGET:
                stale = any(
                    self._node_error.get(node, 0.0) > self.staleness_budget
                    for node in nodes
                )
            else:
                stale = any(node in self._pending_dirty for node in nodes)
        if not stale:
            return False
        return self.flush(reason="read") is not None

    def read_lock(self):
        """Context manager queries hold while reading the walk store."""
        return self._store_lock.read()

    def _maybe_compact(self) -> None:
        """Post-repair arena maintenance (write lock held by caller)."""
        if self.compact_below is None:
            return
        walks = self.engine.walks
        compact = getattr(walks, "compact", None)
        if compact is None:
            return
        if walks.memory_stats().get("arena_utilization", 1.0) < self.compact_below:
            compact()

    # ------------------------------------------------------------------
    # Background worker + lifecycle
    # ------------------------------------------------------------------

    def _over_budget(self) -> bool:
        """Whether the configured budget metric is exceeded (mutex held)."""
        if self.budget_scope == BUDGET_TOTAL:
            return self._pending_error > self.staleness_budget
        return self._max_node_error > self.staleness_budget

    def _worker(self) -> None:
        while True:
            with self._mutex:
                while not self._shutdown and not self._over_budget():
                    self._work_ready.wait()
                if self._shutdown:
                    return
            self.flush(reason="budget")

    def close(self, *, flush_pending: bool = True) -> None:
        """Stop the worker (joining it) and optionally flush what remains.

        Idempotent.  After ``close`` every deferral raises; the engine
        itself stays usable (eagerly).
        """
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            self._shutdown = True
            self._work_ready.notify_all()
        if self._thread is not None:
            self._thread.join()
        if flush_pending:
            self.flush(reason="close")

    def __enter__(self) -> "StalenessScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._mutex:
            budget = (
                "inf"
                if math.isinf(self.staleness_budget)
                else f"{self.staleness_budget:.4g}"
            )
            return (
                f"StalenessScheduler(pending={self._pending_events}, "
                f"error={self._pending_error:.4g}, budget={budget}, "
                f"repair={self.repair!r}, flushes={self.flushes})"
            )
