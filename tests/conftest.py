"""Shared fixtures.

All stochastic tests run on fixed seeds: results are deterministic, and the
statistical tolerances were calibrated once against those seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import DynamicDiGraph
from repro.graph.generators import (
    directed_cycle,
    directed_erdos_renyi,
    directed_preferential_attachment,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> DynamicDiGraph:
    """4 nodes, hand-wired, includes a dangling node (3)."""
    graph = DynamicDiGraph(4)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    graph.add_edge(0, 2)
    graph.add_edge(1, 3)  # 3 has no out-edges: dangling
    return graph


@pytest.fixture
def cycle_graph() -> DynamicDiGraph:
    return directed_cycle(30)


@pytest.fixture
def random_graph() -> DynamicDiGraph:
    return directed_erdos_renyi(60, 300, rng=7)


@pytest.fixture
def pa_graph() -> DynamicDiGraph:
    return directed_preferential_attachment(300, edges_per_node=4, rng=11)
