"""E-FAULTS: serving availability under crashes + the price of durability.

The fault-tolerance claims (DESIGN.md §15) reduced to three numbers:

* **availability** — an interleaved query/update schedule is driven
  through a :class:`~repro.serve.frontend.MultiProcessFrontend` whose
  workers run under the standard chaos schedule
  (:func:`~repro.faults.kill_each_worker_plan`: every worker killed once,
  mid-drain, via ``os._exit``).  The supervisor detects the crashes,
  respawns the workers, and retries the orphaned batches; availability is
  the fraction of requests answered, and every answered ranking is
  checked bit-identical against a no-fault in-process oracle — retries
  are invisible, not merely survivable.  Wave latency percentiles show
  what a crash costs the requests that ride through one.
* **WAL overhead** — the same update-batch stream is applied to two
  identical engines, one with an fsync'd
  :class:`~repro.serve.wal.WriteAheadLog` attached.  Steady-state
  durability must cost < 10 % of update throughput (the acceptance gate
  in ``benchmarks/bench_faults.py``).
* **recovery** — :func:`~repro.serve.wal.recover_engine` replays the WAL
  tail onto the checkpoint image and must reproduce the logged engine's
  PageRank byte-for-byte (the checkpoint-adoption contract); recovery
  wall time and replay rate are reported.

Rows: one per measure (``measure`` / ``value`` / ``detail``).  Extras
carry the machine-readable tallies for ``benchmarks/run_bench.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.incremental import IncrementalPageRank
from repro.experiments.common import ExperimentResult, register
from repro.faults import kill_each_worker_plan
from repro.serve.batcher import QueryRequest
from repro.serve.engine import QueryEngine
from repro.serve.frontend import MultiProcessFrontend
from repro.serve.wal import WriteAheadLog, recover_engine
from repro.serve.worker import WorkerConfig
from repro.store.persistence import load_engine, save_engine
from repro.workloads.twitter_like import twitter_like_stream

__all__ = ["run_faults"]

ENGINE_SEED = 12345  # identical walk stores across every arm
QUERY_SEED = 7  # rng_seed shared by frontend workers and the oracle


def _fresh_engine(graph, walks_per_node):
    return IncrementalPageRank.from_graph(
        graph,
        walks_per_node=walks_per_node,
        rng=np.random.default_rng(ENGINE_SEED),
    )


def _availability_phase(
    stream,
    cut,
    walks_per_node,
    num_workers,
    num_waves,
    wave_size,
    walk_length,
    seed_pool,
    rng,
):
    """Kill-schedule serving run; returns the tallies for the first rows."""
    engine = _fresh_engine(stream.snapshot_at(cut), walks_per_node)
    oracle = QueryEngine(engine, rng_seed=QUERY_SEED)
    plan = kill_each_worker_plan(int(rng.integers(1 << 30)), num_workers, lo=1, hi=5)
    events = list(stream.suffix(cut))
    slice_size = max(1, len(events) // max(1, num_waves // 3))
    generator = np.random.default_rng(rng.integers(1 << 30))

    answered = total = matched = 0
    wave_latencies = []
    frontend = MultiProcessFrontend(
        engine,
        num_workers=num_workers,
        config=WorkerConfig(rng_seed=QUERY_SEED, fault_plan=plan),
        request_timeout=30.0,
        max_retries=4,
        sweep_interval=0.1,
    )
    try:
        for wave_index in range(num_waves):
            wave = [
                QueryRequest(
                    kind="topk",
                    seed=int(generator.choice(seed_pool)),
                    k=10,
                    length=walk_length,
                )
                for _ in range(wave_size)
            ]
            started = time.perf_counter()
            answers = frontend.run(wave)
            wave_latencies.append(time.perf_counter() - started)
            for request, answer in zip(wave, answers):
                total += 1
                if answer is None:
                    continue
                answered += 1
                expected = oracle.top_k(
                    request.seed, request.k, length=request.length
                )
                if answer.ranking == expected.ranking:
                    matched += 1
            # every third wave: fold in an update slice + epoch bump, so
            # crashes land around attach/swap traffic too
            if wave_index % 3 == 2 and events:
                batch, events = events[:slice_size], events[slice_size:]
                engine.apply_batch(batch)
                frontend.publish_epoch(timeout=60.0)
        # let the supervisor finish any in-flight respawns before reading
        # the final roster (a respawn may race a publish's prune and need
        # a second attempt)
        deadline = time.monotonic() + 30.0
        expected_live = list(range(num_workers))
        while (
            frontend.live_workers != expected_live
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        live = frontend.live_workers
        restarts = {
            worker: frontend.worker_restarts(worker)
            for worker in range(num_workers)
        }
        retries = frontend.registry.snapshot().get(
            "repro_serve_retries_total", 0.0
        )
    finally:
        frontend.close()
        oracle.detach()
    latencies_ms = 1000.0 * np.sort(np.asarray(wave_latencies))
    percentiles = {
        "p50": float(np.percentile(latencies_ms, 50)),
        "p95": float(np.percentile(latencies_ms, 95)),
        "p99": float(np.percentile(latencies_ms, 99)),
    }
    return {
        "answered": answered,
        "total": total,
        "matched": matched,
        "availability": answered / total if total else 0.0,
        "wave_latency_ms": percentiles,
        "live_workers": live,
        "restarts": restarts,
        "restarts_total": sum(restarts.values()),
        "retries": retries,
    }


def _durability_phase(
    stream, cut, walks_per_node, wal_batches, wal_batch_size, workdir
):
    """WAL overhead + recovery; both arms start from the same checkpoint.

    The checkpoint is adopted (``load_engine``) before either arm runs:
    snapshot formats canonicalize the walk-segment layout, and replay is
    bit-identical *to the checkpoint image* — exactly the window the
    serve tier maintains by truncating the WAL at every publish.

    Timing is interleaved best-of-3 (fresh engine per repetition, arms
    alternated) so a load spike hitting one arm cannot fake — or mask —
    the fsync cost the overhead gate is actually about.
    """
    snapshot = Path(workdir) / "checkpoint.npz"
    wal_path = Path(workdir) / "updates.wal"
    seed_engine = _fresh_engine(stream.snapshot_at(cut), walks_per_node)
    save_engine(seed_engine, snapshot)

    events = list(stream.suffix(cut))
    slices = [
        events[start : start + wal_batch_size]
        for start in range(0, wal_batches * wal_batch_size, wal_batch_size)
    ]
    slices = [chunk for chunk in slices if chunk]
    applied = sum(len(chunk) for chunk in slices)

    def _run_bare():
        engine = load_engine(
            snapshot, rng=np.random.default_rng(ENGINE_SEED + 1)
        )
        started = time.perf_counter()
        for chunk in slices:
            engine.apply_batch(chunk)
        return time.perf_counter() - started, engine

    def _run_logged():
        # logged-before-mutate, fsync per batch; each repetition rewrites
        # the log from scratch (reopening would append after the prefix)
        wal_path.unlink(missing_ok=True)
        engine = load_engine(
            snapshot, rng=np.random.default_rng(ENGINE_SEED + 1)
        )
        wal = WriteAheadLog(wal_path)
        engine.attach_wal(wal)
        started = time.perf_counter()
        for chunk in slices:
            engine.apply_batch(chunk)
        elapsed = time.perf_counter() - started
        engine.detach_wal()
        wal.close()
        return elapsed, engine

    base_seconds = wal_seconds = float("inf")
    logged = None
    for _ in range(3):
        bare_elapsed, _bare = _run_bare()
        base_seconds = min(base_seconds, bare_elapsed)
        logged_elapsed, logged = _run_logged()
        wal_seconds = min(wal_seconds, logged_elapsed)

    started = time.perf_counter()
    recovered, report = recover_engine(snapshot, wal_path)
    recovery_seconds = time.perf_counter() - started
    bit_identical = (
        recovered.pagerank().tobytes() == logged.pagerank().tobytes()
        and recovered.rng_state() == logged.rng_state()
    )
    return {
        "events": applied,
        "batches": len(slices),
        "base_eps": applied / base_seconds if base_seconds else 0.0,
        "wal_eps": applied / wal_seconds if wal_seconds else 0.0,
        "overhead": (wal_seconds / base_seconds - 1.0) if base_seconds else 0.0,
        "recovery_seconds": recovery_seconds,
        "records_replayed": report.records_replayed,
        "events_replayed": report.events_replayed,
        "bit_identical": bit_identical,
    }


@register("E-FAULTS")
def run_faults(
    num_nodes: int = 900,
    num_edges: int = 10_800,
    walks_per_node: int = 3,
    num_workers: int = 2,
    num_waves: int = 24,
    wave_size: int = 12,
    walk_length: int = 160,
    seed_pool_size: int = 48,
    wal_batches: int = 12,
    wal_batch_size: int = 150,
    rng: int = 42,
) -> ExperimentResult:
    stream = twitter_like_stream(num_nodes, num_edges, rng=rng)
    cut = int(len(stream) * 0.7)
    generator = np.random.default_rng(rng)
    seed_pool = [
        int(seed) for seed in generator.choice(num_nodes, size=seed_pool_size)
    ]

    serving = _availability_phase(
        stream,
        cut,
        walks_per_node,
        num_workers,
        num_waves,
        wave_size,
        walk_length,
        seed_pool,
        generator,
    )
    with tempfile.TemporaryDirectory(prefix="repro-faults-") as workdir:
        durability = _durability_phase(
            stream, cut, walks_per_node, wal_batches, wal_batch_size, workdir
        )

    rows = [
        {
            "measure": "availability under kill schedule",
            "value": f"{100.0 * serving['availability']:.2f}%",
            "detail": (
                f"{serving['answered']}/{serving['total']} answered; "
                f"{num_workers} workers each killed once"
            ),
        },
        {
            "measure": "answers bit-identical to no-fault oracle",
            "value": f"{serving['matched']}/{serving['answered']}",
            "detail": "retries + inline fallback replay the same RNG contract",
        },
        {
            "measure": "wave latency p50 / p95 / p99 (ms)",
            "value": (
                f"{serving['wave_latency_ms']['p50']:.1f} / "
                f"{serving['wave_latency_ms']['p95']:.1f} / "
                f"{serving['wave_latency_ms']['p99']:.1f}"
            ),
            "detail": f"{num_waves} waves x {wave_size} requests",
        },
        {
            "measure": "worker restarts / batch retries",
            "value": (
                f"{serving['restarts_total']} / {int(serving['retries'])}"
            ),
            "detail": f"live at end: {serving['live_workers']}",
        },
        {
            "measure": "update throughput, no WAL (events/s)",
            "value": f"{durability['base_eps']:.0f}",
            "detail": (
                f"{durability['events']} events in "
                f"{durability['batches']} batches"
            ),
        },
        {
            "measure": "update throughput, fsync'd WAL (events/s)",
            "value": f"{durability['wal_eps']:.0f}",
            "detail": f"overhead {100.0 * durability['overhead']:.1f}%",
        },
        {
            "measure": "crash recovery (checkpoint + WAL tail)",
            "value": f"{1000.0 * durability['recovery_seconds']:.1f} ms",
            "detail": (
                f"{durability['records_replayed']} records / "
                f"{durability['events_replayed']} events replayed; "
                f"bit-identical={durability['bit_identical']}"
            ),
        },
    ]
    result = ExperimentResult(
        experiment_id="E-FAULTS",
        title="Fault-tolerant serving: availability, WAL cost, recovery",
        params={
            "nodes": num_nodes,
            "edges": num_edges,
            "workers": num_workers,
            "waves": num_waves,
            "wave_size": wave_size,
            "wal_batches": wal_batches,
            "wal_batch_size": wal_batch_size,
        },
        rows=rows,
    )
    result.notes.append(
        "kill schedule: every worker receives one seeded os._exit mid-batch "
        "(repro.faults.kill_each_worker_plan); the supervisor respawns it "
        "and re-dispatches the orphaned batch"
    )
    result.notes.append(
        "recovery bit-identity is relative to the checkpoint image — the "
        "window the serve tier maintains by truncating the WAL at publish"
    )
    result.extras = {  # machine-readable for benchmarks/run_bench.py
        "availability": serving["availability"],
        "differential": {
            "matched": serving["matched"],
            "answered": serving["answered"],
            "total": serving["total"],
        },
        "wave_latency_ms": serving["wave_latency_ms"],
        "live_workers": serving["live_workers"],
        "restarts": {str(k): v for k, v in serving["restarts"].items()},
        "restarts_total": serving["restarts_total"],
        "retries": serving["retries"],
        "wal": {
            "base_eps": durability["base_eps"],
            "wal_eps": durability["wal_eps"],
            "overhead": durability["overhead"],
        },
        "recovery": {
            "seconds": durability["recovery_seconds"],
            "records_replayed": durability["records_replayed"],
            "events_replayed": durability["events_replayed"],
            "bit_identical": durability["bit_identical"],
        },
    }
    return result
