"""Arena-backed columnar walk store — the production `WalkIndex` engine.

The object-backed :class:`~repro.core.walks.WalkStore` spends most of its
memory on CPython object headers: every stored walk step is a boxed int
inside a per-segment ``list``, and every visit-index entry is a dict slot.
At the paper's scale (``nR/ε`` ≈ billions of stored steps) that overhead —
not the algorithm — becomes the ceiling.  :class:`ColumnarWalkStore` keeps
the same :class:`~repro.core.walks.WalkIndex` contract on flat numpy
columns (DESIGN.md §6–§7):

* **Node arena** — one int64 array holding every segment's nodes
  back-to-back.  Per-segment ``offset`` / ``length`` / ``capacity`` /
  ``end_reason`` / ``parity`` columns describe the slots.  A segment that
  outgrows its slot is relocated to the arena tail (with 25% slack so
  repeated regrowth amortizes); the hole it leaves is reclaimed by
  :meth:`compact`, and :meth:`memory_stats` reports utilization honestly.
* **CSR visit index** — the inverted index ``node → (segment id, count)``
  lives in two shared arrays with per-node ``offset`` / ``length`` /
  ``capacity`` rows.  Rows are kept sorted by segment id (binary-search
  updates), and a row that outgrows its capacity is relocated with doubled
  capacity, so an edge arrival stays O(touched segments · log W).
* **Vectorized bulk build** — :meth:`bulk_add_segments` /
  :meth:`from_arrays` build the whole index with a handful of numpy passes
  (one ``lexsort`` + run-length encoding) instead of per-visit dict
  updates, which is what makes cold :meth:`IncrementalPageRank.initialize`
  and the persistence v2 load fast.

Bit-identical behavior: the store implements the :class:`WalkIndex`
determinism contract (ascending ``segment_ids_visiting``, insertion-order
``segments_starting_at``), so every engine built on it consumes the same
RNG stream as one built on the object store — the differential tests in
``tests/test_walkindex_differential.py`` pin this down exactly.
"""

from __future__ import annotations

import sys
from itertools import chain
from typing import Iterator, Sequence, Union

import numpy as np

from repro.core.walks import END_DANGLING, END_RESET, WalkIndex, WalkSegment, WalkStore
from repro.errors import ConfigurationError, WalkStateError

__all__ = [
    "BACKEND_COLUMNAR",
    "BACKEND_OBJECT",
    "ColumnarWalkStore",
    "make_walk_store",
]

BACKEND_COLUMNAR = "columnar"
BACKEND_OBJECT = "object"

#: Valid end-reason codes (shared with :mod:`repro.core.walks`).
_REASONS = (END_RESET, END_DANGLING)

#: Estimated bytes of one CPython small-int object (memory accounting).
_INT_BYTES = 28


def _grown(array: np.ndarray, capacity: int) -> np.ndarray:
    """Return ``array`` zero-extended to ``capacity`` entries."""
    out = np.zeros(capacity, dtype=array.dtype)
    out[: array.size] = array
    return out


def _normalize_bulk_args(
    segments: Sequence[Sequence[int]],
    end_reasons: Sequence[int],
    parity_offset: Union[int, Sequence[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a bulk-add argument triple; returns ``(reasons, parities)``.

    Shared by every array-backed backend (columnar and sharded) so the
    argument contract — per-segment reason, scalar-or-per-segment parity —
    cannot drift between them.
    """
    count = len(segments)
    if len(end_reasons) != count:
        raise WalkStateError(
            f"{count} segments but {len(end_reasons)} end reasons"
        )
    if isinstance(parity_offset, (int, np.integer)):
        parities = np.full(count, int(parity_offset), dtype=np.int8)
    else:
        parities = np.asarray(parity_offset, dtype=np.int8)
        if parities.size != count:
            raise WalkStateError(
                f"{count} segments but {parities.size} parity offsets"
            )
    return np.asarray(end_reasons, dtype=np.int8), parities


def _flatten_block(
    segments: Sequence[Sequence[int]], count: int
) -> tuple[np.ndarray, np.ndarray]:
    """One ``(flat, lengths)`` pair for a segment block (bulk installs)."""
    lengths = np.fromiter((len(s) for s in segments), dtype=np.int64, count=count)
    total = int(lengths.sum())
    flat = np.fromiter(
        chain.from_iterable(segments), dtype=np.int64, count=total
    )
    return flat, lengths


class ColumnarWalkStore:
    """Flat-array implementation of the :class:`WalkIndex` protocol."""

    def __init__(self, num_nodes: int = 0, *, track_sides: bool = False) -> None:
        self.track_sides = track_sides
        self.total_visits = 0
        #: True for stores attached over a shared (mmap'd) arena — every
        #: mutator raises WalkStateError; see :meth:`from_shared`.
        self._readonly = False
        # -- node arena (segment payloads) -----------------------------
        self._arena = np.empty(1024, dtype=np.int64)
        self._arena_used = 0
        # -- per-segment columns ---------------------------------------
        self._seg_off = np.zeros(64, dtype=np.int64)
        self._seg_len = np.zeros(64, dtype=np.int64)
        self._seg_cap = np.zeros(64, dtype=np.int64)
        self._seg_reason = np.zeros(64, dtype=np.int8)
        self._seg_parity = np.zeros(64, dtype=np.int8)
        self._num_segments = 0
        # -- per-node columns ------------------------------------------
        self._num_nodes = 0
        self._node_cap = 0
        self._visit_count = np.zeros(0, dtype=np.int64)
        self._side_count = np.zeros((2, 0), dtype=np.int64)
        self._vi_off = np.zeros(0, dtype=np.int64)
        self._vi_len = np.zeros(0, dtype=np.int64)
        self._vi_cap = np.zeros(0, dtype=np.int64)
        self._segments_of: list[list[int]] = []
        # -- CSR visit-index arena -------------------------------------
        self._vi_seg = np.empty(1024, dtype=np.int64)
        self._vi_cnt = np.empty(1024, dtype=np.int64)
        self._vi_used = 0
        if num_nodes:
            self.ensure_node(num_nodes - 1)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def readonly(self) -> bool:
        """True when this store is a read-only attach over a shared arena."""
        return self._readonly

    def _check_writable(self) -> None:
        if self._readonly:
            raise WalkStateError(
                "store is attached read-only over a shared arena; mutations "
                "must go through the owning coordinator process"
            )

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_segments(self) -> int:
        return self._num_segments

    def ensure_node(self, node: int) -> None:
        if node < self._num_nodes:
            return
        new_count = node + 1
        if new_count > self._node_cap:
            capacity = max(new_count, 2 * self._node_cap, 16)
            self._visit_count = _grown(self._visit_count, capacity)
            self._vi_off = _grown(self._vi_off, capacity)
            self._vi_len = _grown(self._vi_len, capacity)
            self._vi_cap = _grown(self._vi_cap, capacity)
            if self.track_sides:
                sides = np.zeros((2, capacity), dtype=np.int64)
                sides[:, : self._side_count.shape[1]] = self._side_count
                self._side_count = sides
            self._node_cap = capacity
        self._segments_of.extend([] for _ in range(new_count - self._num_nodes))
        self._num_nodes = new_count

    def _reserve_arena(self, extra: int) -> int:
        """Claim ``extra`` slots at the arena tail; returns their offset."""
        needed = self._arena_used + extra
        if needed > self._arena.size:
            replacement = np.empty(max(needed, 2 * self._arena.size), dtype=np.int64)
            replacement[: self._arena_used] = self._arena[: self._arena_used]
            self._arena = replacement
        offset = self._arena_used
        self._arena_used = needed
        return offset

    def _reserve_vi(self, extra: int) -> int:
        """Claim ``extra`` visit-index slots; returns their offset."""
        needed = self._vi_used + extra
        if needed > self._vi_seg.size:
            capacity = max(needed, 2 * self._vi_seg.size)
            for name in ("_vi_seg", "_vi_cnt"):
                old = getattr(self, name)
                replacement = np.empty(capacity, dtype=np.int64)
                replacement[: self._vi_used] = old[: self._vi_used]
                setattr(self, name, replacement)
        offset = self._vi_used
        self._vi_used = needed
        return offset

    # ------------------------------------------------------------------
    # Visit-index row maintenance
    # ------------------------------------------------------------------

    def _row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        offset = int(self._vi_off[node])
        length = int(self._vi_len[node])
        return (
            self._vi_seg[offset : offset + length],
            self._vi_cnt[offset : offset + length],
        )

    def _row_adjust(self, node: int, segment_id: int, delta: int) -> None:
        """Apply ``delta`` to one (node, segment) index entry.

        Rows stay sorted by segment id; inserts shift right (relocating to
        a doubled slot at the index-arena tail when full), zeroed entries
        shift left.
        """
        offset = int(self._vi_off[node])
        length = int(self._vi_len[node])
        row = self._vi_seg[offset : offset + length]
        idx = int(row.searchsorted(segment_id))
        if idx < length and row[idx] == segment_id:
            position = offset + idx
            updated = int(self._vi_cnt[position]) + delta
            if updated < 0:
                raise WalkStateError(
                    f"visit index underflow at node {node}, segment {segment_id}"
                )
            if updated:
                self._vi_cnt[position] = updated
            else:
                end = offset + length
                self._vi_seg[position : end - 1] = self._vi_seg[
                    position + 1 : end
                ].copy()
                self._vi_cnt[position : end - 1] = self._vi_cnt[
                    position + 1 : end
                ].copy()
                self._vi_len[node] = length - 1
            return
        if delta < 0:
            raise WalkStateError(
                f"removing absent visit entry (node {node}, segment {segment_id})"
            )
        if length == int(self._vi_cap[node]):
            capacity = max(4, 2 * length)
            relocated = self._reserve_vi(capacity)
            self._vi_seg[relocated : relocated + length] = self._vi_seg[
                offset : offset + length
            ]
            self._vi_cnt[relocated : relocated + length] = self._vi_cnt[
                offset : offset + length
            ]
            self._vi_off[node] = relocated
            self._vi_cap[node] = capacity
            offset = relocated
        end = offset + length
        self._vi_seg[offset + idx + 1 : end + 1] = self._vi_seg[
            offset + idx : end
        ].copy()
        self._vi_cnt[offset + idx + 1 : end + 1] = self._vi_cnt[
            offset + idx : end
        ].copy()
        self._vi_seg[offset + idx] = segment_id
        self._vi_cnt[offset + idx] = delta
        self._vi_len[node] = length + 1

    def _index_block(
        self,
        segment_id: int,
        nodes: np.ndarray,
        first_position: int,
        parity: int,
        sign: int,
    ) -> None:
        """Add (+1) or remove (−1) index entries for a run of positions.

        ``nodes`` occupies positions ``first_position ..`` of the segment
        (needed for side parity).  One :func:`np.unique` collapses the run
        into per-node deltas, so each touched node pays one row update.
        """
        if nodes.size == 0:
            return
        if nodes.size <= 64:
            # tiny runs (the scalar-update common case): plain dict
            # counting beats np.unique's sort + allocation overhead
            counted: dict[int, int] = {}
            for node in nodes.tolist():
                counted[node] = counted.get(node, 0) + 1
            visit_count = self._visit_count
            for node, count in counted.items():
                self._row_adjust(node, segment_id, sign * count)
                visit_count[node] += sign * count
        else:
            unique, counts = np.unique(nodes, return_counts=True)
            for node, count in zip(unique.tolist(), counts.tolist()):
                self._row_adjust(node, segment_id, sign * count)
            self._visit_count[unique] += sign * counts
        self.total_visits += sign * int(nodes.size)
        if self.track_sides:
            sides = (
                np.arange(first_position, first_position + nodes.size) + parity
            ) & 1
            for side in (0, 1):
                chosen = nodes[sides == side]
                if chosen.size:
                    u, c = np.unique(chosen, return_counts=True)
                    self._side_count[side][u] += sign * c

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------

    def _check_id(self, segment_id: int) -> None:
        if not 0 <= segment_id < self._num_segments:
            raise WalkStateError(f"unknown segment id {segment_id}")

    def _alloc_segment(self, length: int, reason: int, parity: int) -> int:
        if self._num_segments == self._seg_off.size:
            capacity = 2 * self._seg_off.size
            self._seg_off = _grown(self._seg_off, capacity)
            self._seg_len = _grown(self._seg_len, capacity)
            self._seg_cap = _grown(self._seg_cap, capacity)
            self._seg_reason = _grown(self._seg_reason, capacity)
            self._seg_parity = _grown(self._seg_parity, capacity)
        segment_id = self._num_segments
        offset = self._reserve_arena(length)
        self._seg_off[segment_id] = offset
        self._seg_len[segment_id] = length
        self._seg_cap[segment_id] = length
        self._seg_reason[segment_id] = reason
        self._seg_parity[segment_id] = parity
        self._num_segments += 1
        return segment_id

    def add_segment(self, segment: WalkSegment) -> int:
        """Register a fresh segment; returns its id."""
        self._check_writable()
        nodes = np.asarray(segment.nodes, dtype=np.int64)
        self.ensure_node(int(nodes.max()))
        segment_id = self._alloc_segment(
            nodes.size, segment.end_reason, segment.parity_offset
        )
        offset = int(self._seg_off[segment_id])
        self._arena[offset : offset + nodes.size] = nodes
        self._segments_of[int(nodes[0])].append(segment_id)
        self._index_block(segment_id, nodes, 0, segment.parity_offset, +1)
        return segment_id

    def bulk_add_segments(
        self,
        segments: Sequence[Sequence[int]],
        end_reasons: Sequence[int],
        parity_offset: Union[int, Sequence[int]] = 0,
    ) -> None:
        """Register many fresh segments at once (ids assigned in order).

        On an empty store the whole visit index is built with a handful of
        vectorized passes; on a non-empty store this falls back to
        :meth:`add_segment` per segment.
        """
        self._check_writable()
        count = len(segments)
        if count == 0:
            return
        reasons, parities = _normalize_bulk_args(
            segments, end_reasons, parity_offset
        )
        if self._num_segments:
            for nodes, reason, parity in zip(segments, reasons, parities):
                self.add_segment(
                    WalkSegment(list(nodes), int(reason), parity_offset=int(parity))
                )
            return
        flat, lengths = _flatten_block(segments, count)
        self._append_block(flat, lengths, reasons, parities)

    def _append_block(
        self,
        flat: np.ndarray,
        lengths: np.ndarray,
        reasons: np.ndarray,
        parities: np.ndarray,
        *,
        adopt: bool = False,
    ) -> None:
        """Vectorized install of a whole segment block into an empty store.

        With ``adopt=True`` the ``flat`` array itself *becomes* the arena
        (zero-copy — this is how :meth:`from_shared` maps an mmap'd
        snapshot straight in); otherwise its contents are copied to the
        store-owned arena tail.
        """
        if self._num_segments or self.total_visits:
            raise WalkStateError("bulk install requires an empty store")
        count = int(lengths.size)
        total = int(flat.size)
        if int(lengths.sum()) != total:
            raise WalkStateError("corrupt block: arena length mismatch")
        if count and int(lengths.min()) < 1:
            raise WalkStateError("a walk segment must contain at least its source")
        if not np.isin(reasons, _REASONS).all():
            raise WalkStateError("corrupt block: unknown end reason")
        if count == 0:
            return
        if int(flat.min()) < 0:
            raise WalkStateError("corrupt block: negative node id")
        self.ensure_node(int(flat.max()))
        offsets = np.cumsum(lengths) - lengths
        # -- arena + segment columns -----------------------------------
        if adopt:
            self._arena = flat
            self._arena_used = total
            base = 0
        else:
            base = self._reserve_arena(total)
            self._arena[base : base + total] = flat
        if count > self._seg_off.size:
            for name in ("_seg_off", "_seg_len", "_seg_cap"):
                setattr(self, name, _grown(getattr(self, name), count))
            for name in ("_seg_reason", "_seg_parity"):
                setattr(self, name, _grown(getattr(self, name), count))
        self._seg_off[:count] = offsets + base
        self._seg_len[:count] = lengths
        self._seg_cap[:count] = lengths
        self._seg_reason[:count] = reasons
        self._seg_parity[:count] = parities
        self._num_segments = count
        # -- segments_of: ids grouped by source, ascending -------------
        start_nodes = flat[offsets]
        order = np.argsort(start_nodes, kind="stable")
        per_node = np.bincount(start_nodes, minlength=self._num_nodes)
        chunks = np.split(
            np.arange(count, dtype=np.int64)[order], np.cumsum(per_node)[:-1]
        )
        self._segments_of = [chunk.tolist() for chunk in chunks]
        # -- CSR visit index + counters --------------------------------
        self._install_index(flat, lengths, offsets, parities)

    def _install_index(
        self,
        flat: np.ndarray,
        lengths: np.ndarray,
        offsets: np.ndarray,
        parities: np.ndarray,
    ) -> None:
        """(Re)build the whole CSR visit index and counters, vectorized.

        ``flat`` is every live segment's nodes back-to-back in id order
        (``offsets``/``lengths`` delimiting them).  One ``lexsort`` plus a
        run-length encode produces all (node, segment, count) entries with
        rows sorted by segment id — exactly the state incremental row
        maintenance preserves.  Callers must have zeroed/reset the index
        state (``_vi_used``, counters) first.
        """
        count = int(lengths.size)
        total = int(flat.size)
        if count == 0 or total == 0:
            return
        segment_ids = np.repeat(np.arange(count, dtype=np.int64), lengths)
        order = np.lexsort((segment_ids, flat))
        sorted_nodes = flat[order]
        sorted_segments = segment_ids[order]
        change = np.empty(total, dtype=bool)
        change[0] = True
        change[1:] = (sorted_nodes[1:] != sorted_nodes[:-1]) | (
            sorted_segments[1:] != sorted_segments[:-1]
        )
        entry_starts = np.flatnonzero(change)
        entries = int(entry_starts.size)
        vi_base = self._reserve_vi(entries)
        self._vi_seg[vi_base : vi_base + entries] = sorted_segments[entry_starts]
        self._vi_cnt[vi_base : vi_base + entries] = np.diff(
            np.append(entry_starts, total)
        )
        row_lengths = np.bincount(
            sorted_nodes[entry_starts], minlength=self._num_nodes
        )
        self._vi_len[: self._num_nodes] = row_lengths
        self._vi_cap[: self._num_nodes] = row_lengths
        self._vi_off[: self._num_nodes] = (
            np.cumsum(row_lengths) - row_lengths + vi_base
        )
        # -- counters ---------------------------------------------------
        self._visit_count[: self._num_nodes] = np.bincount(
            flat, minlength=self._num_nodes
        )
        self.total_visits = total
        if self.track_sides:
            positions = np.arange(total, dtype=np.int64) - np.repeat(
                offsets, lengths
            )
            sides = (positions + np.repeat(parities.astype(np.int64), lengths)) & 1
            for side in (0, 1):
                self._side_count[side][: self._num_nodes] = np.bincount(
                    flat[sides == side], minlength=self._num_nodes
                )

    def _rebuild_index(self) -> None:
        """Recompute the visit index from the arena (one vectorized pass)."""
        count = self._num_segments
        lengths = self._seg_len[:count]
        total = int(lengths.sum())
        compact_offsets = np.cumsum(lengths) - lengths
        gather = np.repeat(
            self._seg_off[:count] - compact_offsets, lengths
        ) + np.arange(total, dtype=np.int64)
        flat = self._arena[gather]
        self._vi_used = 0
        self._vi_len[: self._num_nodes] = 0
        self._vi_cap[: self._num_nodes] = 0
        self._visit_count[: self._num_nodes] = 0
        if self.track_sides:
            self._side_count[:, : self._num_nodes] = 0
        self.total_visits = 0
        self._install_index(
            flat, lengths, compact_offsets, self._seg_parity[:count]
        )

    @classmethod
    def from_arrays(
        cls,
        flat: np.ndarray,
        lengths: np.ndarray,
        end_reasons: np.ndarray,
        parity_offsets: np.ndarray,
        *,
        num_nodes: int = 0,
        track_sides: bool = False,
    ) -> "ColumnarWalkStore":
        """Build a store straight from persisted columnar arrays.

        This is the persistence v2 load path: the flat node arena is
        adopted as-is and the inverted visit index is rebuilt with the
        vectorized block install — no per-segment replay.
        """
        store = cls(num_nodes, track_sides=track_sides)
        store._append_block(
            np.ascontiguousarray(flat, dtype=np.int64),
            np.ascontiguousarray(lengths, dtype=np.int64),
            np.ascontiguousarray(end_reasons, dtype=np.int8),
            np.ascontiguousarray(parity_offsets, dtype=np.int8),
        )
        return store

    @classmethod
    def from_shared(
        cls,
        flat: np.ndarray,
        lengths: np.ndarray,
        end_reasons: np.ndarray,
        parity_offsets: np.ndarray,
        *,
        num_nodes: int = 0,
        track_sides: bool = False,
    ) -> "ColumnarWalkStore":
        """Attach a *read-only* store over an already-materialized arena.

        Unlike :meth:`from_arrays`, the flat node arena is adopted without
        a copy — pass an ``np.load(..., mmap_mode="r")`` view of a shared
        snapshot and N worker processes share one set of physical pages
        through the OS page cache.  Only the derived structures (CSR visit
        index, per-segment columns, ``segments_of``) are built privately,
        which is a small fraction of the arena's footprint.

        The attached store is write-protected: every mutator raises
        :class:`WalkStateError`.  Updates happen in the owning coordinator,
        which publishes a new snapshot generation for workers to re-attach
        (see :mod:`repro.serve.epochs`).
        """
        arena = np.asarray(flat)
        if arena.dtype != np.int64 or arena.ndim != 1:
            raise WalkStateError(
                "shared arena must be a one-dimensional int64 vector, got "
                f"dtype={arena.dtype}, ndim={arena.ndim}"
            )
        store = cls(num_nodes, track_sides=track_sides)
        store._append_block(
            arena,
            np.ascontiguousarray(lengths, dtype=np.int64),
            np.ascontiguousarray(end_reasons, dtype=np.int8),
            np.ascontiguousarray(parity_offsets, dtype=np.int8),
            adopt=True,
        )
        store._readonly = True
        return store

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Compacted ``(flat, lengths, end_reasons, parities)`` columns.

        The flat array holds live segment payloads back-to-back in id
        order (holes from relocations are squeezed out); when the arena is
        already compact this is a single slice copy.
        """
        count = self._num_segments
        lengths = self._seg_len[:count].copy()
        total = int(lengths.sum())
        compact_offsets = np.cumsum(lengths) - lengths
        if count == 0:
            flat = np.zeros(0, dtype=np.int64)
        elif (
            self._arena_used == total
            and np.array_equal(self._seg_off[:count], compact_offsets)
        ):
            flat = self._arena[:total].copy()
        else:
            gather = np.repeat(
                self._seg_off[:count] - compact_offsets, lengths
            ) + np.arange(total, dtype=np.int64)
            flat = self._arena[gather]
        return (
            flat,
            lengths,
            self._seg_reason[:count].copy(),
            self._seg_parity[:count].copy(),
        )

    def compact(self) -> None:
        """Squeeze relocation holes out of both arenas (ids preserved)."""
        self._check_writable()
        rebuilt = ColumnarWalkStore.from_arrays(
            *self.to_arrays(),
            num_nodes=self._num_nodes,
            track_sides=self.track_sides,
        )
        self.__dict__.update(rebuilt.__dict__)

    def get(self, segment_id: int) -> WalkSegment:
        """A *materialized copy* of the segment (mutations via the store)."""
        self._check_id(segment_id)
        offset = int(self._seg_off[segment_id])
        length = int(self._seg_len[segment_id])
        return WalkSegment(
            self._arena[offset : offset + length].tolist(),
            int(self._seg_reason[segment_id]),
            parity_offset=int(self._seg_parity[segment_id]),
        )

    def replace_suffix(
        self,
        segment_id: int,
        keep_until: int,
        new_suffix: list[int],
        end_reason: int,
    ) -> None:
        """Rewrite a segment as ``nodes[:keep_until+1] + new_suffix``.

        Index and counters update incrementally (only the changed suffix
        is touched).  If the rewritten segment outgrows its arena slot it
        is relocated to the tail with 25% slack.
        """
        self._check_writable()
        self._check_id(segment_id)
        if end_reason not in _REASONS:
            raise WalkStateError(f"unknown end_reason {end_reason!r}")
        old_length = int(self._seg_len[segment_id])
        if not 0 <= keep_until < old_length:
            raise WalkStateError(
                f"keep_until={keep_until} out of range for segment of length "
                f"{old_length}"
            )
        offset = int(self._seg_off[segment_id])
        parity = int(self._seg_parity[segment_id])
        suffix = np.asarray(new_suffix, dtype=np.int64)
        if suffix.size:
            self.ensure_node(int(suffix.max()))
        self._index_block(
            segment_id,
            self._arena[offset + keep_until + 1 : offset + old_length],
            keep_until + 1,
            parity,
            -1,
        )
        new_length = keep_until + 1 + int(suffix.size)
        if new_length > int(self._seg_cap[segment_id]):
            capacity = new_length + (new_length >> 2) + 4
            relocated = self._reserve_arena(capacity)
            self._arena[relocated : relocated + keep_until + 1] = self._arena[
                offset : offset + keep_until + 1
            ]
            self._seg_off[segment_id] = relocated
            self._seg_cap[segment_id] = capacity
            offset = relocated
        self._arena[offset + keep_until + 1 : offset + new_length] = suffix
        self._seg_len[segment_id] = new_length
        self._seg_reason[segment_id] = end_reason
        self._index_block(segment_id, suffix, keep_until + 1, parity, +1)

    def rebuild_segment(
        self, segment_id: int, nodes: list[int], end_reason: int
    ) -> None:
        """Replace a segment wholesale (resimulate-from-source policy)."""
        self._check_writable()
        self._check_id(segment_id)
        source = self.source_of(segment_id)
        if nodes[0] != source:
            raise WalkStateError(
                f"rebuilt segment must keep source {source}, got {nodes[0]}"
            )
        if end_reason not in _REASONS:
            raise WalkStateError(f"unknown end_reason {end_reason!r}")
        replacement = np.asarray(nodes, dtype=np.int64)
        self.ensure_node(int(replacement.max()))
        offset = int(self._seg_off[segment_id])
        old_length = int(self._seg_len[segment_id])
        parity = int(self._seg_parity[segment_id])
        self._index_block(
            segment_id, self._arena[offset : offset + old_length], 0, parity, -1
        )
        if replacement.size > int(self._seg_cap[segment_id]):
            capacity = int(replacement.size) + (int(replacement.size) >> 2) + 4
            offset = self._reserve_arena(capacity)
            self._seg_off[segment_id] = offset
            self._seg_cap[segment_id] = capacity
        self._arena[offset : offset + replacement.size] = replacement
        self._seg_len[segment_id] = replacement.size
        self._seg_reason[segment_id] = end_reason
        self._index_block(segment_id, replacement, 0, parity, +1)

    def _write_payload(
        self, segment_id: int, keep_until: int, nodes: Sequence[int], end_reason: int
    ) -> None:
        """Arena write of one update with *no* index maintenance.

        Same validation and relocation rules as :meth:`replace_suffix` /
        :meth:`rebuild_segment`; callers must follow up with
        :meth:`_rebuild_index`.
        """
        self._check_writable()
        self._check_id(segment_id)
        if end_reason not in _REASONS:
            raise WalkStateError(f"unknown end_reason {end_reason!r}")
        suffix = np.asarray(nodes, dtype=np.int64)
        offset = int(self._seg_off[segment_id])
        old_length = int(self._seg_len[segment_id])
        if keep_until < 0:
            if suffix[0] != self._arena[offset]:
                raise WalkStateError(
                    f"rebuilt segment must keep source "
                    f"{int(self._arena[offset])}, got {int(suffix[0])}"
                )
            keep = 0
        else:
            if not 0 <= keep_until < old_length:
                raise WalkStateError(
                    f"keep_until={keep_until} out of range for segment of "
                    f"length {old_length}"
                )
            keep = keep_until + 1
        if suffix.size:
            self.ensure_node(int(suffix.max()))
        new_length = keep + int(suffix.size)
        if new_length > int(self._seg_cap[segment_id]):
            capacity = new_length + (new_length >> 2) + 4
            relocated = self._reserve_arena(capacity)
            if keep:
                self._arena[relocated : relocated + keep] = self._arena[
                    offset : offset + keep
                ]
            self._seg_off[segment_id] = relocated
            self._seg_cap[segment_id] = capacity
            offset = relocated
        self._arena[offset + keep : offset + new_length] = suffix
        self._seg_len[segment_id] = new_length
        self._seg_reason[segment_id] = end_reason

    def _write_payloads_bulk(self, updates) -> bool:
        """Vectorized arena write of a whole update batch (no index work).

        Semantically the per-entry :meth:`_write_payload` loop, but every
        phase — validation, relocation, prefix copies, tail scatter — is a
        numpy pass, so large batch repairs spend their time in
        GIL-releasing kernels (which is what lets the sharded engine's
        thread pool scale them).  Returns ``False`` when the batch targets
        a segment twice (order would matter; the caller falls back to the
        sequential loop).  Callers must follow up with
        :meth:`_rebuild_index`.
        """
        self._check_writable()
        count = len(updates)
        ids = np.fromiter((u[0] for u in updates), dtype=np.int64, count=count)
        if np.unique(ids).size != count:
            return False
        if count and not (0 <= int(ids.min()) and int(ids.max()) < self._num_segments):
            bad = ids[(ids < 0) | (ids >= self._num_segments)][0]
            raise WalkStateError(f"unknown segment id {int(bad)}")
        keeps = np.fromiter((u[1] for u in updates), dtype=np.int64, count=count)
        reasons = np.fromiter((u[3] for u in updates), dtype=np.int64, count=count)
        if not np.isin(reasons, _REASONS).all():
            bad = reasons[~np.isin(reasons, _REASONS)][0]
            raise WalkStateError(f"unknown end_reason {int(bad)!r}")
        tail_lengths = np.fromiter(
            (len(u[2]) for u in updates), dtype=np.int64, count=count
        )
        total = int(tail_lengths.sum())
        flat_tails = np.fromiter(
            chain.from_iterable(u[2] for u in updates), dtype=np.int64, count=total
        )
        old_lengths = self._seg_len[ids]
        rebuild = keeps < 0
        if np.any(~rebuild & (keeps >= old_lengths)):
            which = int(np.flatnonzero(~rebuild & (keeps >= old_lengths))[0])
            raise WalkStateError(
                f"keep_until={int(keeps[which])} out of range for segment of "
                f"length {int(old_lengths[which])}"
            )
        if np.any(rebuild & (tail_lengths == 0)):
            raise WalkStateError(
                "a walk segment must contain at least its source"
            )
        tail_offsets = np.cumsum(tail_lengths) - tail_lengths
        if np.any(rebuild):
            # sources must be preserved; read them before any arena write
            sources = self._arena[self._seg_off[ids[rebuild]]]
            heads = flat_tails[tail_offsets[rebuild]]
            if not np.array_equal(sources, heads):
                which = int(np.flatnonzero(sources != heads)[0])
                raise WalkStateError(
                    f"rebuilt segment must keep source {int(sources[which])}, "
                    f"got {int(heads[which])}"
                )
        if total and int(flat_tails.max()) >= self._num_nodes:
            self.ensure_node(int(flat_tails.max()))
        keep = np.where(rebuild, 0, keeps + 1)
        new_lengths = keep + tail_lengths
        relocate = new_lengths > self._seg_cap[ids]
        if np.any(relocate):
            reloc_ids = ids[relocate]
            prefix_lengths = keep[relocate]
            new_caps = new_lengths[relocate]
            new_caps = new_caps + (new_caps >> 2) + 4
            base = self._reserve_arena(int(new_caps.sum()))
            new_offsets = base + np.cumsum(new_caps) - new_caps
            total_prefix = int(prefix_lengths.sum())
            if total_prefix:
                run = np.cumsum(prefix_lengths) - prefix_lengths
                steps = np.arange(total_prefix, dtype=np.int64)
                source_index = (
                    np.repeat(self._seg_off[reloc_ids] - run, prefix_lengths)
                    + steps
                )
                dest_index = (
                    np.repeat(new_offsets - run, prefix_lengths) + steps
                )
                self._arena[dest_index] = self._arena[source_index]
            self._seg_off[reloc_ids] = new_offsets
            self._seg_cap[reloc_ids] = new_caps
        if total:
            dest = np.repeat(
                self._seg_off[ids] + keep - tail_offsets, tail_lengths
            ) + np.arange(total, dtype=np.int64)
            self._arena[dest] = flat_tails
        self._seg_len[ids] = new_lengths
        self._seg_reason[ids] = reasons
        return True

    def apply_segment_updates(
        self, updates: Sequence[tuple[int, int, list[int], int]]
    ) -> None:
        """Apply many ``(segment_id, keep_until, tail, end_reason)`` rewrites.

        ``keep_until == -1`` means a wholesale rebuild (the tail includes
        the source).  Semantically identical to calling
        :meth:`replace_suffix` / :meth:`rebuild_segment` per entry, but
        when the batch touches a large fraction of the store the payloads
        are written with one vectorized pass (:meth:`_write_payloads_bulk`)
        and the index is rebuilt in another, instead of thousands of
        per-row edits — this is what keeps ``apply_batch`` a few numpy
        passes on the columnar backend.
        """
        self._check_writable()
        if not updates:
            return
        if len(updates) >= 64 and 8 * len(updates) >= self._num_segments:
            if not self._write_payloads_bulk(updates):
                # duplicate target ids: order matters, apply sequentially
                for segment_id, keep_until, tail, end_reason in updates:
                    self._write_payload(segment_id, keep_until, tail, end_reason)
            self._rebuild_index()
            return
        for segment_id, keep_until, tail, end_reason in updates:
            if keep_until < 0:
                self.rebuild_segment(segment_id, tail, end_reason)
            else:
                self.replace_suffix(segment_id, keep_until, tail, end_reason)

    # ------------------------------------------------------------------
    # Per-segment columns
    # ------------------------------------------------------------------

    def segment_length(self, segment_id: int) -> int:
        self._check_id(segment_id)
        return int(self._seg_len[segment_id])

    def segment_view(self, segment_id: int) -> np.ndarray:
        """Read-only zero-copy view of the segment's nodes.

        Valid until the next store mutation (the arena may be reallocated
        or the slot rewritten) — consume it immediately.
        """
        self._check_id(segment_id)
        offset = int(self._seg_off[segment_id])
        length = int(self._seg_len[segment_id])
        view = self._arena[offset : offset + length]
        view.flags.writeable = False
        return view

    def segment_nodes(self, segment_id: int) -> list[int]:
        self._check_id(segment_id)
        offset = int(self._seg_off[segment_id])
        length = int(self._seg_len[segment_id])
        return self._arena[offset : offset + length].tolist()

    def end_reason_of(self, segment_id: int) -> int:
        self._check_id(segment_id)
        return int(self._seg_reason[segment_id])

    def parity_of(self, segment_id: int) -> int:
        self._check_id(segment_id)
        return int(self._seg_parity[segment_id])

    def source_of(self, segment_id: int) -> int:
        self._check_id(segment_id)
        return int(self._arena[self._seg_off[segment_id]])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def visits_of(self, node: int) -> dict[int, int]:
        """Mapping ``segment id -> visit count`` for segments visiting ``node``."""
        if node >= self._num_nodes:
            return {}
        row_seg, row_cnt = self._row(node)
        return dict(zip(row_seg.tolist(), row_cnt.tolist()))

    def segment_ids_visiting(self, node: int) -> list[int]:
        """Ids of segments visiting ``node``, ascending (normative order)."""
        if node >= self._num_nodes:
            return []
        return self._row(node)[0].tolist()

    def segments_starting_at(self, node: int) -> list[int]:
        """Ids of segments whose source is ``node``, in insertion order."""
        if node >= self._num_nodes:
            return []
        return list(self._segments_of[node])

    def segment_views_starting_at(self, node: int) -> list[np.ndarray]:
        """Zero-copy node views of ``node``'s segments, in insertion order.

        The query kernel's bulk fetch: one arena slice per stored segment,
        no materialization.  Views are read-only and valid until the next
        store mutation — consume them within the current query batch.
        """
        if node >= self._num_nodes:
            return []
        segment_ids = self._segments_of[node]
        if not segment_ids:
            return []
        # one read-only alias; its slices inherit non-writeability
        arena = self._arena[:]
        arena.flags.writeable = False
        offsets = self._seg_off[segment_ids]
        ends = (offsets + self._seg_len[segment_ids]).tolist()
        return [
            arena[offset:end]
            for offset, end in zip(offsets.tolist(), ends)
        ]

    def visit_count(self, node: int) -> int:
        """``X(v)``: total visits to ``node`` across all segments."""
        if node >= self._num_nodes:
            return 0
        return int(self._visit_count[node])

    def distinct_segment_count(self, node: int) -> int:
        """``W(v)``: number of distinct segments visiting ``node``."""
        if node >= self._num_nodes:
            return 0
        return int(self._vi_len[node])

    def side_visit_count(self, node: int, side: int) -> int:
        """Visits to ``node`` on ``side`` (0 = hub, 1 = authority)."""
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        if node >= self._num_nodes:
            return 0
        return int(self._side_count[side][node])

    def visit_count_array(self) -> np.ndarray:
        return self._visit_count[: self._num_nodes].copy()

    def side_visit_count_array(self, side: int) -> np.ndarray:
        if not self.track_sides:
            raise WalkStateError("store was built without side tracking")
        return self._side_count[side][: self._num_nodes].copy()

    def iter_segments(self) -> Iterator[tuple[int, WalkSegment]]:
        for segment_id in range(self._num_segments):
            yield segment_id, self.get(segment_id)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Resident bytes: exact for the numpy columns, estimated for the
        small per-node ``segments_of`` lists."""
        total = (
            self._arena.nbytes
            + self._vi_seg.nbytes
            + self._vi_cnt.nbytes
            + self._seg_off.nbytes
            + self._seg_len.nbytes
            + self._seg_cap.nbytes
            + self._seg_reason.nbytes
            + self._seg_parity.nbytes
            + self._visit_count.nbytes
            + self._vi_off.nbytes
            + self._vi_len.nbytes
            + self._vi_cap.nbytes
            + self._side_count.nbytes
        )
        total += sys.getsizeof(self._segments_of)
        for owned in self._segments_of:
            total += sys.getsizeof(owned) + _INT_BYTES * len(owned)
        return total

    def memory_stats(self) -> dict:
        """Footprint breakdown including arena/index utilization."""
        live = int(self._seg_len[: self._num_segments].sum())
        index_live = int(self._vi_len[: self._num_nodes].sum())
        return {
            "bytes": self.memory_bytes(),
            "arena_capacity": int(self._arena.size),
            "arena_used": int(self._arena_used),
            "arena_live": live,
            "arena_utilization": live / self._arena_used if self._arena_used else 1.0,
            "index_capacity": int(self._vi_seg.size),
            "index_used": int(self._vi_used),
            "index_live": index_live,
            "index_utilization": (
                index_live / self._vi_used if self._vi_used else 1.0
            ),
        }

    @property
    def arena_utilization(self) -> float:
        """Fraction of tail-allocated arena slots holding live data."""
        if not self._arena_used:
            return 1.0
        return int(self._seg_len[: self._num_segments].sum()) / self._arena_used

    # ------------------------------------------------------------------
    # Invariant checking (tests and failure injection)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Recompute every counter/index from the arena and compare.

        Raises :class:`WalkStateError` on any inconsistency, including
        structural ones specific to this backend (slot bounds, row
        sortedness, ownership lists).
        """
        n = self._num_nodes
        expected_visits: list[dict[int, int]] = [{} for _ in range(n)]
        expected_count = np.zeros(n, dtype=np.int64)
        expected_sides = np.zeros((2, n), dtype=np.int64)
        expected_starting: list[list[int]] = [[] for _ in range(n)]
        expected_total = 0
        for segment_id in range(self._num_segments):
            offset = int(self._seg_off[segment_id])
            length = int(self._seg_len[segment_id])
            if length < 1:
                raise WalkStateError(f"segment {segment_id} is empty")
            if length > int(self._seg_cap[segment_id]):
                raise WalkStateError(f"segment {segment_id} overflows its slot")
            if offset < 0 or offset + length > self._arena_used:
                raise WalkStateError(f"segment {segment_id} outside the arena")
            if int(self._seg_reason[segment_id]) not in _REASONS:
                raise WalkStateError(f"segment {segment_id} has a bad end reason")
            nodes = self._arena[offset : offset + length]
            parity = int(self._seg_parity[segment_id])
            expected_starting[int(nodes[0])].append(segment_id)
            for position, node in enumerate(nodes.tolist()):
                bucket = expected_visits[node]
                bucket[segment_id] = bucket.get(segment_id, 0) + 1
                expected_count[node] += 1
                expected_total += 1
                if self.track_sides:
                    expected_sides[(position + parity) % 2][node] += 1
        for node in range(n):
            row_seg, row_cnt = self._row(node)
            if row_seg.size and not np.all(row_seg[1:] > row_seg[:-1]):
                raise WalkStateError(f"visit-index row {node} not sorted")
            if dict(zip(row_seg.tolist(), row_cnt.tolist())) != expected_visits[node]:
                raise WalkStateError("visit index diverged from segments")
        if not np.array_equal(expected_count, self._visit_count[:n]):
            raise WalkStateError("visit_count diverged from segments")
        if expected_total != self.total_visits:
            raise WalkStateError("total_visits diverged from segments")
        if self.track_sides and not np.array_equal(
            expected_sides, self._side_count[:, :n]
        ):
            raise WalkStateError("side counters diverged from segments")
        if expected_starting != self._segments_of:
            raise WalkStateError("segments_of diverged from segments")

    def __repr__(self) -> str:
        return (
            f"ColumnarWalkStore(nodes={self._num_nodes}, "
            f"segments={self._num_segments}, visits={self.total_visits}, "
            f"arena_utilization={self.arena_utilization:.2f})"
        )


def make_walk_store(
    num_nodes: int = 0,
    *,
    track_sides: bool = False,
    backend: str = BACKEND_COLUMNAR,
) -> WalkIndex:
    """Instantiate a :class:`WalkIndex` backend by name.

    ``"columnar"`` (default) and ``"object"`` select the flat backends;
    ``"sharded"`` / ``"sharded:<count>"`` select a hash-partitioned
    :class:`~repro.core.sharded_walks.ShardedWalkIndex` of columnar shards
    (``"sharded"`` alone uses the default shard count).
    """
    if backend == BACKEND_COLUMNAR:
        return ColumnarWalkStore(num_nodes, track_sides=track_sides)
    if backend == BACKEND_OBJECT:
        return WalkStore(num_nodes, track_sides=track_sides)
    # deferred import: sharded_walks composes ColumnarWalkStore shards
    from repro.core.sharded_walks import ShardedWalkIndex, parse_sharded_backend

    num_shards = parse_sharded_backend(backend)
    if num_shards is not None:
        return ShardedWalkIndex(
            num_nodes, track_sides=track_sides, num_shards=num_shards
        )
    raise ConfigurationError(
        f"walk-store backend must be '{BACKEND_COLUMNAR}', "
        f"'{BACKEND_OBJECT}', 'sharded', or 'sharded:<count>', got {backend!r}"
    )
