"""Unit tests for the CSR snapshot and the vectorized batch walker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.walks import END_DANGLING, END_RESET, simulate_reset_walk
from repro.graph.csr import CSRGraph, batch_reset_walks
from repro.graph.generators import directed_cycle, directed_erdos_renyi


class TestCSRGraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([1, 2]), indices=np.array([0]))
        with pytest.raises(ValueError):
            CSRGraph(indptr=np.array([0, 3]), indices=np.array([0]))

    def test_shape_accessors(self, tiny_graph):
        csr = tiny_graph.to_csr()
        assert csr.num_nodes == tiny_graph.num_nodes
        assert csr.num_edges == tiny_graph.num_edges


class TestBatchWalker:
    def test_segments_follow_edges(self, random_graph):
        csr = random_graph.to_csr()
        starts = list(range(random_graph.num_nodes)) * 3
        result = batch_reset_walks(csr, starts, 0.3, rng=4)
        assert len(result.segments) == len(starts)
        for start, segment in zip(starts, result.segments):
            assert segment[0] == start
            for a, b in zip(segment, segment[1:]):
                assert random_graph.has_edge(a, b)

    def test_end_reasons(self, tiny_graph):
        # node 3 is dangling: any walk stepping into it that then draws
        # "continue" must end DANGLING *at node 3*.
        csr = tiny_graph.to_csr()
        result = batch_reset_walks(csr, [0] * 2000, 0.2, rng=9)
        dangling = [
            seg
            for seg, reason in zip(result.segments, result.end_reasons)
            if reason == END_DANGLING
        ]
        assert dangling, "with 2000 walks some must strand at node 3"
        assert all(seg[-1] == 3 for seg in dangling)

    def test_mean_length_matches_geometric(self):
        # On a cycle (no dangling) segment node-count is Geometric(eps),
        # mean 1/eps.
        graph = directed_cycle(11)
        csr = graph.to_csr()
        eps = 0.25
        result = batch_reset_walks(csr, [0] * 20000, eps, rng=3)
        mean_length = np.mean([len(seg) for seg in result.segments])
        assert abs(mean_length - 1 / eps) < 0.1

    def test_immediate_reset_segments_are_single_node(self):
        graph = directed_cycle(5)
        result = batch_reset_walks(graph.to_csr(), [2] * 100, 1.0, rng=0)
        assert all(seg == [2] for seg in result.segments)
        assert (result.end_reasons == END_RESET).all()

    def test_empty_starts(self, cycle_graph):
        result = batch_reset_walks(cycle_graph.to_csr(), [], 0.2, rng=0)
        assert result.segments == []
        assert result.total_visits() == 0

    def test_invalid_eps(self, cycle_graph):
        with pytest.raises(ValueError):
            batch_reset_walks(cycle_graph.to_csr(), [0], 0.0, rng=0)
        with pytest.raises(ValueError):
            batch_reset_walks(cycle_graph.to_csr(), [0], 1.5, rng=0)

    def test_max_steps_cap_counts(self):
        graph = directed_cycle(3)
        result = batch_reset_walks(graph.to_csr(), [0] * 50, 0.01, rng=1, max_steps=5)
        assert result.capped > 0
        assert all(len(seg) <= 6 for seg in result.segments)

    def test_matches_scalar_walker_distribution(self):
        """Batch and scalar walkers must agree on visit distribution."""
        graph = directed_erdos_renyi(20, 80, rng=2)
        eps = 0.3
        trials = 6000
        batch = batch_reset_walks(graph.to_csr(), [0] * trials, eps, rng=5)
        batch_visits = np.zeros(20)
        for seg in batch.segments:
            for node in seg:
                batch_visits[node] += 1
        scalar_visits = np.zeros(20)
        rng = np.random.default_rng(6)
        for _ in range(trials):
            seg = simulate_reset_walk(graph, 0, eps, rng)
            for node in seg.nodes:
                scalar_visits[node] += 1
        batch_freq = batch_visits / batch_visits.sum()
        scalar_freq = scalar_visits / scalar_visits.sum()
        assert np.abs(batch_freq - scalar_freq).sum() < 0.05
