"""Property-based tests: DynamicDiGraph against a set-based model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DynamicDiGraph

NODES = 8

# An operation is (kind, u, v); "toggle" adds the edge if absent, else removes.
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODES - 1),
        st.integers(min_value=0, max_value=NODES - 1),
    ),
    max_size=120,
)


@given(operations)
@settings(max_examples=200, deadline=None)
def test_graph_matches_set_model(ops):
    graph = DynamicDiGraph(NODES)
    model: set[tuple[int, int]] = set()
    for u, v in ops:
        if (u, v) in model:
            graph.remove_edge(u, v)
            model.discard((u, v))
        else:
            graph.add_edge(u, v)
            model.add((u, v))
    assert set(graph.edges()) == model
    assert graph.num_edges == len(model)
    for node in range(NODES):
        assert set(graph.out_neighbors(node)) == {v for u, v in model if u == node}
        assert set(graph.in_neighbors(node)) == {u for u, v in model if v == node}
        assert graph.out_degree(node) == len(graph.out_neighbors(node))
        assert graph.in_degree(node) == len(graph.in_neighbors(node))


@given(operations)
@settings(max_examples=100, deadline=None)
def test_csr_snapshot_agrees_with_graph(ops):
    graph = DynamicDiGraph(NODES)
    applied: set[tuple[int, int]] = set()
    for u, v in ops:
        if (u, v) in applied:
            graph.remove_edge(u, v)
            applied.discard((u, v))
        else:
            graph.add_edge(u, v)
            applied.add((u, v))
    out_csr = graph.to_csr("out")
    in_csr = graph.to_csr("in")
    for node in range(NODES):
        assert sorted(out_csr.neighbors(node).tolist()) == sorted(
            graph.out_neighbors(node)
        )
        assert sorted(in_csr.neighbors(node).tolist()) == sorted(
            graph.in_neighbors(node)
        )
    assert out_csr.num_edges == in_csr.num_edges == graph.num_edges


@given(operations, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_degree_arrays_consistent(ops, seed):
    graph = DynamicDiGraph(NODES)
    applied: set[tuple[int, int]] = set()
    for u, v in ops:
        if (u, v) not in applied:
            graph.add_edge(u, v)
            applied.add((u, v))
    out = graph.out_degree_array()
    inn = graph.in_degree_array()
    assert out.sum() == inn.sum() == graph.num_edges
    # sampling respects adjacency
    rng = np.random.default_rng(seed)
    for node in range(NODES):
        if out[node]:
            assert graph.random_out_neighbor(node, rng) in graph.out_neighbors(node)
        if inn[node]:
            assert graph.random_in_neighbor(node, rng) in graph.in_neighbors(node)
