"""repro.faults — deterministic fault injection for the serve stack.

Robustness claims need falsifiable tests: "the frontend survives a worker
crash" is only meaningful if a test can crash a worker at a *chosen,
reproducible* point and then assert bit-identical answers against a
fault-free run.  This package is that chooser.  A :class:`FaultPlan` is a
seeded, picklable schedule of :class:`FaultRule` entries; components with
a hook point (the frontend dispatcher, the worker loop, the arena
publisher, the write-ahead log) call :meth:`FaultPlan.fire` at named
sites and interpret the returned rule — kill the process, sleep, drop the
message, tear the record, abandon the snapshot.

Nothing here is probabilistic at fire time: a rule fires on the
``after``-th matching event, full stop.  Seeds enter only when *building*
a plan (:func:`kill_each_worker_plan` draws the per-worker kill offsets
from a seeded RNG), so a failing chaos run is always reproducible from
the one integer printed with the failure.

See DESIGN.md §15 for the failure taxonomy these sites cover.
"""

from repro.faults.plan import (
    KILL,
    DELAY,
    DROP,
    PARTIAL,
    SKEW,
    TORN,
    FaultPlan,
    FaultRule,
    kill_each_worker_plan,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "kill_each_worker_plan",
    "KILL",
    "DELAY",
    "DROP",
    "TORN",
    "PARTIAL",
    "SKEW",
]
