"""Hash-sharded backend: distributed-shared-memory accounting.

FlockDB spreads adjacency over shards keyed by node id.  For the paper's
analysis only two aspects of that matter: (1) adjacency reads stay O(1)
random-access, and (2) costs can be attributed per shard (hot shards are the
operational failure mode of walk-heavy workloads).  This backend keeps the
*data* in one process — a laptop cannot helpfully fake a network — but
routes every operation through a shard map and keeps per-shard
:class:`~repro.store.stats.CallStats`, which is exactly the observable the
experiments need.  Out-edge operations bill the source's shard; in-edge
operations bill the target's shard (edges are doubly indexed, as in
FlockDB's forward/backward tables).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.digraph import DynamicDiGraph
from repro.rng import RngLike
from repro.store.stats import CallStats

__all__ = ["ShardedGraphBackend"]


class ShardedGraphBackend:
    """Shard-aware wrapper over :class:`DynamicDiGraph`."""

    def __init__(
        self, graph: DynamicDiGraph | None = None, *, num_shards: int = 8
    ) -> None:
        if num_shards <= 0:
            raise ConfigurationError(f"num_shards must be positive, got {num_shards}")
        self.graph = graph if graph is not None else DynamicDiGraph()
        self.num_shards = num_shards
        self.shard_stats = [CallStats() for _ in range(num_shards)]

    def shard_of(self, node: int) -> int:
        """Shard owning ``node``'s adjacency rows (splittable hash)."""
        # Fibonacci hashing keeps consecutive ids off the same shard.
        return ((node * 0x9E3779B9) & 0xFFFFFFFF) % self.num_shards

    def _record(self, node: int, operation: str) -> None:
        self.shard_stats[self.shard_of(node)].record(operation)

    # -- GraphBackend contract -----------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def ensure_node(self, node: int) -> None:
        self.graph.ensure_node(node)

    def add_edge(self, source: int, target: int) -> None:
        self.graph.add_edge(source, target)
        self._record(source, "add_edge_out")
        self._record(target, "add_edge_in")

    def remove_edge(self, source: int, target: int) -> None:
        self.graph.remove_edge(source, target)
        self._record(source, "remove_edge_out")
        self._record(target, "remove_edge_in")

    def has_edge(self, source: int, target: int) -> bool:
        self._record(source, "has_edge")
        return self.graph.has_edge(source, target)

    def out_degree(self, node: int) -> int:
        self._record(node, "out_degree")
        return self.graph.out_degree(node)

    def in_degree(self, node: int) -> int:
        self._record(node, "in_degree")
        return self.graph.in_degree(node)

    def out_neighbors(self, node: int) -> Sequence[int]:
        self._record(node, "out_neighbors")
        return self.graph.out_neighbors(node)

    def in_neighbors(self, node: int) -> Sequence[int]:
        self._record(node, "in_neighbors")
        return self.graph.in_neighbors(node)

    def random_out_neighbor(self, node: int, rng: RngLike = None) -> int:
        self._record(node, "random_out_neighbor")
        return self.graph.random_out_neighbor(node, rng)

    def random_in_neighbor(self, node: int, rng: RngLike = None) -> int:
        self._record(node, "random_in_neighbor")
        return self.graph.random_in_neighbor(node, rng)

    def out_degree_array(self) -> np.ndarray:
        return self.graph.out_degree_array()

    def in_degree_array(self) -> np.ndarray:
        return self.graph.in_degree_array()

    # -- Shard observability --------------------------------------------

    def shard_load(self) -> list[int]:
        """Total operations billed to each shard."""
        return [stats.total() for stats in self.shard_stats]

    def load_imbalance(self) -> float:
        """max/mean shard load (1.0 = perfectly balanced; 0.0 if idle)."""
        loads = self.shard_load()
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return max(loads) / mean
