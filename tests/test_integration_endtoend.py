"""End-to-end integration: the full production story on one small world.

One scenario exercises every subsystem against the others: an evolving
network is replayed into both engines, the stores are snapshotted and
restored, personalized queries run against the restored store, and all
estimates are cross-checked against exact solves — the way an adopter
would actually wire the pieces together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.concentration import top_k_overlap
from repro.baselines.power_iteration import exact_pagerank
from repro.baselines.salsa_iterative import personalized_salsa
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.core.topk import top_k_personalized
from repro.store.persistence import load_engine, save_engine
from repro.workloads.seeds import users_with_friend_count
from repro.workloads.twitter_like import twitter_like_stream


@pytest.fixture(scope="module")
def world():
    """A 1.2k-user world replayed live into both engines."""
    stream = twitter_like_stream(1200, 15_000, rng=99)
    pagerank_engine = IncrementalPageRank(
        reset_probability=0.2, walks_per_node=8, rng=100
    )
    salsa_engine = IncrementalSALSA(
        reset_probability=0.2, walks_per_node=4, rng=101
    )
    for _ in range(stream.num_nodes):
        pagerank_engine.add_node()
        salsa_engine.add_node()
    for event in stream:
        pagerank_engine.apply(event)
        salsa_engine.apply(event)
    return stream, pagerank_engine, salsa_engine


class TestLiveEstimates:
    def test_pagerank_tracks_exact(self, world):
        stream, engine, _ = world
        exact = exact_pagerank(engine.graph, reset_probability=0.2)
        estimate = engine.pagerank()
        assert np.abs(estimate - exact).sum() < 0.25
        assert top_k_overlap(estimate, exact, 50) > 0.8

    def test_salsa_authority_tracks_indegree_shape(self, world):
        _, _, salsa_engine = world
        authority = salsa_engine.authority_scores()
        indegree = salsa_engine.graph.in_degree_array().astype(float)
        mask = indegree > 0
        correlation = np.corrcoef(authority[mask], indegree[mask])[0, 1]
        assert correlation > 0.9

    def test_store_invariants_after_full_replay(self, world):
        _, pagerank_engine, salsa_engine = world
        pagerank_engine.walks.check_invariants()
        salsa_engine.walks.check_invariants()


class TestQueriesOnRestoredStore:
    def test_snapshot_restore_query(self, world, tmp_path):
        """Persist mid-flight, restore, and serve queries from the restore."""
        _, engine, _ = world
        path = tmp_path / "engine.npz"
        save_engine(engine, path)
        restored = load_engine(path, rng=7)

        seeds = users_with_friend_count(
            restored.graph, minimum=8, maximum=40, count=3, rng=8
        )
        query = PersonalizedPageRank(restored.pagerank_store, rng=9)
        for seed in seeds:
            result = top_k_personalized(
                query, seed, k=10, alpha=0.8, rng=10, exclude_friends=True
            )
            assert len(result.ranking) == 10
            assert result.fetches < result.walk_length
            banned = {seed, *restored.graph.out_view(seed)}
            assert all(node not in banned for node in result.nodes)

    def test_personalized_salsa_against_iterative(self, world):
        _, _, salsa_engine = world
        seeds = users_with_friend_count(
            salsa_engine.graph, minimum=8, maximum=40, count=2, rng=11
        )
        query = PersonalizedSALSA(salsa_engine.pagerank_store, rng=12)
        for seed in seeds:
            walk = query.stitched_walk(seed, 30_000)
            estimate = np.zeros(salsa_engine.graph.num_nodes)
            for node, count in walk.authority_counts.items():
                estimate[node] = count
            estimate /= max(estimate.sum(), 1)
            _, reference = personalized_salsa(
                salsa_engine.graph, seed, reset_probability=0.2, iterations=25
            )
            reference = reference / max(reference.sum(), 1e-12)
            heavy = reference > 1e-3
            if heavy.sum() < 5:
                continue
            correlation = np.corrcoef(estimate[heavy], reference[heavy])[0, 1]
            assert correlation > 0.8


class TestChurn:
    def test_unfollow_wave_then_queries(self, world):
        """Mass deletions (an abuse-cleanup wave) keep everything coherent."""
        _, engine, _ = world
        rng = np.random.default_rng(13)
        removed = 0
        for _ in range(400):
            edge = engine.graph.random_edge(rng)
            engine.remove_edge(*edge)
            removed += 1
        assert removed == 400
        engine.walks.check_invariants()
        exact = exact_pagerank(engine.graph, reset_probability=0.2)
        assert np.abs(engine.pagerank() - exact).sum() < 0.3
        # queries still work on the churned store
        query = PersonalizedPageRank(engine.pagerank_store, rng=14)
        walk = query.stitched_walk(5, 3000)
        assert walk.length >= 3000
