"""The multi-seed query kernel's differential harness (ISSUE 5).

Three layers of guarantees, strongest first:

1. **Bit-identity with the scalar reference** whenever a walk takes no
   plain step: both sides then consume only ε-coin doubles, in the same
   order, so visit counts and every counter agree exactly (the kernel's
   block-drawn uniforms are the same stream the reference's scalar
   ``Generator.random()`` calls consume).
2. **Batch-composition independence and backend invariance**: a query
   returns bit-identical results alone, inside any batch, at any
   position, and on object / columnar / sharded stores.
3. **Distribution equivalence with the reference** in general (plain
   steps draw neighbours via ``u·d`` instead of ``Generator.integers``):
   averaged visit frequencies converge to the same personalized vector.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import FetchCache, PersonalizedPageRank
from repro.core.query_kernel import QueryKernel, SalsaQueryKernel
from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.core.topk import top_k_personalized
from repro.errors import ConfigurationError
from repro.store.pagerank_store import FETCH_SAMPLED_EDGE, PageRankStore
from repro.workloads.twitter_like import twitter_like_graph

BACKENDS = ["object", "columnar", "sharded:1", "sharded:4"]


def _engine(*, nodes=120, edges=900, walks=5, rng=1, backend="columnar"):
    return IncrementalPageRank.from_graph(
        twitter_like_graph(nodes, edges, rng=0),
        walks_per_node=walks,
        rng=rng,
        store_backend=backend,
    )


def _kernel(engine) -> QueryKernel:
    return QueryKernel(
        engine.pagerank_store, reset_probability=engine.reset_probability
    )


def _walk_signature(walk):
    return (
        walk.seed,
        walk.length,
        tuple(sorted(walk.visit_counts.items())),
        walk.fetches,
        walk.cached_fetches,
        walk.segments_used,
        walk.segment_steps,
        walk.plain_steps,
        walk.resets,
    )


# ----------------------------------------------------------------------
# 1. Bit-identity with the reference (no-plain-step regime)
# ----------------------------------------------------------------------

class TestBitIdentityWithReference:
    def test_segment_rich_walks_match_reference_exactly(self):
        # R large enough that no visited node ever exhausts its segments
        # within the walk: the walk never takes a plain step, so kernel
        # and reference consume identical ε-coin streams.
        engine = _engine(nodes=100, edges=800, walks=60, rng=2)
        kernel = _kernel(engine)
        reference = PersonalizedPageRank(
            engine.pagerank_store,
            reset_probability=engine.reset_probability,
        )
        for seed in range(8):
            expected = reference.stitched_walk(
                seed, 150, rng=np.random.default_rng([9, seed, 150])
            )
            got = kernel.stitched_walk(
                seed, 150, rng=np.random.default_rng([9, seed, 150])
            )
            assert expected.plain_steps == 0, "premise: no plain steps"
            assert _walk_signature(got) == _walk_signature(expected)

    def test_edgeless_graph_matches_reference_exactly(self):
        engine = IncrementalPageRank(walks_per_node=3, rng=4)
        for _ in range(6):
            engine.add_node()
        kernel = _kernel(engine)
        reference = PersonalizedPageRank(engine.pagerank_store)
        for seed in range(6):
            expected = reference.stitched_walk(
                seed, 40, rng=np.random.default_rng([1, seed])
            )
            got = kernel.stitched_walk(
                seed, 40, rng=np.random.default_rng([1, seed])
            )
            assert _walk_signature(got) == _walk_signature(expected)

    def test_crude_mode_matches_reference_exactly_on_dangling_web(self):
        # use_segments=False on a graph whose every walk immediately
        # dangles: still coin-only consumption on both sides.
        engine = IncrementalPageRank(walks_per_node=2, rng=5)
        for _ in range(4):
            engine.add_node()
        kernel = _kernel(engine)
        reference = PersonalizedPageRank(engine.pagerank_store)
        expected = reference.stitched_walk(
            1, 30, rng=np.random.default_rng(3), use_segments=False
        )
        got = kernel.stitched_walk(
            1, 30, rng=np.random.default_rng(3), use_segments=False
        )
        assert _walk_signature(got) == _walk_signature(expected)


# ----------------------------------------------------------------------
# 2. Composition independence + backend invariance
# ----------------------------------------------------------------------

class TestCompositionIndependence:
    def test_batch_equals_singles(self):
        engine = _engine()
        kernel = _kernel(engine)
        seeds = [s % engine.num_nodes for s in range(24)]
        batched = kernel.batch_stitched_walks(seeds, 400, rng_seed=7)
        singles = [
            kernel.stitched_walk(seed, 400, rng_seed=7) for seed in seeds
        ]
        for one, many in zip(singles, batched):
            assert _walk_signature(one) == _walk_signature(many)

    def test_result_independent_of_batch_position_and_neighbors(self):
        engine = _engine()
        kernel = _kernel(engine)
        alone = kernel.stitched_walk(3, 300, rng_seed=11)
        front = kernel.batch_stitched_walks([3, 7, 9, 3], 300, rng_seed=11)[0]
        back = kernel.batch_stitched_walks([9, 7, 3], 300, rng_seed=11)[2]
        assert _walk_signature(alone) == _walk_signature(front)
        assert _walk_signature(alone) == _walk_signature(back)

    def test_duplicate_queries_in_one_batch_agree(self):
        engine = _engine()
        kernel = _kernel(engine)
        twice = kernel.batch_stitched_walks([5, 5], 250, rng_seed=13)
        assert _walk_signature(twice[0]) == _walk_signature(twice[1])

    def test_per_walk_lengths(self):
        engine = _engine()
        kernel = _kernel(engine)
        walks = kernel.batch_stitched_walks([1, 2], [100, 350], rng_seed=3)
        assert walks[0].length >= 100 and walks[1].length >= 350
        solo = kernel.stitched_walk(2, 350, rng_seed=3)
        assert _walk_signature(solo) == _walk_signature(walks[1])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_invariance(self, backend):
        reference_engine = _engine(backend="object", rng=6)
        engine = _engine(backend=backend, rng=6)
        expected = _kernel(reference_engine).batch_stitched_walks(
            [0, 5, 11, 5], 350, rng_seed=17
        )
        got = _kernel(engine).batch_stitched_walks(
            [0, 5, 11, 5], 350, rng_seed=17
        )
        for one, other in zip(expected, got):
            assert _walk_signature(one) == _walk_signature(other)


# ----------------------------------------------------------------------
# 3. Distribution equivalence with the reference
# ----------------------------------------------------------------------

class TestDistributionEquivalence:
    def test_mean_frequencies_converge_to_reference(self):
        engine = _engine(nodes=150, edges=1400, walks=5, rng=8)
        kernel = _kernel(engine)
        reference = PersonalizedPageRank(
            engine.pagerank_store,
            reset_probability=engine.reset_probability,
        )
        seed, length, trials = 3, 600, 80
        num_nodes = engine.num_nodes
        kernel_walks = kernel.batch_stitched_walks(
            [seed] * trials,
            length,
            rngs=[np.random.default_rng([21, t]) for t in range(trials)],
        )
        kernel_mean = np.zeros(num_nodes)
        reference_mean = np.zeros(num_nodes)
        for trial in range(trials):
            kernel_mean += kernel_walks[trial].frequencies(num_nodes)
            reference_mean += reference.stitched_walk(
                seed, length, rng=np.random.default_rng([22, trial])
            ).frequencies(num_nodes)
        kernel_mean /= trials
        reference_mean /= trials
        # total-variation distance between the two averaged estimates
        assert 0.5 * np.abs(kernel_mean - reference_mean).sum() < 0.03

    def test_top_k_agrees_with_reference_ranking_statistically(self):
        # rankings over many trials should overlap heavily even though
        # individual walks differ (different neighbour-draw streams)
        engine = _engine(nodes=80, edges=900, walks=8, rng=9)
        kernel = _kernel(engine)
        reference = PersonalizedPageRank(
            engine.pagerank_store,
            reset_probability=engine.reset_probability,
        )
        cross_overlaps = []
        self_overlaps = []
        for trial in range(12):
            expected = top_k_personalized(
                reference,
                2,
                5,
                length=900,
                rng=np.random.default_rng([31, trial]),
            )
            resampled = top_k_personalized(
                reference,
                2,
                5,
                length=900,
                rng=np.random.default_rng([33, trial]),
            )
            got = kernel.batch_top_k(
                [2],
                5,
                length=900,
                rngs=[np.random.default_rng([32, trial])],
            )[0]
            cross_overlaps.append(len(set(expected.nodes) & set(got.nodes)))
            self_overlaps.append(
                len(set(expected.nodes) & set(resampled.nodes))
            )
        # kernel-vs-reference rankings agree as much as two independent
        # reference draws agree with each other (sampling noise only)
        assert np.mean(cross_overlaps) >= np.mean(self_overlaps) - 0.75


# ----------------------------------------------------------------------
# Fetch caches, accounting, and query shapes
# ----------------------------------------------------------------------

class TestFetchCacheAndAccounting:
    def test_trajectories_identical_with_and_without_cache(self):
        engine = _engine()
        kernel = _kernel(engine)
        cache = FetchCache()
        seeds = list(range(12))
        bare = kernel.batch_stitched_walks(seeds, 300, rng_seed=5)
        cached = kernel.batch_stitched_walks(
            seeds, 300, rng_seed=5, fetch_cache=cache
        )
        for one, other in zip(bare, cached):
            assert one.visit_counts == other.visit_counts
            assert one.length == other.length
            assert (
                one.fetches + one.cached_fetches
                == other.fetches + other.cached_fetches
            )
        assert len(cache) > 0
        # a second batch through the warm cache is all cached fetches
        warm = kernel.batch_stitched_walks(
            seeds, 300, rng_seed=5, fetch_cache=cache
        )
        assert sum(walk.fetches for walk in warm) == 0
        assert sum(walk.cached_fetches for walk in warm) > 0

    def test_physical_fetches_counted_once_per_node_per_batch(self):
        engine = _engine()
        kernel = _kernel(engine)
        store = engine.pagerank_store
        before = store.fetch_count
        walks = kernel.batch_stitched_walks(list(range(10)), 300, rng_seed=1)
        physical = store.fetch_count - before
        distinct_loaded = len(
            {node for walk in walks for node in walk.visit_counts}
            # visited-but-never-consulted nodes may not be fetched; the
            # physical count can only be smaller
        )
        per_walk_first_visits = sum(walk.fetches for walk in walks)
        assert 0 < physical <= distinct_loaded
        assert physical <= per_walk_first_visits

    def test_cache_contents_match_store_fetch(self):
        engine = _engine(nodes=40, edges=300)
        kernel = _kernel(engine)
        cache = FetchCache()
        kernel.batch_stitched_walks([0, 1], 200, rng_seed=2, fetch_cache=cache)
        store = engine.pagerank_store
        for node in range(engine.num_nodes):
            payload = cache._entries.get(node)
            if payload is None:
                continue
            fetch = store.fetch(node)
            assert payload.segments == fetch.segments
            assert list(payload.neighbors) == list(fetch.neighbors)
            assert payload.out_degree == fetch.out_degree

    def test_batch_scores_match_walk_frequencies(self):
        engine = _engine(nodes=60, edges=500)
        kernel = _kernel(engine)
        seeds = [1, 4, 9]
        matrix = kernel.batch_scores(seeds, 250, rng_seed=6)
        walks = kernel.batch_stitched_walks(seeds, 250, rng_seed=6)
        for row, walk in enumerate(walks):
            np.testing.assert_array_equal(
                matrix[row], walk.frequencies(engine.num_nodes)
            )

    def test_batch_top_k_matches_walk_ranking(self):
        engine = _engine()
        kernel = _kernel(engine)
        results = kernel.batch_top_k([2, 7], 4, length=400, rng_seed=8)
        walks = kernel.batch_stitched_walks([2, 7], 400, rng_seed=8)
        social = engine.pagerank_store.social_store
        for result, walk in zip(results, walks):
            excluded = {walk.seed} | set(social.out_neighbors(walk.seed))
            assert result.ranking == walk.top(4, exclude=excluded)
            assert result.walk_length == 400
            assert result.k == 4

    def test_configuration_errors(self):
        engine = _engine(nodes=20, edges=80)
        kernel = _kernel(engine)
        with pytest.raises(ConfigurationError):
            QueryKernel(engine.pagerank_store, reset_probability=0.0)
        with pytest.raises(ConfigurationError):
            QueryKernel(engine.pagerank_store, rng_block=1)
        with pytest.raises(ConfigurationError):
            kernel.batch_stitched_walks([1], 0)
        with pytest.raises(ConfigurationError):
            kernel.batch_stitched_walks([1, 2], [10])
        with pytest.raises(ConfigurationError):
            kernel.batch_stitched_walks(
                [1], 10, rngs=[np.random.default_rng(0)] * 2
            )
        with pytest.raises(ConfigurationError):
            kernel.batch_top_k([1], 0)
        sampled = PageRankStore(
            engine.social_store,
            walk_store=engine.walks,
            fetch_mode=FETCH_SAMPLED_EDGE,
        )
        with pytest.raises(ConfigurationError):
            QueryKernel(sampled)

    def test_empty_batch_and_unit_length(self):
        engine = _engine(nodes=20, edges=80)
        kernel = _kernel(engine)
        assert kernel.batch_stitched_walks([], 10) == []
        walk = kernel.stitched_walk(3, 1, rng_seed=0)
        assert walk.length == 1
        assert walk.visit_counts == {3: 1}
        assert walk.fetches == 0


# ----------------------------------------------------------------------
# SALSA kernel
# ----------------------------------------------------------------------

class TestSalsaKernel:
    def _salsa(self, *, walks=30, rng=3):
        return IncrementalSALSA.from_graph(
            twitter_like_graph(70, 500, rng=0), walks_per_node=walks, rng=rng
        )

    def test_bit_identity_with_reference_in_segment_rich_regime(self):
        engine = self._salsa(walks=40)
        reference = PersonalizedSALSA(engine.pagerank_store)
        kernel = SalsaQueryKernel(
            engine.pagerank_store,
            reset_probability=engine.reset_probability,
        )
        for seed in range(6):
            expected = reference.stitched_walk(
                seed, 120, rng=np.random.default_rng([41, seed])
            )
            got = kernel.stitched_walk(
                seed, 120, rng=np.random.default_rng([41, seed])
            )
            assert expected.plain_steps == 0, "premise: no plain steps"
            assert got.hub_counts == expected.hub_counts
            assert got.authority_counts == expected.authority_counts
            assert (got.length, got.fetches, got.segments_used, got.resets) == (
                expected.length,
                expected.fetches,
                expected.segments_used,
                expected.resets,
            )

    def test_batch_equals_singles_and_routes_via_personalized_salsa(self):
        engine = self._salsa(walks=4)
        walker = PersonalizedSALSA(engine.pagerank_store)
        seeds = list(range(10))
        batched = walker.batch_stitched_walks(seeds, 200, rng_seed=5)
        for seed, walk in zip(seeds, batched):
            solo = walker.batch_stitched_walks([seed], 200, rng_seed=5)[0]
            assert solo.hub_counts == walk.hub_counts
            assert solo.authority_counts == walk.authority_counts
            assert solo.length == walk.length
            assert solo.fetches == walk.fetches

    def test_distributional_equivalence_with_reference(self):
        engine = self._salsa(walks=3)
        walker = PersonalizedSALSA(engine.pagerank_store)
        trials, length, seed = 50, 300, 2
        kernel_walks = walker.batch_stitched_walks(
            [seed] * trials,
            length,
            rngs=[np.random.default_rng([51, t]) for t in range(trials)],
        )
        def normalize(counter):
            total = sum(counter.values()) or 1
            return {node: count / total for node, count in counter.items()}
        kernel_mass = np.zeros(engine.graph.num_nodes)
        reference_mass = np.zeros(engine.graph.num_nodes)
        for trial in range(trials):
            for node, share in normalize(
                kernel_walks[trial].authority_counts
            ).items():
                kernel_mass[node] += share / trials
            reference_walk = walker.stitched_walk(
                seed, length, rng=np.random.default_rng([52, trial])
            )
            for node, share in normalize(
                reference_walk.authority_counts
            ).items():
                reference_mass[node] += share / trials
        assert 0.5 * np.abs(kernel_mass - reference_mass).sum() < 0.08

    def test_requires_side_tracking_store(self):
        engine = _engine(nodes=20, edges=80)
        with pytest.raises(ConfigurationError):
            SalsaQueryKernel(engine.pagerank_store)


# ----------------------------------------------------------------------
# The new accessor surface
# ----------------------------------------------------------------------

class TestSegmentViewsAccessor:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_views_match_segment_nodes_in_insertion_order(self, backend):
        engine = _engine(nodes=50, edges=350, backend=backend)
        walks = engine.walks
        for node in range(engine.num_nodes):
            ids = walks.segments_starting_at(node)
            views = walks.segment_views_starting_at(node)
            assert len(ids) == len(views)
            for segment_id, view in zip(ids, views):
                assert view.tolist() == walks.segment_nodes(segment_id)

    def test_views_are_read_only_on_columnar_backends(self):
        for backend in ("columnar", "sharded:4"):
            engine = _engine(nodes=30, edges=150, backend=backend)
            views = engine.walks.segment_views_starting_at(0)
            assert views, "node 0 owns segments"
            with pytest.raises(ValueError):
                views[0][0] = 99

    def test_missing_node_yields_empty_list(self):
        engine = _engine(nodes=10, edges=40)
        assert engine.walks.segment_views_starting_at(10_000) == []
