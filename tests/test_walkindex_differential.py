"""Differential property tests: object vs columnar WalkIndex backends.

DESIGN.md §6's determinism contract promises that two stores implementing
the protocol produce *bit-identical* engine behavior under the same
seeded RNG.  These tests drive randomly interleaved edge adds/removes,
batch ingestion slices, and PPR / top-k / SALSA queries against an
object-backed and a columnar-backed engine in lockstep, asserting every
observable output is equal — scores, rankings, reports, dirty sets,
stored segments, and persistence round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import ColumnarWalkStore
from repro.core.incremental import IncrementalPageRank
from repro.core.personalized import PersonalizedPageRank
from repro.core.salsa import IncrementalSALSA, PersonalizedSALSA
from repro.core.topk import top_k_personalized
from repro.core.walks import WalkIndex, WalkStore
from repro.graph.arrival import ArrivalEvent
from repro.workloads.twitter_like import twitter_like_graph

NUM_NODES = 120
NUM_EDGES = 1_100


def _engine_pair(seed: int) -> tuple[IncrementalPageRank, IncrementalPageRank]:
    graph = twitter_like_graph(NUM_NODES, NUM_EDGES, rng=seed)
    columnar = IncrementalPageRank.from_graph(
        graph.copy(), walks_per_node=3, rng=seed + 1, store_backend="columnar"
    )
    objectful = IncrementalPageRank.from_graph(
        graph.copy(), walks_per_node=3, rng=seed + 1, store_backend="object"
    )
    assert isinstance(columnar.walks, ColumnarWalkStore)
    assert isinstance(objectful.walks, WalkStore)
    assert isinstance(columnar.walks, WalkIndex)
    assert isinstance(objectful.walks, WalkIndex)
    return columnar, objectful


def _assert_stores_equal(a: WalkIndex, b: WalkIndex) -> None:
    assert a.num_segments == b.num_segments
    assert a.total_visits == b.total_visits
    assert a.visit_count_array().tolist() == b.visit_count_array().tolist()
    for (sid_a, seg_a), (sid_b, seg_b) in zip(a.iter_segments(), b.iter_segments()):
        assert sid_a == sid_b
        assert seg_a.nodes == seg_b.nodes
        assert seg_a.end_reason == seg_b.end_reason
        assert seg_a.parity_offset == seg_b.parity_offset


def _random_absent_edge(rng, engine) -> tuple[int, int]:
    num_nodes = engine.graph.num_nodes
    while True:
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if u != v and not engine.graph.has_edge(u, v):
            return u, v


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_interleaved_updates_and_queries_bit_identical(seed):
    columnar, objectful = _engine_pair(seed)
    driver = np.random.default_rng(seed + 100)

    for step in range(60):
        op = int(driver.integers(5))
        if op == 0:  # single edge arrival
            u, v = _random_absent_edge(driver, columnar)
            rc = columnar.add_edge(u, v)
            ro = objectful.add_edge(u, v)
        elif op == 1:  # single edge removal
            edges = columnar.graph.edge_list()
            u, v = edges[int(driver.integers(len(edges)))]
            rc = columnar.remove_edge(u, v)
            ro = objectful.remove_edge(u, v)
        elif op == 2:  # batched slice of adds + removes
            events: list[ArrivalEvent] = []
            present = set(columnar.graph.edge_list())
            for _ in range(int(driver.integers(5, 40))):
                u = int(driver.integers(columnar.num_nodes))
                v = int(driver.integers(columnar.num_nodes))
                if u == v:
                    continue
                if (u, v) in present:
                    events.append(ArrivalEvent("remove", u, v))
                    present.discard((u, v))
                else:
                    events.append(ArrivalEvent("add", u, v))
                    present.add((u, v))
            rc = columnar.apply_batch(events)
            ro = objectful.apply_batch(events)
            assert rc.num_adds == ro.num_adds
            assert rc.num_removes == ro.num_removes
            assert rc.capped == ro.capped
        elif op == 3:  # PPR query (same derived generator on both sides)
            query_seed = int(driver.integers(columnar.num_nodes))
            walk_c = PersonalizedPageRank(columnar.pagerank_store).stitched_walk(
                query_seed, 400, rng=np.random.default_rng([seed, step])
            )
            walk_o = PersonalizedPageRank(objectful.pagerank_store).stitched_walk(
                query_seed, 400, rng=np.random.default_rng([seed, step])
            )
            assert walk_c.visit_counts == walk_o.visit_counts
            assert walk_c.fetches == walk_o.fetches
            assert walk_c.segments_used == walk_o.segments_used
            continue
        else:  # top-k query
            query_seed = int(driver.integers(columnar.num_nodes))
            top_c = top_k_personalized(
                PersonalizedPageRank(columnar.pagerank_store),
                query_seed,
                5,
                rng=np.random.default_rng([seed, step]),
            )
            top_o = top_k_personalized(
                PersonalizedPageRank(objectful.pagerank_store),
                query_seed,
                5,
                rng=np.random.default_rng([seed, step]),
            )
            assert top_c.ranking == top_o.ranking
            continue
        # mutation ops: reports and scores must agree exactly
        assert rc.segments_rerouted == ro.segments_rerouted
        assert rc.steps_resimulated == ro.steps_resimulated
        assert rc.steps_discarded == ro.steps_discarded
        assert rc.segments_examined == ro.segments_examined
        assert rc.dirty_nodes == ro.dirty_nodes
        assert np.array_equal(columnar.pagerank(), objectful.pagerank())

    columnar.walks.check_invariants()
    objectful.walks.check_invariants()
    _assert_stores_equal(columnar.walks, objectful.walks)
    assert columnar.top(10) == objectful.top(10)


@pytest.mark.parametrize("seed", [3, 4])
def test_salsa_updates_and_queries_bit_identical(seed):
    graph = twitter_like_graph(80, 700, rng=seed)
    columnar = IncrementalSALSA.from_graph(
        graph.copy(), walks_per_node=2, rng=seed + 1, store_backend="columnar"
    )
    objectful = IncrementalSALSA.from_graph(
        graph.copy(), walks_per_node=2, rng=seed + 1, store_backend="object"
    )
    driver = np.random.default_rng(seed + 50)

    for step in range(40):
        op = int(driver.integers(3))
        if op == 0:
            u, v = _random_absent_edge(driver, columnar)
            rc = columnar.add_edge(u, v)
            ro = objectful.add_edge(u, v)
        elif op == 1:
            edges = columnar.graph.edge_list()
            u, v = edges[int(driver.integers(len(edges)))]
            rc = columnar.remove_edge(u, v)
            ro = objectful.remove_edge(u, v)
        else:
            query_seed = int(driver.integers(columnar.graph.num_nodes))
            walk_c = PersonalizedSALSA(columnar.pagerank_store).stitched_walk(
                query_seed, 300, rng=np.random.default_rng([seed, step])
            )
            walk_o = PersonalizedSALSA(objectful.pagerank_store).stitched_walk(
                query_seed, 300, rng=np.random.default_rng([seed, step])
            )
            assert walk_c.authority_counts == walk_o.authority_counts
            assert walk_c.hub_counts == walk_o.hub_counts
            assert walk_c.fetches == walk_o.fetches
            continue
        assert rc.segments_rerouted == ro.segments_rerouted
        assert rc.steps_resimulated == ro.steps_resimulated
        assert rc.dirty_nodes == ro.dirty_nodes
        assert np.array_equal(
            columnar.authority_scores(), objectful.authority_scores()
        )
        assert np.array_equal(columnar.hub_scores(), objectful.hub_scores())

    columnar.walks.check_invariants()
    objectful.walks.check_invariants()
    _assert_stores_equal(columnar.walks, objectful.walks)


def test_engine_continues_identically_after_persistence_roundtrip(tmp_path):
    from repro.store.persistence import load_engine, save_engine

    columnar, objectful = _engine_pair(7)
    path_v2 = tmp_path / "engine_v2.npz"
    path_v1 = tmp_path / "engine_v1.npz"
    save_engine(columnar, path_v2)
    save_engine(objectful, path_v1, version=1)
    restored_columnar = load_engine(path_v2, rng=np.random.default_rng(99))
    restored_object = load_engine(path_v1, rng=np.random.default_rng(99))
    assert isinstance(restored_columnar.walks, ColumnarWalkStore)
    assert isinstance(restored_object.walks, WalkStore)
    _assert_stores_equal(restored_columnar.walks, restored_object.walks)
    # the restored engines keep behaving identically under fresh updates
    driver = np.random.default_rng(123)
    for _ in range(15):
        u, v = _random_absent_edge(driver, restored_columnar)
        rc = restored_columnar.add_edge(u, v)
        ro = restored_object.add_edge(u, v)
        assert rc.dirty_nodes == ro.dirty_nodes
    assert np.array_equal(
        restored_columnar.pagerank(), restored_object.pagerank()
    )
