"""Request batching: coalescing, a worker pool, and admission control.

A serving tier in front of a walk store sees three load phenomena the
:class:`~repro.serve.engine.QueryEngine` alone does not handle:

* **duplicate in-flight seeds** — under a Zipf seed distribution the same
  hot seed is requested many times within one queue drain; only the first
  should pay for a walk.  The batcher coalesces requests with the same
  query key onto one shared future.
* **parallel execution** — distinct seeds are independent reads, so a
  worker pool executes them concurrently.  Queries stay deterministic
  under concurrency because each walk's RNG is derived from the query
  itself (see :meth:`QueryEngine.query_rng`), never from execution order.
* **kernel batching** — a queue drain of distinct seeds is itself batch
  work: :meth:`RequestBatcher.run` splits the admitted drain into at most
  one chunk per worker and answers each chunk with a single multi-seed
  kernel invocation (:meth:`QueryEngine.run_batch`), amortizing node
  payload loads and visit accounting across the whole pass.
* **overload** — a bounded in-flight window sheds excess requests with
  :class:`~repro.errors.LoadShedError` instead of letting latency grow
  without bound (queue-depth load shedding, the standard admission-control
  policy for read services).

Every outcome is billed to the shared :class:`~repro.serve.stats.ServeStats`.

Concurrency contract: the pool parallelizes *reads*.  Store mutations
(``apply``/``apply_batch``) must not run while futures are unresolved —
drain the batcher (``run`` blocks until its drain completes) before
ingesting, as all drivers here do.  See :mod:`repro.serve` for details.
The exception is a bounded-freshness engine: mutations routed through its
:class:`~repro.core.scheduler.StalenessScheduler` may land any time (the
scheduler's readers-writer lock orders repairs against in-flight walks),
and each batched drain flushes pending repairs for its admitted seeds
*once*, before the kernel chunks fan out (repair-on-read, amortized per
drain instead of per chunk).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

from repro.errors import ConfigurationError, LoadShedError
from repro.lifecycle import register_for_shutdown
from repro.serve.engine import QueryEngine

__all__ = ["QueryRequest", "RequestBatcher"]

PPR = "ppr"
TOP_K = "topk"
PPR_TO_TARGET = "pprt"


@dataclass(frozen=True)
class QueryRequest:
    """One client request, hashable so duplicates can be coalesced."""

    kind: str = TOP_K
    seed: int = 0
    k: int = 10
    #: Explicit walk length; None lets top-k size the walk via Equation 4
    #: (required for ``kind='ppr'``; for ``kind='pprt'`` it is the forward
    #: walk length, 0 = reverse-only, None = FAST-PPR default sizing).
    length: Optional[int] = None
    exclude_friends: bool = True
    #: ``kind='pprt'`` only: the target node and the PPR threshold delta.
    target: Optional[int] = None
    delta: Optional[float] = None
    #: ``kind='pprt'`` only: reverse-push residual tolerance (None =
    #: ``delta / 2``).
    r_max: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in (PPR, TOP_K, PPR_TO_TARGET):
            raise ConfigurationError(
                f"kind must be '{PPR}', '{TOP_K}' or '{PPR_TO_TARGET}', "
                f"got {self.kind!r}"
            )
        if self.kind == PPR and self.length is None:
            raise ConfigurationError("ppr requests need an explicit length")
        if self.kind == PPR_TO_TARGET:
            if self.target is None or self.delta is None:
                raise ConfigurationError(
                    "pprt requests need a target and a delta"
                )
            if self.delta <= 0.0:
                raise ConfigurationError(
                    f"delta must be positive, got {self.delta}"
                )


class RequestBatcher:
    """Coalescing worker-pool front door for a :class:`QueryEngine`."""

    def __init__(
        self,
        query_engine: QueryEngine,
        *,
        max_workers: int = 4,
        max_queue_depth: int = 256,
        fresh_stats: bool = False,
        kernel_batching: bool = True,
        max_kernel_batch: int = 64,
    ) -> None:
        """Front a :class:`QueryEngine` with a coalescing worker pool.

        ``fresh_stats=True`` zeroes the engine's (long-lived, shared)
        serve and store counters on construction, so a restarted batcher
        reports this session's rates rather than the process lifetime's.
        ``kernel_batching`` makes :meth:`run` coalesce each queue drain
        into one multi-seed kernel invocation per worker pass (capped at
        ``max_kernel_batch`` queries per invocation); ``False`` restores
        the one-future-per-request legacy drain.  Answers are identical
        either way — kernel queries walk per-query RNG streams.
        """
        if max_workers <= 0:
            raise ConfigurationError(
                f"max_workers must be positive, got {max_workers}"
            )
        if max_queue_depth <= 0:
            raise ConfigurationError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if max_kernel_batch <= 0:
            raise ConfigurationError(
                f"max_kernel_batch must be positive, got {max_kernel_batch}"
            )
        self.query_engine = query_engine
        self.stats = query_engine.stats
        #: The engine's span collector; worker-pool hops re-parent their
        #: spans explicitly (contextvars don't cross executor threads).
        self.tracer = query_engine.tracer
        if fresh_stats:
            self.reset_stats()
        self.max_queue_depth = max_queue_depth
        self.kernel_batching = kernel_batching
        self.max_kernel_batch = max_kernel_batch
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_workers = max_workers
        self._lock = threading.Lock()
        self._in_flight: dict[Hashable, Future] = {}
        self._depth = 0
        self._closed = False
        # exit-time safety net: an abandoned batcher's pool threads are
        # joined before interpreter teardown (see repro.lifecycle)
        register_for_shutdown(self)

    # ------------------------------------------------------------------

    @staticmethod
    def _key(request: QueryRequest) -> Hashable:
        return request

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet finished."""
        return self._depth

    def submit(self, request: QueryRequest) -> Future:
        """Admit ``request``; returns a future for its result.

        A duplicate of an in-flight request shares that request's future
        (coalesced — it neither costs a walk nor counts against the
        admission window).  When the in-flight window is full the request
        is shed: the returned future fails with
        :class:`~repro.errors.LoadShedError`.
        """
        key = self._key(request)
        with self._lock:
            existing = self._in_flight.get(key)
            if existing is not None:
                self.stats.record_coalesced()
                return existing
            if self._depth >= self.max_queue_depth:
                self.stats.record_shed()
                shed: Future = Future()
                shed.set_exception(
                    LoadShedError(self._depth, self.max_queue_depth)
                )
                return shed
            self._depth += 1
            # Capture the submitter's active span *now*: the pool thread's
            # contextvars won't see it, so _execute re-parents explicitly.
            parent = self.tracer.current() if self.tracer.enabled else None
            future = self._executor.submit(self._execute, request, key, parent)
            # _execute's cleanup also takes the lock, so the future cannot
            # be reaped before it is registered here.
            self._in_flight[key] = future
            return future

    def _execute(self, request: QueryRequest, key: Hashable, parent=None):
        tracer = self.tracer
        span = (
            tracer.span(
                "serve.request",
                parent=parent,
                kind=request.kind,
                seed=request.seed,
            )
            if tracer.enabled
            else nullcontext()
        )
        try:
            with span:
                if request.kind == PPR:
                    return self.query_engine.ppr(request.seed, request.length)
                if request.kind == PPR_TO_TARGET:
                    return self.query_engine.ppr_to_target(
                        request.seed,
                        request.target,
                        request.delta,
                        r_max=request.r_max,
                        walk_length=request.length,
                    )
                return self.query_engine.top_k(
                    request.seed,
                    request.k,
                    length=request.length,
                    exclude_friends=request.exclude_friends,
                )
        finally:
            with self._lock:
                self._in_flight.pop(key, None)
                self._depth -= 1

    # ------------------------------------------------------------------

    def run(self, requests: Sequence[QueryRequest]) -> List[Optional[object]]:
        """Answer a whole queue drain and gather results in request order.

        With ``kernel_batching`` (the default) the drain is coalesced:
        duplicate requests share one computation (billed ``coalesced``),
        unique requests beyond ``max_queue_depth`` are shed (``None``
        results, billed ``shed``), and the admitted remainder is split
        into at most one chunk per worker — each chunk answered by a
        single :meth:`QueryEngine.run_batch` kernel invocation on the
        pool.  Otherwise every request is submitted as its own future
        (the legacy drain).  Shed requests yield ``None``; other failures
        propagate.  Duplicate requests resolve to the shared result.
        """
        if not self.kernel_batching:
            futures = [self.submit(request) for request in requests]
            results: List[Optional[object]] = []
            for future in futures:
                try:
                    results.append(future.result())
                except LoadShedError:
                    results.append(None)
            return results
        return self._run_batched(requests)

    def _run_batched(
        self, requests: Sequence[QueryRequest]
    ) -> List[Optional[object]]:
        """One coalesced drain: dedupe, shed, chunk, one kernel per chunk.

        Admission is charged against the same shared ``_depth`` window
        ``submit`` uses, so concurrent drains (and interleaved single
        submits) are jointly bounded by ``max_queue_depth``.  A duplicate
        of an admitted key coalesces onto its computation; a duplicate of
        a shed key is itself billed as shed (it is being refused too).
        """
        slots: dict[Hashable, List[int]] = {}
        admitted: List[QueryRequest] = []
        shed_keys: set = set()
        with self._lock:
            for index, request in enumerate(requests):
                key = self._key(request)
                entry = slots.get(key)
                if entry is not None:
                    entry.append(index)
                    if key in shed_keys:
                        self.stats.record_shed()
                    else:
                        self.stats.record_coalesced()
                    continue
                slots[key] = [index]
                if self._depth >= self.max_queue_depth:
                    shed_keys.add(key)
                    self.stats.record_shed()
                    continue
                self._depth += 1
                admitted.append(request)

        results: List[Optional[object]] = [None] * len(requests)
        if not admitted:
            return results
        tracer = self.tracer
        tracing = tracer.enabled
        drain_span = (
            tracer.span(
                "serve.drain", requests=len(requests), admitted=len(admitted)
            )
            if tracing
            else nullcontext()
        )
        try:
            with drain_span:
                # Chunks run on pool threads, where the drain span's
                # contextvar is invisible — re-parent each chunk span.
                parent = tracer.current() if tracing else None
                # bounded-freshness engines repair-on-read: flush deferred
                # repairs for this drain's seeds once, up front, so the
                # concurrent chunks below never contend on the flush lock
                self.query_engine.ensure_fresh_for(
                    {request.seed for request in admitted}
                    | {
                        request.target
                        for request in admitted
                        if request.kind == PPR_TO_TARGET
                    }
                )
                # one kernel invocation per worker pass: ceil-split the drain
                # across the pool, capped at max_kernel_batch per invocation
                chunk_size = min(
                    self.max_kernel_batch,
                    -(-len(admitted) // self._max_workers),
                )
                chunks = [
                    admitted[start : start + chunk_size]
                    for start in range(0, len(admitted), chunk_size)
                ]
                if tracing:
                    def run_chunk(chunk):
                        with tracer.span(
                            "serve.chunk", parent=parent, size=len(chunk)
                        ):
                            return self.query_engine.run_batch(chunk)
                else:
                    run_chunk = self.query_engine.run_batch
                futures = [
                    self._executor.submit(run_chunk, chunk) for chunk in chunks
                ]
                for chunk, future in zip(chunks, futures):
                    for request, value in zip(chunk, future.result()):
                        for index in slots[self._key(request)]:
                            results[index] = value
        finally:
            with self._lock:
                self._depth -= len(admitted)
        return results

    def reset_stats(self) -> None:
        """Zero the serve counters and the store's fetch accounting.

        Both objects outlive any one batcher (they hang off the engine),
        so a batcher restart inherits stale counts unless it resets them.
        """
        self.stats.reset()
        self.query_engine.store.stats.reset()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool.  Idempotent; :meth:`close` is the alias
        the lifecycle registry (and worker processes) call at exit."""
        self._closed = True
        self._executor.shutdown(wait=wait)

    def close(self) -> None:
        self.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RequestBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RequestBatcher(depth={self._depth}, "
            f"max_queue_depth={self.max_queue_depth})"
        )
